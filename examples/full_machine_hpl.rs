//! The Fig. 2 scenario as a user program: sweep HPL over 1/2/4/8 nodes
//! with repetition statistics, then print the paper-style scaling table
//! and the cross-ISA comparison.
//!
//! ```sh
//! cargo run --example full_machine_hpl
//! ```

use monte_cimone::cluster::experiments::hpl_scaling;
use monte_cimone::cluster::perf::HplProblem;

fn main() {
    let result = hpl_scaling::run(HplProblem::paper(), 10, 2022);
    print!("{}", result.render());

    let full = result.points.last().expect("four points");
    println!(
        "\nThe full machine sustains {:.2} GFLOP/s — {:.0}% of what perfect linear scaling \
         from a single node would give, bounded by the 1 Gb/s Ethernet.",
        full.gflops.mean,
        full.efficiency * 100.0
    );
}
