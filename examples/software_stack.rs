//! Deploy the paper's Table I software stack with the Spack-like package
//! manager: concretise each user-facing package for `linux-sifive-u74mc`,
//! install the DAGs into a hash-addressed tree, and generate environment
//! modules — including the GCC-version detail the paper flags (GCC 10.3
//! cannot emit the Zba/Zbb extensions the U74 implements).
//!
//! ```sh
//! cargo run --example software_stack
//! ```

use monte_cimone::cluster::experiments::software_stack;
use monte_cimone::pkg::target::TargetRegistry;
use monte_cimone::pkg::version::Version;

fn main() {
    let result = software_stack::run().expect("the builtin repo resolves");
    print!("{}", result.render());

    let registry = TargetRegistry::builtin();
    let u74mc = registry.get("u74mc").expect("registered");
    let gcc10: Version = "10.3.0".parse().expect("parses");
    let gcc12: Version = "12.1.0".parse().expect("parses");
    println!("\narchspec flags for {}:", u74mc.triple());
    println!("  gcc 10.3.0: {}", u74mc.gcc_flags(&gcc10));
    println!(
        "  gcc 12.1.0: {}  <- Zba/Zbb finally emitted",
        u74mc.gcc_flags(&gcc12)
    );
}
