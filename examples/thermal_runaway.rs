//! Reproduce the paper's thermal incident: HPL with the lid-on enclosure
//! drives node 7 past 107 °C; the node trips, Slurm requeues the job,
//! ExaMon raises the alarms; then the mitigation (lid off, blades spaced)
//! brings the hot node from ≈71 °C to ≈39 °C.
//!
//! ```sh
//! cargo run --release --example thermal_runaway
//! ```

use monte_cimone::cluster::experiments::thermal_runaway;

fn main() {
    let result = thermal_runaway::run(2022);
    print!("{}", result.render());

    println!("\nnode 7 temperature trajectory (sampled by stats_pub at 0.2 Hz):");
    for chunk in result.node7_series.chunks(12) {
        let line: Vec<String> = chunk
            .iter()
            .map(|(t, v)| format!("{t:.0}s:{v:.0}°C"))
            .collect();
        println!("  {}", line.join(" "));
    }
}
