//! Stand up the full ExaMon pipeline — plugins → broker → collector →
//! time-series store — run a monitored full-machine HPL, render the Fig. 5
//! heatmaps, and answer a batch query over the REST-style JSON interface.
//!
//! ```sh
//! cargo run --example monitoring_dashboard
//! ```

use monte_cimone::cluster::experiments::monitored_hpl;
use monte_cimone::monitor::query::{evaluate, QueryRequest};

fn main() {
    let result = monitored_hpl::run(4096, 48, 2022);
    print!("{}", result.render());

    // The batch-analysis path: the same data over the JSON query API.
    let request = QueryRequest {
        filter: "org/unibo/cluster/cimone/node/+/plugin/dstat_pub/chnl/data/temperature.cpu_temp"
            .to_owned(),
        from_secs: result.from.as_secs_f64(),
        to_secs: result.to.as_secs_f64(),
        bin_secs: Some(10.0),
        aggregation: None,
    };
    println!("\nREST-style query: {}", request.to_json());
    let response = evaluate(&result.store, &request).expect("valid request");
    println!("series matched: {}", response.series.len());
    for series in response.series.iter().take(2) {
        let last = series.points.last().expect("points in range");
        println!(
            "  {} -> {} binned points, last = {:.1} °C",
            series.name,
            series.points.len(),
            last.1
        );
    }
}
