//! The paper's future-work item (ii) — dynamic power and thermal
//! management — in action: rerun the Fig. 6 hazardous configuration with a
//! per-node thermal DVFS governor. Node 7 throttles down the OPP ladder
//! instead of tripping at 107 °C, and the HPL run completes.
//!
//! ```sh
//! cargo run --release --example dvfs_governor
//! ```

use monte_cimone::cluster::experiments::dvfs;
use monte_cimone::soc::cpufreq::CpuFreq;

fn main() {
    println!("U740 OPP ladder:");
    for (i, opp) in CpuFreq::u740().opps().iter().enumerate() {
        println!("  OPP {i}: {opp}");
    }
    println!();
    print!("{}", dvfs::run(2022).render());
}
