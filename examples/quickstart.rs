//! Quickstart: bring up the cluster, submit a single-node HPL job through
//! the scheduler, and read the result back from accounting.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use monte_cimone::cluster::engine::{ClusterWorkload, EngineConfig, JobRequest, SimEngine};
use monte_cimone::cluster::perf::{HplModel, HplProblem};
use monte_cimone::soc::units::SimDuration;

fn main() {
    // The machine: 8 × SiFive Freedom U740 nodes, Slurm-like scheduler,
    // ExaMon-like monitoring, all on one deterministic simulated clock.
    let mut engine = SimEngine::new(EngineConfig::default());

    // A scaled-down HPL problem so the simulated run stays short.
    let problem = HplProblem::new(8192, 192);
    let id = engine
        .submit(JobRequest {
            name: "hpl-quickstart".into(),
            user: "you".into(),
            nodes: 1,
            workload: ClusterWorkload::Hpl(problem),
        })
        .expect("the job fits the machine");

    println!("submitted {id} — running…");
    // Peek at the machine the way an operator would.
    engine.run_for(SimDuration::from_secs(10));
    println!(
        "\n$ squeue\n{}",
        monte_cimone::sched::render::squeue(engine.scheduler(), engine.now())
    );
    println!(
        "$ sinfo\n{}",
        monte_cimone::sched::render::sinfo(engine.scheduler())
    );
    let drained = engine.run_until_idle(SimDuration::from_secs(3600));
    assert!(
        drained,
        "the job should finish within an hour of simulated time"
    );

    let record = &engine.accounting().records()[0];
    let model = HplModel::monte_cimone(problem);
    println!(
        "{} finished in {} (sustained ≈ {:.2} GFLOP/s, {:.1}% of the 4 GFLOP/s node peak)",
        record.name,
        record.elapsed,
        problem.flops() / record.elapsed.as_secs_f64() / 1e9,
        model.peak_utilisation(1) * 100.0,
    );
    if let Some(energy) = record.energy {
        println!("energy consumed: {energy}");
    }
    println!(
        "monitoring captured {} series / {} points",
        engine.store().series_count(),
        engine.store().point_count()
    );
}
