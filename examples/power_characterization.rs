//! The §V-B power study as a user program: Table VI from simulated
//! shunt-resistor traces, the Fig. 3 per-benchmark traces, and the Fig. 4
//! boot decomposition.
//!
//! ```sh
//! cargo run --example power_characterization
//! ```

use monte_cimone::cluster::experiments::{boot_trace, power_table, power_traces};

fn main() {
    print!("{}", power_table::run(4, 2022).render());
    println!();
    print!("{}", power_traces::run(8, 2022).render());
    println!();
    print!("{}", boot_trace::run(2022).render());
}
