//! In-tree stand-in for `serde_derive`. The workspace only uses
//! `#[derive(Serialize, Deserialize)]` as annotation — nothing ever
//! serialises through serde (the monitor's JSON path is hand-rolled) —
//! so the derives expand to nothing and the companion `serde` shim
//! blanket-implements the marker traits.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: the trait is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: the trait is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
