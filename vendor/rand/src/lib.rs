//! In-tree stand-in for the subset of the `rand` 0.8 API this workspace
//! uses, so the build has no network dependency. Seeded [`rngs::StdRng`]
//! (xoshiro256++ seeded through SplitMix64), [`Rng::gen_range`] over
//! integer and float ranges, and [`distributions::Uniform`].
//!
//! The generator is deliberately *not* stream-compatible with upstream
//! `rand`: everything in this workspace that depends on randomness is
//! calibrated statistically (means, variances, tolerances), never on the
//! exact sample sequence of upstream's StdRng.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here: span
                // is tiny relative to 2^64 everywhere this workspace
                // samples, so modulo bias is far below calibration noise.
                let value = (rng.next_u64() as u128) % span;
                ((low as i128) + value as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "gen_range: low must be < high");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        f64::sample_range(low as f64, high as f64, rng) as f32
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128) - (low as i128) + 1;
                let value = (rng.next_u64() as u128) % (span as u128);
                ((low as i128) + value as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`0..10`, `0.0..1.0`, `1..=8`, …).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic, fast, and statistically strong enough
    /// for every calibration test in the repo.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0, 0, 0, 0] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

/// Distributions (the subset the kernels use).
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// Types that produce samples of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// A uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform + Copy + PartialOrd> Uniform<T> {
        /// Creates the distribution.
        ///
        /// # Panics
        ///
        /// Panics if `low >= high`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new: low must be < high");
            Uniform { low, high }
        }
    }

    impl<T: SampleUniform + Copy> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_range(self.low, self.high, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4, "streams should not collide ({same}/64 equal)");
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        use super::distributions::{Distribution, Uniform};
        let d = Uniform::new(0.0f64, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn inclusive_ranges_hit_both_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
