//! In-tree stand-in for the subset of `crossbeam` this workspace uses:
//! the unbounded MPMC channel. Both [`channel::Sender`] and
//! [`channel::Receiver`] are `Send + Sync` (unlike `std::sync::mpsc`),
//! which the fabric and broker rely on to share endpoints behind `Arc`
//! across threads. Disconnect is detected in both directions: sending to
//! a channel whose receivers are all gone fails, and receiving from a
//! channel whose senders are all gone reports `Disconnected`.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the rejected message, like upstream.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// No message is queued and all senders are gone.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Queues a message. Fails (returning the message) when every
        /// receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.inner
                .queue
                .lock()
                .expect("channel mutex poisoned")
                .push_back(msg);
            self.inner.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect instead of sleeping forever.
                self.inner.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Pops a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().expect("channel mutex poisoned");
            match queue.pop_front() {
                Some(msg) => Ok(msg),
                None if self.inner.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().expect("channel mutex poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .inner
                    .available
                    .wait(queue)
                    .expect("channel mutex poisoned");
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .expect("channel mutex poisoned")
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1u32).is_err());
    }

    #[test]
    fn recv_unblocks_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let handle = thread::spawn(move || rx.recv());
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(handle.join().unwrap(), Ok(5));
    }

    #[test]
    fn try_recv_reports_disconnect_when_drained() {
        let (tx, rx) = unbounded();
        tx.send(1u32).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn endpoints_are_shareable_across_threads() {
        let (tx, rx) = unbounded();
        let tx = Arc::new(tx);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tx = Arc::clone(&tx);
                thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        while let Ok(v) = rx.try_recv() {
            got.push(v);
        }
        assert_eq!(got.len(), 1000);
    }
}
