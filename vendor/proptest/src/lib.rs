//! In-tree stand-in for the subset of the `proptest` API this workspace
//! uses, so the build has no network dependency.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` inner attribute), integer/float range
//! strategies, tuple strategies, [`Strategy::prop_map`],
//! [`prop::collection::vec`], [`prop::sample::select`], [`any`],
//! [`Just`], and the `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/
//! `prop_assume!` family.
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (reproducible across runs and
//! machines, no `proptest-regressions` replay), and failing inputs are
//! reported but not shrunk.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be discarded (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection (the case does not count).
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// The result type `proptest!` bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + Clone + PartialOrd + Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range(self.start.clone(), self.end.clone(), rng)
    }
}

macro_rules! impl_strategy_range_inclusive {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);

/// String strategies from a pattern, as in upstream proptest where any
/// `&str` is a regex strategy. Only the subset the workspace uses is
/// implemented: literal characters, character classes `[...]` with
/// ranges, `\`-escapes, and counted repetition `{m}` / `{m,n}`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a (possibly escaped) literal.
        let options: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                    + i;
                let class = &chars[i + 1..close];
                i = close + 1;
                let mut opts = Vec::new();
                let mut j = 0;
                while j < class.len() {
                    if j + 2 < class.len() && class[j + 1] == '-' {
                        let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
                        assert!(lo <= hi, "bad range in pattern {pattern:?}");
                        opts.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        opts.push(class[j]);
                        j += 1;
                    }
                }
                opts
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional counted repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("repeat lower bound"),
                    hi.trim().parse::<usize>().expect("repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!options.is_empty(), "empty class in pattern {pattern:?}");
        let count = rng.gen_range(min..=max);
        for _ in 0..count {
            out.push(options[rng.gen_range(0..options.len())]);
        }
    }
    out
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, i8, i16, i32);

/// The canonical strategy for `T` (`any::<bool>()`).
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy combinator modules (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Debug, Strategy, TestRng};
        use rand::Rng;

        /// A range of collection sizes.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                let (lo, hi) = r.into_inner();
                assert!(lo <= hi, "empty size range");
                SizeRange {
                    lo,
                    hi_exclusive: hi + 1,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_exclusive: n + 1,
                }
            }
        }

        /// A strategy for `Vec`s whose elements come from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Debug, Strategy, TestRng};
        use rand::Rng;

        /// A strategy choosing uniformly from a fixed set.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }

        /// `prop::sample::select(options)`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// One executed case's outcome, as reported to [`run_cases`].
#[derive(Debug)]
pub enum CaseOutcome {
    /// Counted towards the case budget.
    Pass,
    /// Discarded; another case is drawn.
    Reject,
    /// Failure: inputs and message.
    Fail {
        /// Debug rendering of the generated inputs.
        inputs: String,
        /// The assertion message.
        message: String,
    },
}

/// Drives one property test: draws cases from a name-seeded RNG until
/// `config.cases` cases pass, a case fails (panic), or the reject budget
/// is exhausted.
///
/// # Panics
///
/// Panics when a case fails or too many cases are rejected.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> CaseOutcome,
) {
    // FNV-1a over the test name: deterministic across runs and platforms.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        seed ^= byte as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(10).max(256);
    while passed < config.cases {
        match case(&mut rng) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Reject => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest '{name}': too many rejected cases ({rejected})"
                );
            }
            CaseOutcome::Fail { inputs, message } => {
                panic!(
                    "proptest '{name}' failed after {passed} passing case(s)\n\
                     message: {message}\n\
                     inputs:  {inputs}\n\
                     (deterministic seed {seed:#018x}; no shrinking in the in-tree runner)"
                );
            }
        }
    }
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                let mut __inputs = String::new();
                $(
                    let __generated = $crate::Strategy::generate(&($strat), __rng);
                    __inputs.push_str(concat!(stringify!($arg), " = "));
                    __inputs.push_str(&format!("{:?}, ", &__generated));
                    let $arg = __generated;
                )+
                let __outcome = (move || -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match __outcome {
                    Ok(()) => $crate::CaseOutcome::Pass,
                    Err($crate::TestCaseError::Reject(_)) => $crate::CaseOutcome::Reject,
                    Err($crate::TestCaseError::Fail(message)) => $crate::CaseOutcome::Fail {
                        inputs: __inputs,
                        message,
                    },
                }
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident() $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() $body
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left, right, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (usize, u64)> {
        (1usize..=8, 1u64..500).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| *x < 100));
        }

        #[test]
        fn select_picks_members(k in prop::sample::select(vec![1usize, 2, 4, 8])) {
            prop_assert!([1usize, 2, 4, 8].contains(&k));
        }

        #[test]
        fn mapped_tuples_flow_through(p in pair_strategy(), flag in any::<bool>()) {
            let (nodes, limit) = p;
            prop_assert!((1..=8).contains(&nodes));
            prop_assert!((1..500).contains(&limit));
            prop_assume!(flag || limit > 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    #[allow(unnameable_test_items)]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
