//! In-tree stand-in for the subset of `parking_lot` this workspace uses:
//! [`Mutex`] and [`RwLock`] whose lock methods return guards directly
//! (no poison `Result`). Built on the std primitives; a panicked holder
//! aborts the poisoned lock's users via `expect`, which matches how the
//! workspace treats lock poisoning — as an unrecoverable bug.

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().expect("mutex poisoned"),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock poisoned")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().expect("rwlock poisoned"),
        }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().expect("rwlock poisoned"),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("rwlock poisoned")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8000);
    }

    #[test]
    fn rwlock_readers_see_writes() {
        let lock = RwLock::new(vec![1, 2, 3]);
        lock.write().push(4);
        assert_eq!(lock.read().len(), 4);
        assert_eq!(*lock.read(), vec![1, 2, 3, 4]);
    }
}
