//! In-tree stand-in for the subset of the `criterion` API this
//! workspace's benches use. Measurement is deliberately simple — a
//! warm-up iteration followed by a bounded timed loop, reporting the
//! mean wall-clock time per iteration (plus throughput when declared).
//! There is no statistical analysis, HTML report, or baseline storage;
//! the point is that `cargo bench` produces honest per-iteration numbers
//! and `cargo test --benches` stays fast (one iteration per benchmark,
//! driven by the `--test` flag cargo passes in that mode).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to report derived throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Labels a benchmark `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Labels a benchmark by parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured loop.
pub struct Bencher<'a> {
    samples: usize,
    budget: Duration,
    result: &'a mut Option<Duration>,
}

impl Bencher<'_> {
    /// Measures `routine`, storing the mean time per iteration.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine()); // warm-up, and the only iteration in test mode
        if self.samples <= 1 {
            *self.result = Some(Duration::ZERO);
            return;
        }
        let started = Instant::now();
        let mut iters = 0u32;
        while iters < self.samples as u32 && started.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        *self.result = Some(started.elapsed() / iters.max(1));
    }
}

/// The benchmark driver. Holds mode (bench vs `--test`) and defaults.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` runs harness=false bench binaries with
        // `--test`; honour it by running each routine exactly once.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 50,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing a name, sample size and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for derived throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let id = id.into();
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size
        };
        let mut result = None;
        let mut bencher = Bencher {
            samples,
            budget: Duration::from_secs(3),
            result: &mut result,
        };
        f(&mut bencher);
        self.report(&id.id, result);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        self.bench_function(id, |bencher| f(bencher, input))
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, result: Option<Duration>) {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let Some(mean) = result else {
            println!("bench {label:<40} (no measurement)");
            return;
        };
        if self.criterion.test_mode {
            println!("bench {label:<40} ok (test mode, 1 iteration)");
            return;
        }
        let per_iter = mean.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:.3e} elem/s", n as f64 / per_iter)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:.2} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("bench {label:<40} {:>12.3} us/iter{rate}", per_iter * 1e6);
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut criterion = Criterion { test_mode: true };
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        group.bench_function("count", |bench| bench.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("param", 42), &3u64, |bench, &x| {
            bench.iter(|| x * 2)
        });
        group.finish();
        assert_eq!(ran, 1, "test mode runs exactly one iteration");
    }
}
