//! In-tree stand-in for the subset of the `bytes` crate this workspace
//! uses: the [`Bytes`] container — an immutable, cheaply-cloneable byte
//! buffer (reference-counted, so clones share the allocation).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies a static slice into a buffer.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clones_share_contents() {
        let a = Bytes::from(b"monte cimone".to_vec());
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn derefs_to_slice() {
        let b = Bytes::from("4.81".to_string());
        let s: &[u8] = &b;
        assert_eq!(s, b"4.81");
        assert_eq!(std::str::from_utf8(&b).unwrap(), "4.81");
    }
}
