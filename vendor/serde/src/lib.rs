//! In-tree stand-in for the subset of `serde` this workspace uses.
//! Types in the workspace carry `#[derive(Serialize, Deserialize)]` as a
//! structural annotation, but nothing serialises through serde (the
//! monitor's JSON endpoint is hand-rolled), so [`Serialize`] and
//! [`Deserialize`] are empty marker traits blanket-implemented for every
//! type, and the derives (re-exported from the companion `serde_derive`
//! shim) expand to nothing.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    use crate as serde;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Sample {
        host: String,
        watts: f64,
    }

    #[derive(Debug, Serialize, Deserialize)]
    #[allow(dead_code)]
    enum Kind {
        A,
        B(u32),
        C { x: f64 },
    }

    fn assert_markers<T: Serialize + for<'de> Deserialize<'de>>() {}

    #[test]
    fn derives_compile_and_markers_hold() {
        assert_markers::<Sample>();
        assert_markers::<Kind>();
        let s = Sample {
            host: "mc-node-01".into(),
            watts: 4.81,
        };
        assert_eq!(s.clone(), s);
    }
}
