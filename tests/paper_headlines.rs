//! Cross-crate checks of every headline number the paper's abstract and
//! conclusions quote, so a regression anywhere in the stack that would
//! change the reproduction's story fails loudly here.

use monte_cimone::cluster::perf::{HplModel, HplProblem, LaxModel};
use monte_cimone::cluster::reference::ReferenceNode;
use monte_cimone::kernels::stream::StreamKernel;
use monte_cimone::mem::bandwidth::{table_v_sizes, StreamBandwidthModel};
use monte_cimone::soc::boot::BootSequence;
use monte_cimone::soc::power::PowerModel;
use monte_cimone::soc::rails::{Rail, Subsystem};
use monte_cimone::soc::workload::Workload;

#[test]
fn abstract_power_numbers() {
    let power = PowerModel::u740();
    // "a power consumption of 4.81 W in idle, composed of 64 % of core
    // power, 13 % related to DDR and 23 % of related to PCI subsystem"
    let idle_total = power.mean_total(Workload::Idle);
    assert!((idle_total.as_watts() - 4.81).abs() < 0.001);
    let core_share =
        power.mean_power(Rail::Core, Workload::Idle).as_milliwatts() / idle_total.as_milliwatts();
    assert!((core_share - 0.64).abs() < 0.01);
    let ddr_share: f64 = Subsystem::Ddr
        .rails()
        .map(|r| power.mean_power(r, Workload::Idle).as_milliwatts())
        .sum::<f64>()
        / idle_total.as_milliwatts();
    assert!((ddr_share - 0.13).abs() < 0.01);
    // "increases to 5.935 W under CPU intensive workloads"
    assert!((power.mean_total(Workload::Hpl).as_watts() - 5.935).abs() < 0.002);
}

#[test]
fn abstract_boot_decomposition() {
    // "0.981 W of leakage only power (32 % of the idle power) ... 0.514 W
    // consumed by the operating system (17 %) ... 1.577 W of dynamic and
    // clock tree power (51 %)" — (the paper's own text rounds leakage to
    // 0.981/0.984 in different places; Table VI's R1 column says 984 mW).
    let boot = BootSequence::u740_default();
    let d = boot.decompose(&PowerModel::u740(), Rail::Core);
    assert!((d.leakage().as_watts() - 0.984).abs() < 0.005);
    assert!((d.os().as_watts() - 0.514).abs() < 0.001);
    assert!((d.dynamic_and_clock_tree().as_watts() - 1.577).abs() < 0.001);
}

#[test]
fn section_va_hpl_numbers() {
    let hpl = HplModel::monte_cimone(HplProblem::paper());
    // "reached a sustained value of 1.86 ± 0.04 GFLOP/s on a single node
    // ... 46.5 % of the theoretical peak"
    assert!((hpl.gflops(1) - 1.86).abs() < 0.02);
    assert!((hpl.peak_utilisation(1) - 0.465).abs() < 0.005);
    // "12.65 ± 0.52 GFLOP/s using all of the eight nodes ... 39.5 % of the
    // entire machine's theoretical peak and 85 % of the extrapolated
    // attainable peak"
    assert!((hpl.gflops(8) - 12.65).abs() < 0.3);
    assert!((hpl.peak_utilisation(8) - 0.395).abs() < 0.01);
    assert!((hpl.efficiency_vs_linear(8) - 0.85).abs() < 0.02);
    // "(on a N=40704 and NB=192 HPL configuration and a total runtime of
    // 24105 ± 587 s)"; full machine "total runtime of 3548 ± 136 s".
    assert!((hpl.run_time(1) - 24105.0).abs() < 590.0);
    assert!((hpl.run_time(8) - 3548.0).abs() < 140.0);
}

#[test]
fn section_va_stream_numbers() {
    let model = StreamBandwidthModel::monte_cimone();
    // "an attained bandwidth of no more than 15.5 % of the available peak"
    let best = StreamKernel::ALL
        .into_iter()
        .map(|k| model.mean_bandwidth(k, table_v_sizes::ddr(), 4))
        .fold(0.0, f64::max);
    assert!((model.efficiency(best) - 0.155).abs() < 0.005);
    // Marconi100 48.2 %, Armida 63.21 %.
    assert!((ReferenceNode::marconi100().stream_efficiency - 0.482).abs() < 1e-12);
    assert!((ReferenceNode::armida().stream_efficiency - 0.6321).abs() < 1e-12);
}

#[test]
fn section_va_qe_numbers() {
    let lax = LaxModel::paper();
    // "a value of 1.44 ± 0.05 GFLOP/s (36 % of the theoretical FPU
    // efficiency) ... over a total test duration of 37.40 ± 0.14 s"
    assert!((lax.gflops() - 1.44).abs() < 0.01);
    assert!((lax.fpu_utilisation() - 0.36).abs() < 0.005);
    assert!((lax.run_time() - 37.40).abs() < 0.5);
}

#[test]
fn cross_isa_comparison_ordering() {
    // The paper's qualitative conclusion: Monte Cimone's HPL efficiency is
    // slightly lower but comparable; its STREAM efficiency is far behind.
    let mc = ReferenceNode::monte_cimone();
    let others = [ReferenceNode::marconi100(), ReferenceNode::armida()];
    for other in &others {
        assert!(mc.hpl_efficiency < other.hpl_efficiency);
        assert!(mc.hpl_efficiency > 0.7 * other.hpl_efficiency);
        assert!(mc.stream_efficiency < 0.5 * other.stream_efficiency);
    }
}
