//! Failure-injection integration tests: the reproduction must degrade the
//! way the real machine does — thermal trips requeue jobs, dead broker
//! subscribers don't wedge publishers, oversized allocations are refused,
//! and numerics report breakdown instead of fabricating answers.

use monte_cimone::cluster::engine::{
    ClusterWorkload, EngineConfig, EngineEvent, JobRequest, SimEngine,
};
use monte_cimone::cluster::perf::HplProblem;
use monte_cimone::cluster::thermal::AirflowConfig;
use monte_cimone::kernels::lu::{LuError, LuFactorization};
use monte_cimone::kernels::matrix::Matrix;
use monte_cimone::monitor::broker::Broker;
use monte_cimone::monitor::payload::Payload;
use monte_cimone::sched::job::JobState;
use monte_cimone::sched::scheduler::SchedError;
use monte_cimone::soc::isa::CodeModel;
use monte_cimone::soc::units::{SimDuration, SimTime};
use monte_cimone::soc::workload::Workload;

#[test]
fn thermal_trip_requeues_and_machine_recovers() {
    let mut engine = SimEngine::new(EngineConfig {
        airflow: AirflowConfig::LidOnTightStack,
        dt: SimDuration::from_secs(1),
        seed: 7,
        monitoring: false, // keep the test fast; the alarm path is covered elsewhere
        governor: None,
    });
    let id = engine
        .submit(JobRequest {
            name: "hpl".into(),
            user: "ops".into(),
            nodes: 8,
            workload: ClusterWorkload::Hpl(HplProblem::paper()),
        })
        .expect("fits");

    // Run until the trip.
    let deadline = engine.now() + SimDuration::from_secs(2500);
    while engine.now() < deadline
        && !engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::NodeTripped { .. }))
    {
        engine.step();
    }
    assert!(
        engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::JobRequeued { id: victim, .. } if *victim == id)),
        "the victim job must be requeued"
    );
    // 7 nodes in service: the 8-node job cannot restart.
    assert_eq!(engine.scheduler().job(id).expect("known").state(), JobState::Pending);
    assert_eq!(engine.scheduler().partition().in_service_count(), 7);

    // Fix the airflow, cool down, return the node: the job restarts.
    engine.set_airflow(AirflowConfig::LidOffSpaced);
    engine.run_for(SimDuration::from_secs(600)); // cool-down
    engine.resume_node(6);
    engine.run_for(SimDuration::from_secs(30));
    assert_eq!(engine.scheduler().job(id).expect("known").state(), JobState::Running);
    assert_eq!(engine.scheduler().job(id).expect("known").requeue_count(), 1);
}

#[test]
fn broker_survives_dead_subscribers_mid_burst() {
    let broker = Broker::new();
    let keep = broker.subscribe("#".parse().expect("valid"));
    let dropped = broker.subscribe("#".parse().expect("valid"));
    drop(dropped);
    for i in 0..1000u64 {
        broker.publish(
            &"burst/metric".parse().expect("valid"),
            Payload::new(i as f64, SimTime::from_micros(i)),
        );
    }
    assert_eq!(keep.drain().len(), 1000, "surviving subscriber sees everything");
    assert_eq!(broker.subscription_count(), 1, "dead subscriber pruned");
}

#[test]
fn oversized_jobs_are_rejected_not_queued_forever() {
    let mut engine = SimEngine::new(EngineConfig::default());
    let err = engine
        .submit(JobRequest {
            name: "too-big".into(),
            user: "ops".into(),
            nodes: 9,
            workload: ClusterWorkload::Synthetic {
                workload: Workload::Hpl,
                secs: 10,
            },
        })
        .expect_err("nine nodes never fit an eight-node machine");
    assert!(matches!(err, SchedError::TooLarge { requested: 9, available: 8 }));
}

#[test]
fn medany_code_model_rejects_oversized_static_arrays() {
    // The paper: upstream STREAM's statically-sized arrays cannot exceed
    // 2 GiB under the RV64 medany code model.
    let model = CodeModel::Medany;
    let three_arrays_of_80m_doubles = 3 * 80_000_000 * 8u64; // 1.92 GB: links
    assert!(model.check_static_allocation(three_arrays_of_80m_doubles).is_ok());
    let three_arrays_of_1gib = 3 * 1024 * 1024 * 1024u64; // 3 GiB: relocation overflow
    let err = model
        .check_static_allocation(three_arrays_of_1gib)
        .expect_err("past the ±2 GiB window");
    assert_eq!(err.limit(), 2 * 1024 * 1024 * 1024);
}

#[test]
fn singular_systems_report_breakdown() {
    let mut a = Matrix::zeros(8, 8);
    // Rank-1 matrix: LU must fail at the second pivot, not return garbage.
    for i in 0..8 {
        for j in 0..8 {
            a[(i, j)] = (i + 1) as f64 * (j + 1) as f64;
        }
    }
    let err = LuFactorization::factor(a, 4).expect_err("rank deficient");
    assert!(matches!(err, LuError::Singular { column: 1 }));
}

#[test]
fn node_failure_mid_stream_job_frees_other_nodes() {
    let mut engine = SimEngine::new(EngineConfig {
        monitoring: false,
        ..EngineConfig::default()
    });
    let id = engine
        .submit(JobRequest {
            name: "stream".into(),
            user: "dev".into(),
            nodes: 2,
            workload: ClusterWorkload::StreamDdr { secs: 1000 },
        })
        .expect("fits");
    engine.run_for(SimDuration::from_secs(5));
    assert_eq!(engine.scheduler().job(id).expect("known").state(), JobState::Running);

    // Kill one of the job's nodes: the job is requeued, its second node is
    // freed, and the partition bookkeeping stays consistent.
    let victim_host = engine.scheduler().job(id).expect("known").allocated_nodes()[0].clone();
    let index = victim_host
        .rsplit('-')
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .expect("hostname parses")
        - 1;
    let requeued = engine.inject_node_failure(index);
    assert_eq!(requeued, Some(id));
    assert_eq!(engine.scheduler().partition().in_service_count(), 7);
    assert!(engine.scheduler().check_invariants());

    // With 7 nodes still up, the 2-node job restarts on different nodes.
    engine.run_for(SimDuration::from_secs(5));
    let job = engine.scheduler().job(id).expect("known");
    assert_eq!(job.state(), JobState::Running);
    assert!(!job.allocated_nodes().contains(&victim_host));
    assert_eq!(job.requeue_count(), 1);
}
