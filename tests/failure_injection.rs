//! Failure-injection integration tests: the reproduction must degrade the
//! way the real machine does — thermal trips requeue jobs, dead broker
//! subscribers don't wedge publishers, oversized allocations are refused,
//! and numerics report breakdown instead of fabricating answers.

use monte_cimone::cluster::engine::{
    ClusterWorkload, EngineConfig, EngineEvent, JobRequest, SimEngine,
};
use monte_cimone::cluster::faults::{FaultKind, FaultPlan};
use monte_cimone::cluster::perf::HplProblem;
use monte_cimone::cluster::thermal::AirflowConfig;
use monte_cimone::kernels::lu::{LuError, LuFactorization};
use monte_cimone::kernels::matrix::Matrix;
use monte_cimone::monitor::broker::Broker;
use monte_cimone::monitor::payload::Payload;
use monte_cimone::sched::accounting::JobEventKind;
use monte_cimone::sched::job::JobState;
use monte_cimone::sched::scheduler::SchedError;
use monte_cimone::soc::isa::CodeModel;
use monte_cimone::soc::units::{SimDuration, SimTime};
use monte_cimone::soc::workload::Workload;

#[test]
fn thermal_trip_requeues_and_machine_recovers() {
    let mut engine = SimEngine::new(EngineConfig {
        airflow: AirflowConfig::LidOnTightStack,
        dt: SimDuration::from_secs(1),
        seed: 7,
        monitoring: false, // keep the test fast; the alarm path is covered elsewhere
        governor: None,
        recovery: None,
        ..EngineConfig::default()
    });
    let id = engine
        .submit(JobRequest {
            name: "hpl".into(),
            user: "ops".into(),
            nodes: 8,
            workload: ClusterWorkload::Hpl(HplProblem::paper()),
        })
        .expect("fits");

    // Run until the trip.
    let deadline = engine.now() + SimDuration::from_secs(2500);
    while engine.now() < deadline
        && !engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::NodeTripped { .. }))
    {
        engine.step();
    }
    assert!(
        engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::JobRequeued { id: victim, .. } if *victim == id)),
        "the victim job must be requeued"
    );
    // 7 nodes in service: the 8-node job cannot restart.
    assert_eq!(
        engine.scheduler().job(id).expect("known").state(),
        JobState::Pending
    );
    assert_eq!(engine.scheduler().partition().in_service_count(), 7);

    // Fix the airflow, cool down, return the node: the job restarts.
    engine.set_airflow(AirflowConfig::LidOffSpaced);
    engine.run_for(SimDuration::from_secs(600)); // cool-down
    engine.resume_node(6);
    engine.run_for(SimDuration::from_secs(30));
    assert_eq!(
        engine.scheduler().job(id).expect("known").state(),
        JobState::Running
    );
    assert_eq!(
        engine.scheduler().job(id).expect("known").requeue_count(),
        1
    );
}

#[test]
fn broker_survives_dead_subscribers_mid_burst() {
    let broker = Broker::new();
    let keep = broker.subscribe("#".parse().expect("valid"));
    let dropped = broker.subscribe("#".parse().expect("valid"));
    drop(dropped);
    for i in 0..1000u64 {
        broker.publish(
            &"burst/metric".parse().expect("valid"),
            Payload::new(i as f64, SimTime::from_micros(i)),
        );
    }
    assert_eq!(
        keep.drain().len(),
        1000,
        "surviving subscriber sees everything"
    );
    assert_eq!(broker.subscription_count(), 1, "dead subscriber pruned");
}

#[test]
fn oversized_jobs_are_rejected_not_queued_forever() {
    let mut engine = SimEngine::new(EngineConfig::default());
    let err = engine
        .submit(JobRequest {
            name: "too-big".into(),
            user: "ops".into(),
            nodes: 9,
            workload: ClusterWorkload::Synthetic {
                workload: Workload::Hpl,
                secs: 10,
            },
        })
        .expect_err("nine nodes never fit an eight-node machine");
    assert!(matches!(
        err,
        SchedError::TooLarge {
            requested: 9,
            available: 8
        }
    ));
}

#[test]
fn medany_code_model_rejects_oversized_static_arrays() {
    // The paper: upstream STREAM's statically-sized arrays cannot exceed
    // 2 GiB under the RV64 medany code model.
    let model = CodeModel::Medany;
    let three_arrays_of_80m_doubles = 3 * 80_000_000 * 8u64; // 1.92 GB: links
    assert!(model
        .check_static_allocation(three_arrays_of_80m_doubles)
        .is_ok());
    let three_arrays_of_1gib = 3 * 1024 * 1024 * 1024u64; // 3 GiB: relocation overflow
    let err = model
        .check_static_allocation(three_arrays_of_1gib)
        .expect_err("past the ±2 GiB window");
    assert_eq!(err.limit(), 2 * 1024 * 1024 * 1024);
}

#[test]
fn singular_systems_report_breakdown() {
    let mut a = Matrix::zeros(8, 8);
    // Rank-1 matrix: LU must fail at the second pivot, not return garbage.
    for i in 0..8 {
        for j in 0..8 {
            a[(i, j)] = (i + 1) as f64 * (j + 1) as f64;
        }
    }
    let err = LuFactorization::factor(a, 4).expect_err("rank deficient");
    assert!(matches!(err, LuError::Singular { column: 1 }));
}

#[test]
fn planned_crash_mid_job_backs_off_requeues_and_completes_elsewhere() {
    let mut engine = SimEngine::new(EngineConfig {
        monitoring: false,
        dt: SimDuration::from_secs(1),
        ..EngineConfig::default()
    })
    .with_fault_plan(
        FaultPlan::new()
            .with(SimTime::from_secs(10), FaultKind::NodeCrash { node: 0 })
            .with(SimTime::from_secs(90), FaultKind::NodeRecover { node: 0 }),
    );
    let id = engine
        .submit(JobRequest {
            name: "resilient".into(),
            user: "ops".into(),
            nodes: 2,
            workload: ClusterWorkload::Synthetic {
                workload: Workload::Hpl,
                secs: 30,
            },
        })
        .expect("fits");
    // Run past the planned recovery so the outage interval closes.
    engine.run_for(SimDuration::from_secs(120));
    assert!(engine.run_until_idle(SimDuration::ZERO), "must drain");

    // The crash hit the job's first node, the scheduler requeued it, and
    // it completed on the surviving nodes.
    let job = engine.scheduler().job(id).expect("known");
    assert_eq!(job.state(), JobState::Completed);
    assert_eq!(job.requeue_count(), 1);
    assert!(
        !job.allocated_nodes().contains(&"mc-node-01".to_owned()),
        "restart must avoid the crashed node, got {:?}",
        job.allocated_nodes()
    );

    // The exponential backoff is visible in the accounting log: the first
    // retry waits the 2 s base, charged against the crashed node.
    let requeue = engine
        .accounting()
        .events()
        .iter()
        .find_map(|e| match &e.kind {
            JobEventKind::Requeued { node, backoff } if e.job_id == id.0 => {
                Some((node.clone(), *backoff))
            }
            _ => None,
        })
        .expect("requeue event recorded");
    assert_eq!(requeue.0, "mc-node-01");
    assert_eq!(requeue.1, SimDuration::from_secs(2));
    assert_eq!(job.last_failure_at(), Some(SimTime::from_secs(10)));

    // Outage bookkeeping: one failure, 80 s of downtime, node back up.
    assert_eq!(engine.failure_count(), 1);
    assert_eq!(engine.node_downtime(0), SimDuration::from_secs(80));
    assert_eq!(engine.scheduler().partition().in_service_count(), 8);
}

#[test]
fn fault_campaigns_replay_identically_for_one_seed() {
    let campaign = || {
        let plan = FaultPlan::random_crashes(
            42,
            8,
            SimDuration::from_secs(900),
            20.0,
            SimDuration::from_secs(60),
        );
        let mut engine = SimEngine::new(EngineConfig {
            monitoring: false,
            dt: SimDuration::from_secs(1),
            ..EngineConfig::default()
        })
        .with_fault_plan(plan);
        for _ in 0..3 {
            engine
                .submit(JobRequest {
                    name: "churn".into(),
                    user: "ops".into(),
                    nodes: 2,
                    workload: ClusterWorkload::Synthetic {
                        workload: Workload::Hpl,
                        secs: 120,
                    },
                })
                .expect("fits");
        }
        engine.run_for(SimDuration::from_secs(900));
        (
            engine.events().to_vec(),
            engine.accounting().events().to_vec(),
            engine.total_downtime(),
            engine.failure_count(),
        )
    };
    let a = campaign();
    let b = campaign();
    assert!(
        a.0.iter()
            .any(|e| matches!(e, EngineEvent::FaultInjected { .. })),
        "the plan must actually fire"
    );
    assert_eq!(a, b, "identical seed + plan must replay identically");
}

#[test]
fn node_failure_mid_stream_job_frees_other_nodes() {
    let mut engine = SimEngine::new(EngineConfig {
        monitoring: false,
        ..EngineConfig::default()
    });
    let id = engine
        .submit(JobRequest {
            name: "stream".into(),
            user: "dev".into(),
            nodes: 2,
            workload: ClusterWorkload::StreamDdr { secs: 1000 },
        })
        .expect("fits");
    engine.run_for(SimDuration::from_secs(5));
    assert_eq!(
        engine.scheduler().job(id).expect("known").state(),
        JobState::Running
    );

    // Kill one of the job's nodes: the job is requeued, its second node is
    // freed, and the partition bookkeeping stays consistent.
    let victim_host = engine.scheduler().job(id).expect("known").allocated_nodes()[0].clone();
    let index = victim_host
        .rsplit('-')
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .expect("hostname parses")
        - 1;
    let requeued = engine.inject_node_failure(index);
    assert_eq!(requeued, vec![id]);
    assert_eq!(engine.scheduler().partition().in_service_count(), 7);
    assert!(engine.scheduler().check_invariants());

    // With 7 nodes still up, the 2-node job restarts on different nodes.
    engine.run_for(SimDuration::from_secs(5));
    let job = engine.scheduler().job(id).expect("known");
    assert_eq!(job.state(), JobState::Running);
    assert!(!job.allocated_nodes().contains(&victim_host));
    assert_eq!(job.requeue_count(), 1);
}
