//! The InfiniBand status of the paper (§III): two nodes carry Mellanox
//! ConnectX-4 FDR HCAs; the device enumerates, the kernel module loads and
//! `ib_ping` round-trips — between the two boards and to an HPC server —
//! but RDMA transport is not functional. Plus the "once RDMA works"
//! scaling expectation (§V-C).

use monte_cimone::cluster::node::ComputeNode;
use monte_cimone::cluster::perf::{HplModel, HplProblem};
use monte_cimone::net::ib::{IbCapability, IbError, IbHca};
use monte_cimone::net::link::LinkModel;

/// Builds the paper's hardware: HCAs in two of the eight nodes.
fn equipped_cluster() -> Vec<ComputeNode> {
    (0..8)
        .map(|i| {
            let node = ComputeNode::new(i);
            if i < 2 {
                node.with_infiniband(IbHca::connect_x4_fdr_on_riscv())
            } else {
                node
            }
        })
        .collect()
}

#[test]
fn two_nodes_carry_recognised_hcas() {
    let nodes = equipped_cluster();
    let equipped: Vec<&ComputeNode> = nodes.iter().filter(|n| n.infiniband().is_some()).collect();
    assert_eq!(equipped.len(), 2);
    for node in equipped {
        let hca = node.infiniband().expect("equipped");
        assert!(hca.supports(IbCapability::DeviceRecognized));
        assert!(hca.supports(IbCapability::KernelModuleLoaded));
        // The HCA wants 8 PCIe lanes; the board exposes exactly 8.
        assert!(hca.check_slot(node.soc().spec().pcie_lanes).is_ok());
    }
}

#[test]
fn ib_ping_works_between_boards() {
    let nodes = equipped_cluster();
    let a = nodes[0].infiniband().expect("equipped");
    let b = nodes[1].infiniband().expect("equipped");
    let rtt_ab = a.ping().expect("ping between boards succeeds");
    let rtt_ba = b.ping().expect("ping back succeeds");
    assert_eq!(rtt_ab, rtt_ba);
    assert!(rtt_ab.as_micros() < 10, "IB ping rtt {rtt_ab}");
}

#[test]
fn ib_ping_works_to_an_hpc_server() {
    // "and between a board and an HPC server" — the server side has a
    // fully supported stack; the RISC-V side still pings fine.
    let board = IbHca::connect_x4_fdr_on_riscv();
    let server = IbHca::connect_x4_fdr_fully_supported();
    assert!(board.ping().is_ok());
    assert!(server.ping().is_ok());
}

#[test]
fn rdma_fails_with_the_papers_diagnosis() {
    let nodes = equipped_cluster();
    let hca = nodes[0].infiniband().expect("equipped");
    let err = hca.rdma_write(1 << 20).expect_err("RDMA must fail");
    match err {
        IbError::Unsupported { capability, reason } => {
            assert_eq!(capability, IbCapability::RdmaTransport);
            assert!(reason.contains("kernel driver"), "reason: {reason}");
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn working_rdma_would_lift_the_scaling_curve() {
    // §V-C: "We can expect to achieve higher performance once the RDMA
    // will be supported over infiniband."
    let gbe = HplModel::monte_cimone(HplProblem::paper());
    let ib =
        HplModel::monte_cimone(HplProblem::paper()).with_link(LinkModel::infiniband_fdr(), 1.5);
    assert!(ib.efficiency_vs_linear(8) > 0.97);
    assert!(gbe.efficiency_vs_linear(8) < 0.88);
    assert!(ib.gflops(8) > 14.0, "IB full machine {}", ib.gflops(8));
}
