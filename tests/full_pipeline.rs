//! End-to-end integration: deploy the software stack, run a mixed batch of
//! jobs through the scheduler on the simulated machine with monitoring
//! enabled, and consume the results through accounting and the JSON query
//! interface — the full production path of the paper's cluster.

use monte_cimone::cluster::engine::{ClusterWorkload, EngineConfig, JobRequest, SimEngine};
use monte_cimone::cluster::experiments::software_stack;
use monte_cimone::cluster::perf::HplProblem;
use monte_cimone::monitor::query::{evaluate, QueryRequest};
use monte_cimone::monitor::tsdb::Aggregation;
use monte_cimone::sched::job::JobState;
use monte_cimone::soc::units::{SimDuration, SimTime};
use monte_cimone::soc::workload::Workload;

fn engine() -> SimEngine {
    SimEngine::new(EngineConfig::default())
}

#[test]
fn stack_then_jobs_then_queries() {
    // 1. The software stack deploys (Table I).
    let stack = software_stack::run().expect("stack concretises");
    assert!(stack.modules.iter().any(|m| m.starts_with("hpl/2.3")));

    // 2. A mixed batch: one multi-node HPL, one QE LAX, two STREAM runs.
    let mut engine = engine();
    let hpl = engine
        .submit(JobRequest {
            name: "hpl".into(),
            user: "alice".into(),
            nodes: 4,
            workload: ClusterWorkload::Hpl(HplProblem::new(4096, 192)),
        })
        .expect("fits");
    let qe = engine
        .submit(JobRequest {
            name: "qe-lax".into(),
            user: "bob".into(),
            nodes: 1,
            workload: ClusterWorkload::QeLax,
        })
        .expect("fits");
    for name in ["stream-ddr", "stream-l2"] {
        let workload = if name.ends_with("ddr") {
            ClusterWorkload::StreamDdr { secs: 20 }
        } else {
            ClusterWorkload::StreamL2 { secs: 20 }
        };
        engine
            .submit(JobRequest {
                name: name.into(),
                user: "bob".into(),
                nodes: 1,
                workload,
            })
            .expect("fits");
    }

    let drained = engine.run_until_idle(SimDuration::from_secs(600));
    assert!(drained, "all four jobs should finish");

    // 3. Accounting shows four completed jobs with energy attached.
    let records = engine.accounting().records();
    assert_eq!(records.len(), 4);
    for record in records {
        assert_eq!(record.state, JobState::Completed);
        assert!(record.energy.expect("energy accounted").as_joules() > 0.0);
    }
    assert_eq!(engine.accounting().by_user("bob").count(), 3);
    assert_eq!(
        engine.scheduler().job(hpl).expect("known").state(),
        JobState::Completed
    );
    assert_eq!(
        engine.scheduler().job(qe).expect("known").state(),
        JobState::Completed
    );

    // 4. The monitoring store answers a REST-style JSON query.
    let request = QueryRequest {
        filter: "org/unibo/cluster/cimone/node/+/plugin/pwr_pub/chnl/data/total_power".into(),
        from_secs: 0.0,
        to_secs: engine.now().as_secs_f64(),
        bin_secs: Some(5.0),
        aggregation: Some(Aggregation::Mean),
    };
    let response = evaluate(engine.store(), &request).expect("valid query");
    assert_eq!(response.series.len(), 8, "one power series per node");
    for series in &response.series {
        assert!(!series.points.is_empty());
        // Node power always sits between deep idle and the HPL envelope.
        for (_, watts) in &series.points {
            assert!((4.0..7.0).contains(watts), "{}: {watts} W", series.name);
        }
    }

    // 5. The pmu counters of a node that ran HPL advanced monotonically.
    let series = "org/unibo/cluster/cimone/node/mc-node-01/plugin/pmu_pub/chnl/data/core/0/instret";
    let points = engine.store().query(series, SimTime::ZERO, engine.now());
    assert!(points.len() > 10);
    assert!(points.windows(2).all(|w| w[1].1 >= w[0].1));
}

#[test]
fn utilisation_accounting_is_consistent() {
    let mut engine = engine();
    engine
        .submit(JobRequest {
            name: "full".into(),
            user: "ops".into(),
            nodes: 8,
            workload: ClusterWorkload::Synthetic {
                workload: Workload::Hpl,
                secs: 50,
            },
        })
        .expect("fits");
    assert!(engine.run_until_idle(SimDuration::from_secs(200)));
    let horizon = engine.now().saturating_since(SimTime::ZERO);
    let utilisation = engine.accounting().utilisation(8, horizon);
    // 8 nodes busy 50 s of ~51 s simulated: utilisation close to 1.
    assert!(utilisation > 0.9, "utilisation {utilisation}");
}

#[test]
fn backfill_runs_small_jobs_alongside_wide_queue_head() {
    let mut engine = engine();
    let wide_long = engine
        .submit(JobRequest {
            name: "wide-long".into(),
            user: "ops".into(),
            nodes: 6,
            workload: ClusterWorkload::Synthetic {
                workload: Workload::Hpl,
                secs: 300,
            },
        })
        .expect("fits");
    let full_next = engine
        .submit(JobRequest {
            name: "full-next".into(),
            user: "ops".into(),
            nodes: 8,
            workload: ClusterWorkload::Synthetic {
                workload: Workload::Hpl,
                secs: 50,
            },
        })
        .expect("fits");
    let small = engine
        .submit(JobRequest {
            name: "small".into(),
            user: "dev".into(),
            nodes: 2,
            workload: ClusterWorkload::Synthetic {
                workload: Workload::QeLax,
                secs: 30,
            },
        })
        .expect("fits");

    assert!(engine.run_until_idle(SimDuration::from_secs(2000)));
    let job = |id| engine.scheduler().job(id).expect("known");
    // The small job backfilled: it started before the wide-long job ended.
    assert!(job(small).started_at().unwrap() < job(wide_long).ended_at().unwrap());
    // And the head job was not delayed past the wide job's completion.
    assert!(job(full_next).started_at().unwrap() >= job(wide_long).ended_at().unwrap());
}
