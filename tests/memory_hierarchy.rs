//! Cross-validation of the Table V story: the *functional* pieces (cache
//! simulator, prefetcher detector, real STREAM kernels) must agree with
//! the *analytic* bandwidth model about why the two working-set regimes
//! behave so differently.

use monte_cimone::kernels::stream::{StreamConfig, StreamKernel, StreamRun};
use monte_cimone::mem::bandwidth::{table_v_sizes, StreamBandwidthModel};
use monte_cimone::mem::cache::{AccessKind, CacheConfig, SetAssocCache};
use monte_cimone::mem::prefetch::{PrefetcherConfig, StreamPrefetcher};
use monte_cimone::soc::units::Bytes;

/// Replays a triad-shaped address trace (two read streams, one write
/// stream) of `elements` doubles against the FU740's L2 geometry.
fn replay_triad(l2: &mut SetAssocCache, elements: u64, passes: usize) {
    let array_bytes = elements * 8;
    let (a, b, c) = (0u64, array_bytes, 2 * array_bytes);
    for _ in 0..passes {
        for i in (0..array_bytes).step_by(64) {
            l2.access(b + i, AccessKind::Read);
            l2.access(c + i, AccessKind::Read);
            l2.access(a + i, AccessKind::Write);
        }
    }
}

#[test]
fn l2_resident_working_sets_hit_after_warmup() {
    // Table V's L2 configuration: 1.1 MiB total across three arrays.
    let elements = table_v_sizes::l2().as_u64() / 3 / 8;
    let mut l2 = SetAssocCache::new(CacheConfig::fu740_l2());
    replay_triad(&mut l2, elements, 1); // warm-up
    l2.reset_stats();
    replay_triad(&mut l2, elements, 1);
    let hit_rate = l2.stats().hit_rate();
    assert!(hit_rate > 0.99, "L2-resident rerun should hit: {hit_rate}");
}

#[test]
fn ddr_resident_working_sets_thrash_the_l2() {
    // A scaled-down stand-in for the 1945.5 MiB set: 16 MiB is already 8x
    // the cache and produces the same streaming pathology.
    let elements = (16u64 << 20) / 3 / 8;
    let mut l2 = SetAssocCache::new(CacheConfig::fu740_l2());
    replay_triad(&mut l2, elements, 1);
    l2.reset_stats();
    replay_triad(&mut l2, elements, 1);
    let hit_rate = l2.stats().hit_rate();
    assert!(
        hit_rate < 0.01,
        "DDR-resident rerun should miss: {hit_rate}"
    );
}

#[test]
fn prefetcher_detector_sees_triad_streams_perfectly() {
    // The detector side of the paper's puzzle: STREAM's access pattern is
    // ideally prefetchable (three clean streams, 8 slots available)...
    let mut pf = StreamPrefetcher::new(PrefetcherConfig::u74_ideal(), 64);
    let array = 4u64 << 20;
    for i in (0..array).step_by(64) {
        pf.observe(i);
        pf.observe(array + i);
        pf.observe(2 * array + i);
    }
    assert!(
        pf.stats().coverage() > 0.9,
        "triad is ideally prefetchable: {}",
        pf.stats().coverage()
    );
    // ...which is exactly why the measured 15.5 % efficiency points at the
    // prefetcher not engaging, not at the pattern being hard.
    let observed = StreamBandwidthModel::monte_cimone();
    let bw = observed.mean_bandwidth(StreamKernel::Triad, table_v_sizes::ddr(), 4);
    assert!(observed.efficiency(bw) < 0.16);
}

#[test]
fn real_kernels_and_model_agree_on_bytes_per_element() {
    // The real STREAM run and the analytic model must account the same
    // traffic per element, or the MB/s columns would be apples-to-oranges.
    let elements = 10_000;
    let mut run = StreamRun::new(StreamConfig::new(elements, 2));
    for kernel in StreamKernel::ALL {
        run.run_kernel(kernel);
        let model_bytes = kernel.bytes_per_element() as u64 * elements as u64;
        // STREAM's canonical accounting: copy/scale 16 B, add/triad 24 B.
        let expected = match kernel {
            StreamKernel::Copy | StreamKernel::Scale => 16 * elements as u64,
            StreamKernel::Add | StreamKernel::Triad => 24 * elements as u64,
        };
        assert_eq!(model_bytes, expected, "{kernel}");
    }
}

#[test]
fn residency_threshold_matches_the_cache_capacity() {
    let model = StreamBandwidthModel::monte_cimone();
    // Below capacity: L2 regime; far above: DDR regime — consistent with
    // the simulator's hit-rate cliff demonstrated above.
    assert!(matches!(
        model.residency(Bytes::from_mib(1)),
        monte_cimone::mem::bandwidth::Residency::L2
    ));
    assert!(matches!(
        model.residency(Bytes::from_mib(16)),
        monte_cimone::mem::bandwidth::Residency::Ddr
    ));
}
