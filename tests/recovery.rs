//! End-to-end recovery: a node dies mid-HPL, the *failure detector* (not
//! an oracle) notices the silent heartbeats, the control plane fences the
//! node, and the job migrates to healthy nodes resuming from its last NFS
//! checkpoint — losing less than one checkpoint interval of work.

use monte_cimone::cluster::engine::{
    ClusterWorkload, EngineConfig, EngineEvent, JobRequest, SimEngine,
};
use monte_cimone::cluster::healing::RecoveryConfig;
use monte_cimone::cluster::perf::HplProblem;
use monte_cimone::sched::job::JobState;
use monte_cimone::soc::units::SimDuration;

const CKPT_INTERVAL_SECS: u64 = 300;

#[test]
fn crash_mid_hpl_is_detected_by_heartbeats_and_resumes_from_checkpoint() {
    let mut engine = SimEngine::new(EngineConfig {
        dt: SimDuration::from_secs(2),
        monitoring: false,
        recovery: Some(RecoveryConfig::with_checkpoints(SimDuration::from_secs(
            CKPT_INTERVAL_SECS,
        ))),
        ..EngineConfig::default()
    });
    // Half the machine, so the evicted job has healthy nodes to migrate to.
    let id = engine
        .submit(JobRequest {
            name: "hpl-ckpt".into(),
            user: "ops".into(),
            nodes: 4,
            workload: ClusterWorkload::Hpl(HplProblem::paper()),
        })
        .expect("fits");

    // Run long enough for at least one checkpoint commit, then kill one
    // of the job's nodes. The kill is *physical*: heartbeats stop, but
    // the scheduler is told nothing.
    engine.run_for(SimDuration::from_secs(1000));
    assert!(
        engine.checkpoints_written() >= 1,
        "a checkpoint must have committed before the crash"
    );
    let victim_host = engine.scheduler().job(id).expect("known").allocated_nodes()[0].clone();
    let victim = victim_host
        .rsplit('-')
        .next()
        .and_then(|s| s.parse::<usize>().ok())
        .expect("hostname parses")
        - 1;
    let crash_at = engine.now();
    let evicted = engine.inject_node_failure(victim);
    assert!(
        evicted.is_empty(),
        "recovery mode must not short-circuit the scheduler: {evicted:?}"
    );
    assert!(
        engine.scheduler().running().contains(&id),
        "immediately after the crash the scheduler still believes the job runs"
    );

    // The campaign finishes on the surviving nodes.
    assert!(
        engine.run_until_idle(SimDuration::from_secs(40_000)),
        "the job must finish on the surviving nodes"
    );

    // Detection came off the heartbeat path, with real latency.
    let suspected_at = engine
        .events()
        .iter()
        .find_map(|e| match e {
            EngineEvent::NodeSuspected { node, at, phi } if *node == victim => Some((*at, *phi)),
            _ => None,
        })
        .expect("the detector must suspect the silent node");
    let fenced_at = engine
        .events()
        .iter()
        .find_map(|e| match e {
            EngineEvent::NodeFenced { node, at } if *node == victim => Some(*at),
            _ => None,
        })
        .expect("the control plane must fence the suspect");
    assert!(
        suspected_at.1 >= 8.0,
        "phi at detection: {}",
        suspected_at.1
    );
    let latency = fenced_at.saturating_since(crash_at);
    assert!(
        latency > SimDuration::ZERO && latency < SimDuration::from_secs(120),
        "detection latency {latency} must be positive and bounded"
    );
    assert_eq!(engine.fence_count(), 1, "no false suspicions elsewhere");

    // The job restarted from its checkpoint, not from zero.
    let resumed = engine
        .events()
        .iter()
        .find_map(|e| match e {
            EngineEvent::JobResumed {
                id: j,
                at,
                progress,
            } if *j == id => Some((*at, *progress)),
            _ => None,
        })
        .expect("the job must resume from a checkpoint");
    assert!(resumed.0 >= fenced_at, "restart follows the fence");
    assert!(
        resumed.1 > 0.0 && resumed.1 < 1.0,
        "resume progress {} must be a mid-run checkpoint",
        resumed.1
    );

    // Wasted work stays under one checkpoint interval (per node), the
    // whole point of checkpointing.
    let wasted_per_node = engine.wasted_node_seconds() / 4.0;
    assert!(
        wasted_per_node < (CKPT_INTERVAL_SECS + 60) as f64,
        "wasted {wasted_per_node} progress-seconds per node, interval {CKPT_INTERVAL_SECS}"
    );

    // The job completed away from the dead node, and its restart point
    // was cleaned up.
    let job = engine.scheduler().job(id).expect("known");
    assert_eq!(job.state(), JobState::Completed);
    assert!(
        !job.allocated_nodes().contains(&victim_host),
        "the rerun must avoid the dead node, got {:?}",
        job.allocated_nodes()
    );
    assert!(
        engine.checkpoint_store().expect("recovery on").is_empty(),
        "completed jobs leave no checkpoint behind"
    );
}

#[test]
fn recovery_campaigns_replay_identically_for_one_seed() {
    let campaign = || {
        let mut engine = SimEngine::new(EngineConfig {
            dt: SimDuration::from_secs(2),
            monitoring: false,
            seed: 11,
            recovery: Some(RecoveryConfig::with_checkpoints(SimDuration::from_secs(
                CKPT_INTERVAL_SECS,
            ))),
            ..EngineConfig::default()
        });
        engine
            .submit(JobRequest {
                name: "hpl-replay".into(),
                user: "ops".into(),
                nodes: 4,
                workload: ClusterWorkload::Hpl(HplProblem::paper()),
            })
            .expect("fits");
        engine.run_for(SimDuration::from_secs(800));
        engine.inject_node_failure(0);
        engine.run_until_idle(SimDuration::from_secs(40_000));
        (engine.events().to_vec(), engine.wasted_node_seconds())
    };
    let (events_a, wasted_a) = campaign();
    let (events_b, wasted_b) = campaign();
    assert!(events_a
        .iter()
        .any(|e| matches!(e, EngineEvent::JobResumed { .. })));
    assert_eq!(events_a, events_b);
    assert_eq!(wasted_a.to_bits(), wasted_b.to_bits());
}
