//! Integration: the production login flow the paper's cluster supports —
//! authenticate against LDAP, land in an NFS home directory, run a job
//! through the scheduler, and write results back to the shared filesystem.

use monte_cimone::cluster::engine::{ClusterWorkload, EngineConfig, JobRequest, SimEngine};
use monte_cimone::cluster::perf::HplProblem;
use monte_cimone::cluster::services::ldap::{LdapDirectory, LdapError};
use monte_cimone::cluster::services::nfs::{NfsError, NfsServer};
use monte_cimone::soc::units::SimDuration;

#[test]
fn login_run_and_store_results() {
    // 1. The user authenticates against the LDAP directory.
    let directory = LdapDirectory::monte_cimone();
    let account = directory
        .bind("alice", "alice-pw")
        .expect("correct password");
    assert_eq!(account.home, "/home/alice");

    // 2. Her home directory lives on the NFS export every node mounts.
    let mut nfs = NfsServer::monte_cimone();
    let mount = nfs.mount("/home", "mc-node-01").expect("exported");
    nfs.create(&mount, "/home/alice/hpl.out", account.uid, false)
        .expect("fresh file");

    // 3. The job runs through the scheduler on the simulated machine.
    let mut engine = SimEngine::new(EngineConfig::default());
    engine
        .submit(JobRequest {
            name: "hpl".into(),
            user: account.username.clone(),
            nodes: 4,
            workload: ClusterWorkload::Hpl(HplProblem::new(4096, 192)),
        })
        .expect("fits the machine");
    assert!(engine.run_until_idle(SimDuration::from_secs(600)));
    let record = &engine.accounting().records()[0];

    // 4. Results are written back to the shared home.
    let report = format!(
        "user={} nodes={} elapsed={} energy={:?}",
        record.user,
        record.nodes.len(),
        record.elapsed,
        record.energy
    );
    nfs.write(
        &mount,
        "/home/alice/hpl.out",
        account.uid,
        report.as_bytes(),
    )
    .expect("owner writes");
    let (stored, _) = nfs
        .read(&mount, "/home/alice/hpl.out", account.uid)
        .expect("readable");
    assert!(String::from_utf8(stored)
        .unwrap()
        .contains("user=alice nodes=4"));
}

#[test]
fn wrong_credentials_never_reach_the_machine() {
    let directory = LdapDirectory::monte_cimone();
    let err = directory.bind("alice", "guess").expect_err("must fail");
    assert_eq!(err, LdapError::InvalidCredentials);
}

#[test]
fn other_users_cannot_clobber_results() {
    let directory = LdapDirectory::monte_cimone();
    let alice = directory.account("alice").expect("exists").uid;
    let bench = directory.account("bench").expect("exists").uid;
    let mut nfs = NfsServer::monte_cimone();
    let mount = nfs.mount("/home", "mc-node-03").expect("exported");
    nfs.create(&mount, "/home/alice/private.dat", alice, false)
        .expect("fresh");
    let err = nfs
        .write(&mount, "/home/alice/private.dat", bench, b"overwrite!")
        .expect_err("must be denied");
    assert!(matches!(err, NfsError::PermissionDenied { .. }));
}

#[test]
fn every_node_can_mount_the_shared_exports() {
    let nfs = NfsServer::monte_cimone();
    for i in 1..=8 {
        let host = format!("mc-node-{i:02}");
        assert!(nfs.mount("/home", &host).is_ok());
        assert!(
            nfs.mount("/opt/cimone", &host).is_ok(),
            "the Spack tree is shared"
        );
    }
}
