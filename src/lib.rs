//! # Monte Cimone — a reproduction in Rust
//!
//! This workspace reproduces *Monte Cimone: Paving the Road for the First
//! Generation of RISC-V High-Performance Computers* (Bartolini et al.,
//! SOCC 2022) as a deterministic, laptop-scale system: the paper's
//! contribution is a physical eight-node RISC-V cluster and its
//! characterisation, so the reproduction builds the machine — SoC, memory
//! hierarchy, interconnect, scheduler, package manager, monitoring — as
//! calibrated behavioural models, plus real dense linear-algebra kernels,
//! and regenerates every table and figure of the paper's evaluation.
//!
//! This crate is a facade: it re-exports the eight member crates so
//! downstream users can depend on one name.
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`soc`] | `cimone-soc` | SiFive Freedom U740 model: cores, HPM counters, power rails, boot |
//! | [`mem`] | `cimone-mem` | DDR4 + L2 + prefetcher + Table V bandwidth model |
//! | [`net`] | `cimone-net` | GbE / InfiniBand links, MPI cost models, message fabric |
//! | [`kernels`] | `cimone-kernels` | real DGEMM, LU/HPL, STREAM, eigensolver |
//! | [`sched`] | `cimone-sched` | Slurm-like batch scheduler |
//! | [`pkg`] | `cimone-pkg` | Spack-like package manager + archspec targets |
//! | [`monitor`] | `cimone-monitor` | ExaMon-like ODA stack |
//! | [`cluster`] | `cimone-cluster` | the machine, the engine, the experiments |
//!
//! # Examples
//!
//! ```
//! use monte_cimone::cluster::perf::{HplModel, HplProblem};
//!
//! // The paper's headline: 1.86 GFLOP/s on one node, 12.65 on eight.
//! let hpl = HplModel::monte_cimone(HplProblem::paper());
//! assert!((hpl.gflops(1) - 1.86).abs() < 0.02);
//! assert!((hpl.gflops(8) - 12.65).abs() < 0.3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use cimone_cluster as cluster;
pub use cimone_kernels as kernels;
pub use cimone_mem as mem;
pub use cimone_monitor as monitor;
pub use cimone_net as net;
pub use cimone_pkg as pkg;
pub use cimone_sched as sched;
pub use cimone_soc as soc;
