//! Property-based tests for versions, specs and the concretizer.

use proptest::prelude::*;

use cimone_pkg::concretize::concretize;
use cimone_pkg::repo::PackageRepo;
use cimone_pkg::spec::Spec;
use cimone_pkg::target::TargetRegistry;
use cimone_pkg::version::{Version, VersionReq};

fn version_strategy() -> impl Strategy<Value = Version> {
    prop::collection::vec(0u64..50, 1..5).prop_map(Version::new)
}

proptest! {
    #[test]
    fn version_display_parse_round_trips(v in version_strategy()) {
        let text = v.to_string();
        let back: Version = text.parse().expect("display output parses");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn version_ordering_is_total_and_antisymmetric(
        a in version_strategy(),
        b in version_strategy(),
    ) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => {
                prop_assert_eq!(b.cmp(&a), Ordering::Equal);
                prop_assert_eq!(&a, &b);
            }
        }
    }

    #[test]
    fn version_ordering_is_transitive(
        a in version_strategy(),
        b in version_strategy(),
        c in version_strategy(),
    ) {
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }

    #[test]
    fn trailing_zeros_do_not_change_equality(v in version_strategy()) {
        let mut padded = v.components().to_vec();
        padded.push(0);
        padded.push(0);
        prop_assert_eq!(Version::new(padded), v);
    }

    #[test]
    fn series_requirement_matches_its_own_version(v in version_strategy()) {
        let req = VersionReq::Series(v.clone());
        prop_assert!(req.matches(&v));
    }

    #[test]
    fn range_with_matching_bounds_contains_the_bound(v in version_strategy()) {
        let req = VersionReq::Range { min: Some(v.clone()), max: Some(v.clone()) };
        prop_assert!(req.matches(&v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Concretisation of any builtin package, with any subset of its
    /// declared variants toggled, yields a sound DAG: topologically
    /// ordered, closed under dependencies, with stable hashes.
    #[test]
    fn concretizer_soundness(
        pkg_index in 0usize..21,
        toggles in prop::collection::vec(any::<bool>(), 0..3),
    ) {
        let repo = PackageRepo::builtin();
        let targets = TargetRegistry::builtin();
        let names: Vec<&str> = repo.names().collect();
        let name = names[pkg_index % names.len()];
        let def = repo.get(name).expect("exists");

        let mut spec = Spec::bare(name).with_target("u74mc");
        for (variant, value) in def.variants().keys().zip(&toggles) {
            spec = spec.with_variant(variant.clone(), *value);
        }

        let dag = concretize(&spec, &repo, &targets).expect("builtin repo resolves");
        // Root present and matching.
        prop_assert_eq!(dag.root().name.as_str(), name);
        // Build order is a topological order over the DAG.
        let order = dag.build_order();
        let pos = |n: &str| order.iter().position(|o| o == n).expect("in order");
        for s in dag.specs() {
            for dep in &s.deps {
                prop_assert!(dag.get(dep).is_some(), "{} dep {} missing", s.name, dep);
                prop_assert!(pos(dep) < pos(&s.name), "{} before {}", dep, s.name);
            }
        }
        // Hashes are stable across a second resolution.
        let again = concretize(&spec, &repo, &targets).expect("still resolves");
        prop_assert_eq!(dag.root().hash.clone(), again.root().hash.clone());
        // Every resolved version is a known version of its package.
        for s in dag.specs() {
            let def = repo.get(&s.name).expect("exists");
            prop_assert!(def.versions().contains(&s.version));
        }
    }
}
