//! Dotted package versions and version requirements.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A dotted numeric version such as `10.3.0`.
///
/// Comparison is componentwise with missing trailing components treated as
/// zero, so `1.2 == 1.2.0` and `1.10 > 1.9`.
///
/// # Examples
///
/// ```
/// use cimone_pkg::version::Version;
///
/// let a: Version = "0.3.18".parse()?;
/// let b: Version = "0.3.9".parse()?;
/// assert!(a > b);
/// # Ok::<(), cimone_pkg::version::VersionParseError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Version(Vec<u64>);

impl PartialEq for Version {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Version {}

impl std::hash::Hash for Version {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash consistently with Eq: ignore trailing zero components.
        let trimmed_len = self.0.iter().rposition(|&c| c != 0).map_or(1, |i| i + 1);
        self.0[..trimmed_len].hash(state);
    }
}

impl Version {
    /// Builds a version from components.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty.
    pub fn new(components: impl Into<Vec<u64>>) -> Self {
        let components = components.into();
        assert!(
            !components.is_empty(),
            "version needs at least one component"
        );
        Version(components)
    }

    /// The components.
    pub fn components(&self) -> &[u64] {
        &self.0
    }

    /// The leading (major) component.
    pub fn major(&self) -> u64 {
        self.0[0]
    }
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Version {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let len = self.0.len().max(other.0.len());
        for i in 0..len {
            let a = self.0.get(i).copied().unwrap_or(0);
            let b = other.0.get(i).copied().unwrap_or(0);
            match a.cmp(&b) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|c| c.to_string()).collect();
        f.write_str(&parts.join("."))
    }
}

/// A malformed version string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionParseError {
    input: String,
}

impl fmt::Display for VersionParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid version string {:?}", self.input)
    }
}

impl std::error::Error for VersionParseError {}

impl FromStr for Version {
    type Err = VersionParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || VersionParseError {
            input: s.to_owned(),
        };
        if s.is_empty() {
            return Err(err());
        }
        let components = s
            .split('.')
            .map(|c| c.parse::<u64>().map_err(|_| err()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Version(components))
    }
}

/// A version requirement in Spack syntax: `1.2` (prefix match on a release
/// series), `1.2:1.4` (inclusive range), `1.2:` / `:1.4` (open ranges), or
/// empty (any).
///
/// # Examples
///
/// ```
/// use cimone_pkg::version::{Version, VersionReq};
///
/// let req: VersionReq = "4.1".parse()?;
/// assert!(req.matches(&"4.1.1".parse::<Version>()?));
/// assert!(!req.matches(&"4.2.0".parse::<Version>()?));
/// # Ok::<(), cimone_pkg::version::VersionParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum VersionReq {
    /// Any version.
    #[default]
    Any,
    /// The named release series: `1.2` matches `1.2`, `1.2.3`, not `1.20`.
    Series(Version),
    /// An inclusive range; `None` bounds are open.
    Range {
        /// Lower bound, inclusive.
        min: Option<Version>,
        /// Upper bound, inclusive (series semantics on the boundary).
        max: Option<Version>,
    },
}

impl VersionReq {
    /// Whether `v` satisfies this requirement.
    pub fn matches(&self, v: &Version) -> bool {
        match self {
            VersionReq::Any => true,
            VersionReq::Series(series) => {
                v.components().len() >= series.components().len()
                    && v.components()[..series.components().len()] == *series.components()
            }
            VersionReq::Range { min, max } => {
                if let Some(min) = min {
                    if v < min {
                        return false;
                    }
                }
                if let Some(max) = max {
                    // Inclusive with series semantics: 1.4.2 satisfies :1.4.
                    let prefix_len = max.components().len().min(v.components().len());
                    let truncated = Version::new(v.components()[..prefix_len].to_vec());
                    if &truncated > max {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// The most permissive requirement satisfied by both `self` and
    /// `other`, or `None` if they are incompatible for every version in
    /// `candidates`.
    ///
    /// Concretisation works over finite candidate lists, so intersection is
    /// evaluated extensionally.
    pub fn intersects_over<'a>(
        &self,
        other: &VersionReq,
        candidates: impl IntoIterator<Item = &'a Version>,
    ) -> bool {
        candidates
            .into_iter()
            .any(|v| self.matches(v) && other.matches(v))
    }
}

impl fmt::Display for VersionReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionReq::Any => f.write_str(""),
            VersionReq::Series(v) => write!(f, "@{v}"),
            VersionReq::Range { min, max } => {
                let lo = min.as_ref().map(|v| v.to_string()).unwrap_or_default();
                let hi = max.as_ref().map(|v| v.to_string()).unwrap_or_default();
                write!(f, "@{lo}:{hi}")
            }
        }
    }
}

impl FromStr for VersionReq {
    type Err = VersionParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Ok(VersionReq::Any);
        }
        if let Some((lo, hi)) = s.split_once(':') {
            let min = if lo.is_empty() {
                None
            } else {
                Some(lo.parse()?)
            };
            let max = if hi.is_empty() {
                None
            } else {
                Some(hi.parse()?)
            };
            Ok(VersionReq::Range { min, max })
        } else {
            Ok(VersionReq::Series(s.parse()?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        s.parse().unwrap()
    }

    #[test]
    fn ordering_is_componentwise_numeric() {
        assert!(v("1.10") > v("1.9"));
        assert!(v("2.0") > v("1.99.99"));
        assert_eq!(v("1.2"), v("1.2.0"));
        assert!(v("0.3.18") > v("0.3.9"));
    }

    #[test]
    fn display_round_trips() {
        for s in ["10.3.0", "2.3", "5"] {
            assert_eq!(v(s).to_string(), s);
        }
    }

    #[test]
    fn series_requirement_is_prefix_based() {
        let req: VersionReq = "1.2".parse().unwrap();
        assert!(req.matches(&v("1.2")));
        assert!(req.matches(&v("1.2.5")));
        assert!(!req.matches(&v("1.20")));
        assert!(!req.matches(&v("1.3")));
    }

    #[test]
    fn range_requirements() {
        let req: VersionReq = "1.2:1.4".parse().unwrap();
        assert!(req.matches(&v("1.2")));
        assert!(req.matches(&v("1.3.7")));
        assert!(req.matches(&v("1.4.2"))); // inclusive series upper bound
        assert!(!req.matches(&v("1.5")));
        assert!(!req.matches(&v("1.1.9")));

        let open_hi: VersionReq = "2:".parse().unwrap();
        assert!(open_hi.matches(&v("12.1")));
        assert!(!open_hi.matches(&v("1.9")));

        let open_lo: VersionReq = ":0.17".parse().unwrap();
        assert!(open_lo.matches(&v("0.17.0")));
        assert!(!open_lo.matches(&v("0.18")));
    }

    #[test]
    fn any_matches_everything() {
        let req = VersionReq::Any;
        assert!(req.matches(&v("0.0.1")));
        assert!(req.matches(&v("99")));
    }

    #[test]
    fn extensional_intersection() {
        let a: VersionReq = "1:2".parse().unwrap();
        let b: VersionReq = "2:3".parse().unwrap();
        let candidates = [v("1.5"), v("2.1"), v("3.0")];
        assert!(a.intersects_over(&b, candidates.iter()));
        let c: VersionReq = "4:".parse().unwrap();
        assert!(!a.intersects_over(&c, candidates.iter()));
    }

    #[test]
    fn parse_errors_are_informative() {
        let err = "1.x".parse::<Version>().unwrap_err();
        assert!(err.to_string().contains("1.x"));
        assert!("".parse::<Version>().is_err());
    }
}
