//! The concretizer: abstract spec → fully resolved dependency DAG.
//!
//! Mirrors Spack's behaviour at the granularity the paper relies on:
//! variant-conditional dependencies, unified (single-version) resolution per
//! package, maximal versions subject to all accumulated constraints, target
//! and compiler propagation from the root, content hashes, and a
//! topological build order.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::repo::{PackageRepo, UnknownPackageError};
use crate::spec::{CompilerSpec, Spec};
use crate::target::{TargetRegistry, UnknownTargetError};
use crate::version::{Version, VersionReq};

/// The default compiler used when a spec does not constrain one — the
/// paper's deployed toolchain.
pub fn default_compiler() -> CompilerSpec {
    CompilerSpec {
        name: "gcc".to_owned(),
        version: "10.3.0".parse().expect("builtin version parses"),
    }
}

/// The default target when a spec does not constrain one.
pub const DEFAULT_TARGET: &str = "u74mc";

/// A fully concretised package.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcreteSpec {
    /// Package name.
    pub name: String,
    /// The resolved version.
    pub version: Version,
    /// All variants with resolved values.
    pub variants: BTreeMap<String, bool>,
    /// The compiler.
    pub compiler: CompilerSpec,
    /// The target name.
    pub target: String,
    /// Direct dependency package names, sorted.
    pub deps: Vec<String>,
    /// Content hash (stable across runs).
    pub hash: String,
}

impl fmt::Display for ConcreteSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} %{}@{} target={} /{}",
            self.name,
            self.version,
            self.compiler.name,
            self.compiler.version,
            self.target,
            &self.hash[..7.min(self.hash.len())]
        )
    }
}

/// A resolved DAG rooted at one spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Concretization {
    root: String,
    specs: BTreeMap<String, ConcreteSpec>,
    /// Build order: dependencies strictly before dependents.
    order: Vec<String>,
}

impl Concretization {
    /// The root package name.
    pub fn root(&self) -> &ConcreteSpec {
        &self.specs[&self.root]
    }

    /// Looks up a resolved package by name.
    pub fn get(&self, name: &str) -> Option<&ConcreteSpec> {
        self.specs.get(name)
    }

    /// All resolved packages, sorted by name.
    pub fn specs(&self) -> impl Iterator<Item = &ConcreteSpec> {
        self.specs.values()
    }

    /// Number of packages in the DAG.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the DAG is empty (never true: the root is always present).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The topological build order (dependencies first).
    pub fn build_order(&self) -> &[String] {
        &self.order
    }
}

/// Concretisation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ConcretizeError {
    /// A package was not in the repository.
    UnknownPackage(UnknownPackageError),
    /// A target was not in the registry.
    UnknownTarget(UnknownTargetError),
    /// No version satisfies all accumulated requirements.
    VersionConflict {
        /// The package in conflict.
        package: String,
        /// The requirements that could not be satisfied together.
        requirements: Vec<String>,
    },
    /// The dependency graph has a cycle.
    DependencyCycle {
        /// A path exhibiting the cycle.
        path: Vec<String>,
    },
    /// A variant was requested that the package does not declare.
    UnknownVariant {
        /// The package.
        package: String,
        /// The undeclared variant.
        variant: String,
    },
}

impl fmt::Display for ConcretizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcretizeError::UnknownPackage(e) => e.fmt(f),
            ConcretizeError::UnknownTarget(e) => e.fmt(f),
            ConcretizeError::VersionConflict {
                package,
                requirements,
            } => write!(
                f,
                "no version of {package} satisfies all of: {}",
                requirements.join(", ")
            ),
            ConcretizeError::DependencyCycle { path } => {
                write!(f, "dependency cycle: {}", path.join(" -> "))
            }
            ConcretizeError::UnknownVariant { package, variant } => {
                write!(f, "package {package} has no variant {variant:?}")
            }
        }
    }
}

impl std::error::Error for ConcretizeError {}

impl From<UnknownPackageError> for ConcretizeError {
    fn from(e: UnknownPackageError) -> Self {
        ConcretizeError::UnknownPackage(e)
    }
}

impl From<UnknownTargetError> for ConcretizeError {
    fn from(e: UnknownTargetError) -> Self {
        ConcretizeError::UnknownTarget(e)
    }
}

/// Concretises `root` against `repo` and `targets`.
///
/// # Errors
///
/// See [`ConcretizeError`] for the failure modes.
///
/// # Examples
///
/// ```
/// use cimone_pkg::concretize::concretize;
/// use cimone_pkg::repo::PackageRepo;
/// use cimone_pkg::target::TargetRegistry;
///
/// let dag = concretize(
///     &"hpl@2.3 target=u74mc".parse()?,
///     &PackageRepo::builtin(),
///     &TargetRegistry::builtin(),
/// )?;
/// assert_eq!(dag.root().version.to_string(), "2.3");
/// assert!(dag.get("openblas").is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn concretize(
    root: &Spec,
    repo: &PackageRepo,
    targets: &TargetRegistry,
) -> Result<Concretization, ConcretizeError> {
    let compiler = root.compiler().cloned().unwrap_or_else(default_compiler);
    let target = root.target().unwrap_or(DEFAULT_TARGET).to_owned();
    targets.get(&target)?;

    // Resolve the root's variants against its definition.
    let root_def = repo.get(root.name())?;
    for requested in root.variants().keys() {
        if !root_def.variants().contains_key(requested) {
            return Err(ConcretizeError::UnknownVariant {
                package: root.name().to_owned(),
                variant: requested.clone(),
            });
        }
    }

    // Phase 1: discover the graph (DFS), detect cycles, accumulate version
    // requirements. Non-root packages use default variants; the root's
    // requested variants steer its conditional deps.
    let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut reqs: BTreeMap<String, Vec<VersionReq>> = BTreeMap::new();
    reqs.entry(root.name().to_owned())
        .or_default()
        .push(root.version().clone());

    let mut path: Vec<String> = Vec::new();
    let mut done: BTreeSet<String> = BTreeSet::new();
    discover(
        root.name(),
        root,
        repo,
        &mut edges,
        &mut reqs,
        &mut path,
        &mut done,
    )?;

    // Phase 2: pick maximal versions subject to all requirements.
    let mut versions: BTreeMap<String, Version> = BTreeMap::new();
    for (name, requirements) in &reqs {
        let def = repo.get(name)?;
        let chosen = def
            .versions()
            .iter()
            .rev()
            .find(|v| requirements.iter().all(|r| r.matches(v)));
        match chosen {
            Some(v) => {
                versions.insert(name.clone(), v.clone());
            }
            None => {
                return Err(ConcretizeError::VersionConflict {
                    package: name.clone(),
                    requirements: requirements.iter().map(|r| format!("{r}")).collect(),
                })
            }
        }
    }

    // Phase 3: topological order (dependencies before dependents).
    let order = topo_order(root.name(), &edges);

    // Phase 4: build concrete specs with content hashes (deps first so a
    // package's hash can include its dependencies' hashes).
    let mut specs: BTreeMap<String, ConcreteSpec> = BTreeMap::new();
    for name in &order {
        let def = repo.get(name)?;
        let mut variants = def.variants().clone();
        if name == root.name() {
            for (k, v) in root.variants() {
                variants.insert(k.clone(), *v);
            }
        }
        let deps: Vec<String> = edges
            .get(name)
            .cloned()
            .unwrap_or_default()
            .into_iter()
            .collect();
        let mut content = format!(
            "{name}@{}|%{}@{}|target={target}",
            versions[name], compiler.name, compiler.version
        );
        for (k, v) in &variants {
            content.push_str(&format!("|{}{k}", if *v { '+' } else { '~' }));
        }
        for d in &deps {
            content.push_str(&format!("|dep={}/{}", d, specs[d].hash));
        }
        specs.insert(
            name.clone(),
            ConcreteSpec {
                name: name.clone(),
                version: versions[name].clone(),
                variants,
                compiler: compiler.clone(),
                target: target.clone(),
                deps,
                hash: content_hash(&content),
            },
        );
    }

    Ok(Concretization {
        root: root.name().to_owned(),
        specs,
        order,
    })
}

/// DFS discovery with cycle detection.
fn discover(
    name: &str,
    root: &Spec,
    repo: &PackageRepo,
    edges: &mut BTreeMap<String, BTreeSet<String>>,
    reqs: &mut BTreeMap<String, Vec<VersionReq>>,
    path: &mut Vec<String>,
    done: &mut BTreeSet<String>,
) -> Result<(), ConcretizeError> {
    if path.iter().any(|p| p == name) {
        let mut cycle = path.clone();
        cycle.push(name.to_owned());
        return Err(ConcretizeError::DependencyCycle { path: cycle });
    }
    if done.contains(name) {
        return Ok(());
    }
    path.push(name.to_owned());
    let def = repo.get(name)?;

    // Effective variants: defaults, overridden at the root by the request.
    let mut variants = def.variants().clone();
    if name == root.name() {
        for (k, v) in root.variants() {
            variants.insert(k.clone(), *v);
        }
    }

    for dep in def.deps() {
        if let Some((variant, value)) = &dep.when {
            if variants.get(variant) != Some(value) {
                continue;
            }
        }
        edges
            .entry(name.to_owned())
            .or_default()
            .insert(dep.name.clone());
        reqs.entry(dep.name.clone())
            .or_default()
            .push(dep.req.clone());
        discover(&dep.name, root, repo, edges, reqs, path, done)?;
    }
    path.pop();
    done.insert(name.to_owned());
    Ok(())
}

/// Post-order DFS = dependencies before dependents.
fn topo_order(root: &str, edges: &BTreeMap<String, BTreeSet<String>>) -> Vec<String> {
    fn visit(
        name: &str,
        edges: &BTreeMap<String, BTreeSet<String>>,
        seen: &mut BTreeSet<String>,
        out: &mut Vec<String>,
    ) {
        if seen.contains(name) {
            return;
        }
        seen.insert(name.to_owned());
        if let Some(deps) = edges.get(name) {
            for dep in deps {
                visit(dep, edges, seen, out);
            }
        }
        out.push(name.to_owned());
    }
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    visit(root, edges, &mut seen, &mut out);
    out
}

/// A small stable content hash (FNV-1a, hex-encoded).
fn content_hash(content: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in content.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repo::{Dependency, PackageDef, TABLE_I_STACK};

    fn builtin() -> (PackageRepo, TargetRegistry) {
        (PackageRepo::builtin(), TargetRegistry::builtin())
    }

    #[test]
    fn table_i_stack_concretizes_to_paper_versions() {
        let (repo, targets) = builtin();
        for (name, version) in TABLE_I_STACK {
            let spec: Spec = format!("{name} target=u74mc").parse().unwrap();
            let dag = concretize(&spec, &repo, &targets).unwrap();
            assert_eq!(
                dag.root().version.to_string(),
                version,
                "{name} resolved to the wrong version"
            );
            assert_eq!(dag.root().target, "u74mc");
            assert_eq!(dag.root().compiler.version.to_string(), "10.3.0");
        }
    }

    #[test]
    fn hpl_pulls_mpi_and_blas() {
        let (repo, targets) = builtin();
        let dag = concretize(&"hpl".parse().unwrap(), &repo, &targets).unwrap();
        for expected in ["openmpi", "openblas", "hwloc", "zlib"] {
            assert!(dag.get(expected).is_some(), "missing {expected}");
        }
    }

    #[test]
    fn build_order_respects_dependencies() {
        let (repo, targets) = builtin();
        let dag = concretize(&"quantum-espresso".parse().unwrap(), &repo, &targets).unwrap();
        let order = dag.build_order();
        let pos = |n: &str| order.iter().position(|o| o == n).unwrap();
        for spec in dag.specs() {
            for dep in &spec.deps {
                assert!(
                    pos(dep) < pos(&spec.name),
                    "{dep} must build before {}",
                    spec.name
                );
            }
        }
        assert_eq!(order.last().map(String::as_str), Some("quantum-espresso"));
    }

    #[test]
    fn variant_toggles_conditional_dependencies() {
        let (repo, targets) = builtin();
        let with = concretize(&"fftw +mpi".parse().unwrap(), &repo, &targets).unwrap();
        assert!(with.get("openmpi").is_some());
        let without = concretize(&"fftw ~mpi".parse().unwrap(), &repo, &targets).unwrap();
        assert!(without.get("openmpi").is_none());
        assert!(without.len() < with.len());
    }

    #[test]
    fn version_requirements_pin_older_releases() {
        let (repo, targets) = builtin();
        let dag = concretize(&"openmpi@4.0".parse().unwrap(), &repo, &targets).unwrap();
        assert_eq!(dag.root().version.to_string(), "4.0.5");
    }

    #[test]
    fn impossible_requirements_conflict() {
        let (repo, targets) = builtin();
        let err = concretize(&"hpl@9.9".parse().unwrap(), &repo, &targets).unwrap_err();
        assert!(matches!(err, ConcretizeError::VersionConflict { .. }));
        assert!(err.to_string().contains("hpl"));
    }

    #[test]
    fn unknown_package_variant_target_errors() {
        let (repo, targets) = builtin();
        assert!(matches!(
            concretize(&"nonexistent".parse().unwrap(), &repo, &targets),
            Err(ConcretizeError::UnknownPackage(_))
        ));
        assert!(matches!(
            concretize(&"hpl target=m1max".parse().unwrap(), &repo, &targets),
            Err(ConcretizeError::UnknownTarget(_))
        ));
        assert!(matches!(
            concretize(&"hpl +cuda".parse().unwrap(), &repo, &targets),
            Err(ConcretizeError::UnknownVariant { .. })
        ));
    }

    #[test]
    fn cycles_are_detected() {
        let repo = PackageRepo::new(vec![
            PackageDef::new("a", ["1.0"]).dep(Dependency::any("b")),
            PackageDef::new("b", ["1.0"]).dep(Dependency::any("a")),
        ]);
        let err = concretize(&"a".parse().unwrap(), &repo, &TargetRegistry::builtin()).unwrap_err();
        assert!(matches!(err, ConcretizeError::DependencyCycle { .. }));
    }

    #[test]
    fn hashes_are_stable_and_distinguish_configurations() {
        let (repo, targets) = builtin();
        let a = concretize(&"hpl".parse().unwrap(), &repo, &targets).unwrap();
        let b = concretize(&"hpl".parse().unwrap(), &repo, &targets).unwrap();
        assert_eq!(a.root().hash, b.root().hash);
        let c = concretize(&"hpl target=riscv64".parse().unwrap(), &repo, &targets).unwrap();
        assert_ne!(a.root().hash, c.root().hash);
    }

    #[test]
    fn dependency_hash_changes_propagate_to_dependents() {
        let (repo, targets) = builtin();
        let new = concretize(&"netlib-scalapack".parse().unwrap(), &repo, &targets).unwrap();
        // Pinning the MPI dependency at the root is not expressible here,
        // but a different root DAG (different deps) must hash differently
        // from a sub-package's own hash context.
        let root_hash = &new.root().hash;
        let lapack_hash = &new.get("netlib-lapack").unwrap().hash;
        assert_ne!(root_hash, lapack_hash);
    }
}
