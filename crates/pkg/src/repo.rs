//! The package repository: definitions the concretizer resolves against.
//!
//! [`PackageRepo::builtin`] is a snapshot contemporaneous with the paper's
//! Spack 0.17.0 deployment: the nine user-facing packages of Table I (at
//! exactly the versions the paper lists as latest) plus their transitive
//! dependencies.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::version::{Version, VersionReq};

/// A dependency edge, optionally conditional on a variant setting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dependency {
    /// Depended-on package.
    pub name: String,
    /// Version requirement on the dependency.
    pub req: VersionReq,
    /// Only active when the dependent's variant has this value.
    pub when: Option<(String, bool)>,
}

impl Dependency {
    /// An unconditional dependency with any version.
    pub fn any(name: impl Into<String>) -> Self {
        Dependency {
            name: name.into(),
            req: VersionReq::Any,
            when: None,
        }
    }

    /// Adds a version requirement.
    pub fn with_req(mut self, req: VersionReq) -> Self {
        self.req = req;
        self
    }

    /// Makes the edge conditional on a variant value.
    pub fn when(mut self, variant: impl Into<String>, value: bool) -> Self {
        self.when = Some((variant.into(), value));
        self
    }
}

/// A package definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackageDef {
    name: String,
    /// Known versions, ascending.
    versions: Vec<Version>,
    /// Variant names with default values.
    variants: BTreeMap<String, bool>,
    deps: Vec<Dependency>,
}

impl PackageDef {
    /// Creates a definition.
    ///
    /// # Panics
    ///
    /// Panics if no versions are given.
    pub fn new(name: impl Into<String>, versions: impl IntoIterator<Item = &'static str>) -> Self {
        let mut versions: Vec<Version> = versions
            .into_iter()
            .map(|s| s.parse().expect("builtin versions parse"))
            .collect();
        assert!(!versions.is_empty(), "package needs at least one version");
        versions.sort();
        PackageDef {
            name: name.into(),
            versions,
            variants: BTreeMap::new(),
            deps: Vec::new(),
        }
    }

    /// Adds a variant with its default.
    pub fn variant(mut self, name: impl Into<String>, default: bool) -> Self {
        self.variants.insert(name.into(), default);
        self
    }

    /// Adds a dependency.
    pub fn dep(mut self, dep: Dependency) -> Self {
        self.deps.push(dep);
        self
    }

    /// Package name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Known versions, ascending.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    /// The preferred (latest) version.
    pub fn latest(&self) -> &Version {
        self.versions.last().expect("non-empty by construction")
    }

    /// Declared variants and defaults.
    pub fn variants(&self) -> &BTreeMap<String, bool> {
        &self.variants
    }

    /// Declared dependencies.
    pub fn deps(&self) -> &[Dependency] {
        &self.deps
    }
}

/// A named collection of package definitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackageRepo {
    packages: BTreeMap<String, PackageDef>,
}

/// A package name the repository does not provide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPackageError {
    name: String,
}

impl UnknownPackageError {
    /// The missing package's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for UnknownPackageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no such package {:?} in the repository", self.name)
    }
}

impl std::error::Error for UnknownPackageError {}

impl PackageRepo {
    /// Creates a repository from definitions.
    ///
    /// # Panics
    ///
    /// Panics on duplicate package names.
    pub fn new(defs: impl IntoIterator<Item = PackageDef>) -> Self {
        let mut packages = BTreeMap::new();
        for def in defs {
            let name = def.name().to_owned();
            let duplicate = packages.insert(name.clone(), def).is_some();
            assert!(!duplicate, "duplicate package definition {name}");
        }
        PackageRepo { packages }
    }

    /// The built-in repository matching the paper's deployment.
    pub fn builtin() -> Self {
        let defs = vec![
            // --- Table I user-facing stack (latest == paper's version) ---
            PackageDef::new("gcc", ["9.4.0", "10.3.0"])
                .dep(Dependency::any("gmp"))
                .dep(Dependency::any("mpfr"))
                .dep(Dependency::any("mpc"))
                .dep(Dependency::any("zlib")),
            PackageDef::new("openmpi", ["4.0.5", "4.1.1"])
                .variant("pmix", true)
                .dep(Dependency::any("hwloc"))
                .dep(Dependency::any("libevent"))
                .dep(Dependency::any("numactl"))
                .dep(Dependency::any("zlib"))
                .dep(Dependency::any("pmix").when("pmix", true)),
            PackageDef::new("openblas", ["0.3.17", "0.3.18"]).variant("openmp", false),
            PackageDef::new("fftw", ["3.3.9", "3.3.10"])
                .variant("mpi", true)
                .dep(Dependency::any("openmpi").when("mpi", true)),
            PackageDef::new("netlib-lapack", ["3.9.0", "3.9.1"]),
            PackageDef::new("netlib-scalapack", ["2.1.0"])
                .dep(Dependency::any("netlib-lapack"))
                .dep(Dependency::any("openmpi").with_req("4.1".parse().expect("req parses"))),
            PackageDef::new("hpl", ["2.3"])
                .dep(Dependency::any("openmpi"))
                .dep(Dependency::any("openblas")),
            PackageDef::new("stream", ["5.10"]).variant("openmp", true),
            PackageDef::new("quantum-espresso", ["6.7", "6.8"])
                .variant("scalapack", true)
                .dep(Dependency::any("openmpi"))
                .dep(Dependency::any("openblas"))
                .dep(Dependency::any("fftw"))
                .dep(Dependency::any("netlib-scalapack").when("scalapack", true)),
            // --- system services the paper ports ---
            PackageDef::new("slurm", ["21.08.8"])
                .dep(Dependency::any("munge"))
                .dep(Dependency::any("zlib")),
            PackageDef::new("munge", ["0.5.14"]).dep(Dependency::any("zlib")),
            // --- transitive dependencies ---
            PackageDef::new("zlib", ["1.2.11", "1.2.12"]),
            PackageDef::new("gmp", ["6.2.1"]),
            PackageDef::new("mpfr", ["4.1.0"]).dep(Dependency::any("gmp")),
            PackageDef::new("mpc", ["1.2.1"])
                .dep(Dependency::any("gmp"))
                .dep(Dependency::any("mpfr")),
            PackageDef::new("hwloc", ["2.7.1"]),
            PackageDef::new("libevent", ["2.1.12"]),
            PackageDef::new("numactl", ["2.0.14"]),
            PackageDef::new("pmix", ["4.1.2"])
                .dep(Dependency::any("libevent"))
                .dep(Dependency::any("hwloc")),
        ];
        PackageRepo::new(defs)
    }

    /// Looks up a package.
    ///
    /// # Errors
    ///
    /// Fails for unknown names.
    pub fn get(&self, name: &str) -> Result<&PackageDef, UnknownPackageError> {
        self.packages.get(name).ok_or_else(|| UnknownPackageError {
            name: name.to_owned(),
        })
    }

    /// All package names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.packages.keys().map(String::as_str)
    }

    /// Number of packages.
    pub fn len(&self) -> usize {
        self.packages.len()
    }

    /// Whether the repo is empty.
    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }
}

impl Default for PackageRepo {
    fn default() -> Self {
        PackageRepo::builtin()
    }
}

/// The paper's Table I: the user-facing package names and the versions the
/// deployed stack resolved to.
pub const TABLE_I_STACK: [(&str, &str); 9] = [
    ("gcc", "10.3.0"),
    ("openmpi", "4.1.1"),
    ("openblas", "0.3.18"),
    ("fftw", "3.3.10"),
    ("netlib-lapack", "3.9.1"),
    ("netlib-scalapack", "2.1.0"),
    ("hpl", "2.3"),
    ("stream", "5.10"),
    ("quantum-espresso", "6.8"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_contains_the_full_table_i_stack() {
        let repo = PackageRepo::builtin();
        for (name, version) in TABLE_I_STACK {
            let def = repo.get(name).unwrap();
            assert_eq!(
                def.latest(),
                &version.parse::<Version>().unwrap(),
                "latest {name} should be the Table I version"
            );
        }
    }

    #[test]
    fn versions_are_sorted_ascending() {
        let repo = PackageRepo::builtin();
        for name in repo.names() {
            let versions = repo.get(name).unwrap().versions().to_vec();
            let mut sorted = versions.clone();
            sorted.sort();
            assert_eq!(versions, sorted, "{name} versions out of order");
        }
    }

    #[test]
    fn all_dependency_edges_resolve() {
        let repo = PackageRepo::builtin();
        for name in repo.names() {
            for dep in repo.get(name).unwrap().deps() {
                assert!(
                    repo.get(&dep.name).is_ok(),
                    "{name} depends on unknown {}",
                    dep.name
                );
            }
        }
    }

    #[test]
    fn conditional_dependencies_reference_declared_variants() {
        let repo = PackageRepo::builtin();
        for name in repo.names() {
            let def = repo.get(name).unwrap();
            for dep in def.deps() {
                if let Some((variant, _)) = &dep.when {
                    assert!(
                        def.variants().contains_key(variant),
                        "{name}: conditional dep on undeclared variant {variant}"
                    );
                }
            }
        }
    }

    #[test]
    fn unknown_package_error_is_descriptive() {
        let repo = PackageRepo::builtin();
        let err = repo.get("tensorflow").unwrap_err();
        assert!(err.to_string().contains("tensorflow"));
        assert_eq!(err.name(), "tensorflow");
    }

    #[test]
    #[should_panic(expected = "duplicate package definition")]
    fn duplicate_definitions_panic() {
        let _ = PackageRepo::new(vec![
            PackageDef::new("a", ["1.0"]),
            PackageDef::new("a", ["2.0"]),
        ]);
    }
}
