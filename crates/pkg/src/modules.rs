//! Environment-modules generation (Furlani-style Tcl modulefiles).
//!
//! The paper exposes the Spack-installed stack to users through environment
//! modules; this module renders the same artefacts from a concretised DAG.

use crate::concretize::{ConcreteSpec, Concretization};

/// The modulefile name for a concrete spec: `<name>/<version>-<compiler>`.
pub fn module_name(spec: &ConcreteSpec) -> String {
    format!(
        "{}/{}-{}-{}",
        spec.name, spec.version, spec.compiler.name, spec.compiler.version
    )
}

/// Renders the Tcl modulefile for one installed package.
pub fn render_modulefile(spec: &ConcreteSpec, prefix: &str) -> String {
    let upper = spec.name.to_uppercase().replace('-', "_");
    let mut out = String::new();
    out.push_str("#%Module1.0\n");
    out.push_str(&format!(
        "## {} — generated from spec hash {}\n",
        module_name(spec),
        spec.hash
    ));
    out.push_str(&format!(
        "module-whatis \"{} {} built with {}@{} for {}\"\n",
        spec.name, spec.version, spec.compiler.name, spec.compiler.version, spec.target
    ));
    for dep in &spec.deps {
        out.push_str(&format!("prereq {dep}\n"));
    }
    out.push_str(&format!("prepend-path PATH {prefix}/bin\n"));
    out.push_str(&format!("prepend-path LD_LIBRARY_PATH {prefix}/lib\n"));
    out.push_str(&format!("prepend-path MANPATH {prefix}/share/man\n"));
    out.push_str(&format!("setenv {upper}_ROOT {prefix}\n"));
    out
}

/// Renders the `module avail` listing for a whole concretisation, sorted.
pub fn module_avail(dag: &Concretization) -> Vec<String> {
    let mut names: Vec<String> = dag.specs().map(module_name).collect();
    names.sort();
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concretize::concretize;
    use crate::repo::PackageRepo;
    use crate::target::TargetRegistry;

    fn hpl_dag() -> Concretization {
        concretize(
            &"hpl target=u74mc".parse().unwrap(),
            &PackageRepo::builtin(),
            &TargetRegistry::builtin(),
        )
        .unwrap()
    }

    #[test]
    fn module_names_follow_the_convention() {
        let dag = hpl_dag();
        assert_eq!(module_name(dag.root()), "hpl/2.3-gcc-10.3.0");
    }

    #[test]
    fn modulefile_contains_the_essential_directives() {
        let dag = hpl_dag();
        let text = render_modulefile(dag.root(), "/opt/cimone/u74mc/hpl-2.3-abc");
        assert!(text.starts_with("#%Module1.0"));
        assert!(text.contains("prepend-path PATH /opt/cimone/u74mc/hpl-2.3-abc/bin"));
        assert!(text.contains("setenv HPL_ROOT"));
        assert!(text.contains("prereq openblas"));
        assert!(text.contains("prereq openmpi"));
    }

    #[test]
    fn avail_lists_every_package_in_the_dag() {
        let dag = hpl_dag();
        let avail = module_avail(&dag);
        assert_eq!(avail.len(), dag.len());
        assert!(avail.iter().any(|m| m.starts_with("openmpi/4.1.1")));
        // Sorted.
        let mut sorted = avail.clone();
        sorted.sort();
        assert_eq!(avail, sorted);
    }

    #[test]
    fn dashed_names_become_valid_env_vars() {
        let dag = concretize(
            &"netlib-lapack".parse().unwrap(),
            &PackageRepo::builtin(),
            &TargetRegistry::builtin(),
        )
        .unwrap();
        let text = render_modulefile(dag.root(), "/opt/x");
        assert!(text.contains("setenv NETLIB_LAPACK_ROOT"));
    }
}
