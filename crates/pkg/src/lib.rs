//! A Spack-like package manager for the Monte Cimone reproduction.
//!
//! The paper deploys its entire user-facing stack (Table I) with Spack
//! 0.17.0, resolving the `linux-sifive-u74mc` target through archspec and
//! exposing packages via environment modules. This crate rebuilds that
//! machinery:
//!
//! * [`version`] — dotted versions and Spack-style requirements;
//! * [`spec`] — abstract specs (`hpl@2.3 +openmp %gcc@10.3.0 target=u74mc`);
//! * [`target`] — archspec-style microarchitecture registry, including the
//!   GCC-version-gated Zba/Zbb flag emission the paper discusses;
//! * [`repo`] — the builtin package snapshot (Table I plus transitive
//!   dependencies);
//! * [`concretize`](mod@concretize) — the resolver: conditional dependencies, unified
//!   versions, content hashes, topological build order;
//! * [`modules`] / [`install`] — modulefile generation and the simulated
//!   hash-addressed install tree.
//!
//! # Examples
//!
//! ```
//! use cimone_pkg::concretize::concretize;
//! use cimone_pkg::install::InstallTree;
//! use cimone_pkg::repo::PackageRepo;
//! use cimone_pkg::target::TargetRegistry;
//!
//! let dag = concretize(
//!     &"hpl target=u74mc".parse()?,
//!     &PackageRepo::builtin(),
//!     &TargetRegistry::builtin(),
//! )?;
//! let mut tree = InstallTree::new("/opt/cimone");
//! tree.install_dag(&dag)?;
//! assert!(tree.module_avail().iter().any(|m| m.starts_with("hpl/2.3")));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod concretize;
pub mod install;
pub mod modules;
pub mod repo;
pub mod spec;
pub mod target;
pub mod version;

pub use concretize::{concretize, ConcreteSpec, Concretization, ConcretizeError};
pub use install::InstallTree;
pub use repo::{PackageRepo, TABLE_I_STACK};
pub use spec::Spec;
pub use target::TargetRegistry;
pub use version::{Version, VersionReq};
