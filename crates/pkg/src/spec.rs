//! Abstract package specs and their Spack-flavoured string syntax.
//!
//! A spec names a package plus constraints:
//! `hpl@2.3 +openmp ~static %gcc@10.3.0 target=u74mc`.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::version::{Version, VersionParseError, VersionReq};

/// A compiler constraint (`%gcc@10.3.0`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompilerSpec {
    /// Compiler name (e.g. `gcc`).
    pub name: String,
    /// Exact version.
    pub version: Version,
}

impl fmt::Display for CompilerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}@{}", self.name, self.version)
    }
}

/// An abstract (unconcretised) spec.
///
/// # Examples
///
/// ```
/// use cimone_pkg::spec::Spec;
///
/// let spec: Spec = "hpl@2.3 +openmp %gcc@10.3.0 target=u74mc".parse()?;
/// assert_eq!(spec.name(), "hpl");
/// assert_eq!(spec.variant("openmp"), Some(true));
/// # Ok::<(), cimone_pkg::spec::SpecParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Spec {
    name: String,
    version: VersionReq,
    variants: BTreeMap<String, bool>,
    compiler: Option<CompilerSpec>,
    target: Option<String>,
}

impl Spec {
    /// A bare spec constraining only the package name.
    ///
    /// # Panics
    ///
    /// Panics on an empty name.
    pub fn bare(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "package name must be non-empty");
        Spec {
            name,
            version: VersionReq::Any,
            variants: BTreeMap::new(),
            compiler: None,
            target: None,
        }
    }

    /// Adds a version requirement.
    pub fn with_version(mut self, req: VersionReq) -> Self {
        self.version = req;
        self
    }

    /// Sets a variant.
    pub fn with_variant(mut self, name: impl Into<String>, enabled: bool) -> Self {
        self.variants.insert(name.into(), enabled);
        self
    }

    /// Sets the compiler.
    pub fn with_compiler(mut self, compiler: CompilerSpec) -> Self {
        self.compiler = Some(compiler);
        self
    }

    /// Sets the target.
    pub fn with_target(mut self, target: impl Into<String>) -> Self {
        self.target = Some(target.into());
        self
    }

    /// Package name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Version requirement.
    pub fn version(&self) -> &VersionReq {
        &self.version
    }

    /// Variant setting, if constrained.
    pub fn variant(&self, name: &str) -> Option<bool> {
        self.variants.get(name).copied()
    }

    /// All constrained variants.
    pub fn variants(&self) -> &BTreeMap<String, bool> {
        &self.variants
    }

    /// Compiler constraint.
    pub fn compiler(&self) -> Option<&CompilerSpec> {
        self.compiler.as_ref()
    }

    /// Target constraint.
    pub fn target(&self) -> Option<&str> {
        self.target.as_deref()
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, self.version)?;
        for (v, enabled) in &self.variants {
            write!(f, " {}{v}", if *enabled { '+' } else { '~' })?;
        }
        if let Some(c) = &self.compiler {
            write!(f, " {c}")?;
        }
        if let Some(t) = &self.target {
            write!(f, " target={t}")?;
        }
        Ok(())
    }
}

/// A malformed spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError {
    input: String,
    reason: String,
}

impl SpecParseError {
    fn new(input: &str, reason: impl Into<String>) -> Self {
        SpecParseError {
            input: input.to_owned(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid spec {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for SpecParseError {}

impl From<VersionParseError> for SpecParseError {
    fn from(err: VersionParseError) -> Self {
        SpecParseError {
            input: String::new(),
            reason: err.to_string(),
        }
    }
}

impl FromStr for Spec {
    type Err = SpecParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut tokens = s.split_whitespace();
        let head = tokens
            .next()
            .ok_or_else(|| SpecParseError::new(s, "empty spec"))?;

        let (name, version) = match head.split_once('@') {
            Some((n, v)) => (
                n,
                v.parse::<VersionReq>()
                    .map_err(|e| SpecParseError::new(s, e.to_string()))?,
            ),
            None => (head, VersionReq::Any),
        };
        if name.is_empty() {
            return Err(SpecParseError::new(s, "missing package name"));
        }
        let mut spec = Spec::bare(name).with_version(version);

        for token in tokens {
            if let Some(variant) = token.strip_prefix('+') {
                spec = spec.with_variant(variant, true);
            } else if let Some(variant) = token.strip_prefix('~') {
                spec = spec.with_variant(variant, false);
            } else if let Some(compiler) = token.strip_prefix('%') {
                let (cname, cver) = compiler.split_once('@').ok_or_else(|| {
                    SpecParseError::new(s, "compiler constraint needs an exact version")
                })?;
                spec = spec.with_compiler(CompilerSpec {
                    name: cname.to_owned(),
                    version: cver
                        .parse()
                        .map_err(|e: VersionParseError| SpecParseError::new(s, e.to_string()))?,
                });
            } else if let Some(target) = token.strip_prefix("target=") {
                spec = spec.with_target(target);
            } else {
                return Err(SpecParseError::new(
                    s,
                    format!("unrecognised token {token:?}"),
                ));
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_syntax_round_trips() {
        let text = "hpl@2.3 +openmp ~static %gcc@10.3.0 target=u74mc";
        let spec: Spec = text.parse().unwrap();
        assert_eq!(spec.name(), "hpl");
        assert_eq!(spec.version(), &"2.3".parse().unwrap());
        assert_eq!(spec.variant("openmp"), Some(true));
        assert_eq!(spec.variant("static"), Some(false));
        assert_eq!(spec.compiler().unwrap().name, "gcc");
        assert_eq!(spec.target(), Some("u74mc"));
        assert_eq!(spec.to_string(), text);
    }

    #[test]
    fn bare_name_parses() {
        let spec: Spec = "openblas".parse().unwrap();
        assert_eq!(spec.name(), "openblas");
        assert_eq!(spec.version(), &VersionReq::Any);
        assert_eq!(spec.variant("shared"), None);
    }

    #[test]
    fn version_ranges_parse() {
        let spec: Spec = "gcc@10:12".parse().unwrap();
        assert!(spec.version().matches(&"11.2".parse().unwrap()));
        assert!(!spec.version().matches(&"13.1".parse().unwrap()));
    }

    #[test]
    fn bad_tokens_are_rejected() {
        assert!("hpl bogus".parse::<Spec>().is_err());
        assert!("hpl %gcc".parse::<Spec>().is_err());
        assert!("@2.3".parse::<Spec>().is_err());
        assert!("".parse::<Spec>().is_err());
    }
}
