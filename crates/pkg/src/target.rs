//! archspec-style microarchitecture targets.
//!
//! Spack resolves platform-specific toolchain flags through archspec; the
//! paper notes that support for the `linux-sifive-u74mc` triple was already
//! upstream (archspec 0.1.3) and worked unmodified. This module models the
//! target family tree, compatibility, and the GCC flag emission — including
//! the detail that GCC < 12 cannot emit Zba/Zbb even where the target
//! advertises them.

use std::fmt;

use cimone_soc::isa::IsaString;
use serde::{Deserialize, Serialize};

use crate::version::Version;

/// A microarchitecture target.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Microarch {
    name: String,
    /// Generic parent (e.g. `u74mc` -> `riscv64`); `None` for family roots.
    parent: Option<String>,
    /// ISA family keyword used in `-march`/`-mcpu` style flags.
    family: IsaFamily,
    /// Feature strings archspec would report.
    features: Vec<String>,
}

/// Instruction-set families the registry knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IsaFamily {
    /// RISC-V 64-bit.
    Riscv64,
    /// x86-64.
    X86_64,
    /// IBM POWER little-endian.
    Ppc64le,
    /// 64-bit Arm.
    Aarch64,
}

impl fmt::Display for IsaFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IsaFamily::Riscv64 => "riscv64",
            IsaFamily::X86_64 => "x86_64",
            IsaFamily::Ppc64le => "ppc64le",
            IsaFamily::Aarch64 => "aarch64",
        };
        f.write_str(s)
    }
}

impl Microarch {
    /// The target name (e.g. `u74mc`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The generic parent target, if any.
    pub fn parent(&self) -> Option<&str> {
        self.parent.as_deref()
    }

    /// The ISA family.
    pub fn family(&self) -> IsaFamily {
        self.family
    }

    /// Feature strings.
    pub fn features(&self) -> &[String] {
        &self.features
    }

    /// The `linux-<family>-<name>` triple Spack shows for the target.
    pub fn triple(&self) -> String {
        format!("linux-{}-{}", self.family, self.name)
    }

    /// GCC `-march`/`-mcpu`-style optimisation flags for this target with
    /// the given GCC version.
    ///
    /// For `u74mc` the flags include `zba_zbb` only from GCC 12 on —
    /// mirroring the paper's observation that GCC 10.3 (and binutils
    /// 2.36.1) cannot emit the bit-manipulation extensions the silicon
    /// implements.
    pub fn gcc_flags(&self, gcc: &Version) -> String {
        match self.family {
            IsaFamily::Riscv64 => {
                let isa = IsaString::u74().supported_by_gcc(gcc.major() as u32);
                if self.name == "riscv64" {
                    "-march=rv64gc -mabi=lp64d".to_owned()
                } else {
                    format!("-march={} -mabi=lp64d -mtune=sifive-7-series", isa)
                }
            }
            IsaFamily::X86_64 => format!("-march={} -mtune={}", self.name, self.name),
            IsaFamily::Ppc64le => format!("-mcpu={} -mtune={}", self.name, self.name),
            IsaFamily::Aarch64 => format!("-mcpu={}", self.name),
        }
    }
}

/// The registry of known targets (a slice of archspec's JSON database).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetRegistry {
    targets: Vec<Microarch>,
}

/// A target name the registry does not know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownTargetError {
    name: String,
}

impl fmt::Display for UnknownTargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown microarchitecture target {:?}", self.name)
    }
}

impl std::error::Error for UnknownTargetError {}

impl TargetRegistry {
    /// The built-in registry: the three node types the paper compares
    /// (U74-MC, Power9, ThunderX2) plus their generic parents and x86_64.
    pub fn builtin() -> Self {
        fn arch(
            name: &str,
            parent: Option<&str>,
            family: IsaFamily,
            features: &[&str],
        ) -> Microarch {
            Microarch {
                name: name.to_owned(),
                parent: parent.map(str::to_owned),
                family,
                features: features.iter().map(|s| (*s).to_owned()).collect(),
            }
        }
        TargetRegistry {
            targets: vec![
                arch("riscv64", None, IsaFamily::Riscv64, &["rv64gc"]),
                arch(
                    "u74mc",
                    Some("riscv64"),
                    IsaFamily::Riscv64,
                    &["rv64gc", "zba", "zbb"],
                ),
                arch("x86_64", None, IsaFamily::X86_64, &["sse2"]),
                arch("ppc64le", None, IsaFamily::Ppc64le, &["altivec"]),
                arch(
                    "power9",
                    Some("ppc64le"),
                    IsaFamily::Ppc64le,
                    &["altivec", "vsx3"],
                ),
                arch("aarch64", None, IsaFamily::Aarch64, &["neon"]),
                arch(
                    "thunderx2",
                    Some("aarch64"),
                    IsaFamily::Aarch64,
                    &["neon", "crc", "atomics"],
                ),
            ],
        }
    }

    /// Looks up a target by name.
    ///
    /// # Errors
    ///
    /// Fails for names not in the registry.
    pub fn get(&self, name: &str) -> Result<&Microarch, UnknownTargetError> {
        self.targets
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| UnknownTargetError {
                name: name.to_owned(),
            })
    }

    /// Whether code built for `built_for` runs on `host` (same target or a
    /// generic ancestor of it).
    pub fn compatible(&self, built_for: &str, host: &str) -> bool {
        let mut current = Some(host.to_owned());
        while let Some(name) = current {
            if name == built_for {
                return true;
            }
            current = self
                .get(&name)
                .ok()
                .and_then(|t| t.parent().map(str::to_owned));
        }
        false
    }

    /// All target names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.targets.iter().map(|t| t.name.as_str())
    }
}

impl Default for TargetRegistry {
    fn default() -> Self {
        TargetRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        s.parse().unwrap()
    }

    #[test]
    fn u74mc_triple_matches_the_paper() {
        let reg = TargetRegistry::builtin();
        let t = reg.get("u74mc").unwrap();
        assert_eq!(t.triple(), "linux-riscv64-u74mc");
        assert!(t.features().iter().any(|f| f == "zba"));
    }

    #[test]
    fn gcc10_flags_omit_bitmanip_gcc12_include_it() {
        let reg = TargetRegistry::builtin();
        let t = reg.get("u74mc").unwrap();
        let old = t.gcc_flags(&v("10.3.0"));
        assert!(old.contains("rv64imafdc"), "flags: {old}");
        assert!(!old.contains("zba"), "flags: {old}");
        let new = t.gcc_flags(&v("12.1.0"));
        assert!(
            new.contains("zba_zbb") || new.contains("zba"),
            "flags: {new}"
        );
    }

    #[test]
    fn compatibility_walks_the_family_tree() {
        let reg = TargetRegistry::builtin();
        assert!(reg.compatible("riscv64", "u74mc")); // generic code runs on u74mc
        assert!(reg.compatible("u74mc", "u74mc"));
        assert!(!reg.compatible("u74mc", "riscv64")); // tuned code does not run on generic
        assert!(!reg.compatible("power9", "u74mc"));
    }

    #[test]
    fn reference_node_targets_exist() {
        let reg = TargetRegistry::builtin();
        assert!(reg.get("power9").is_ok()); // Marconi100
        assert!(reg.get("thunderx2").is_ok()); // Armida
        let p9 = reg.get("power9").unwrap().gcc_flags(&v("10.3.0"));
        assert!(p9.contains("-mcpu=power9"));
    }

    #[test]
    fn unknown_targets_error() {
        let reg = TargetRegistry::builtin();
        let err = reg.get("m1max").unwrap_err();
        assert!(err.to_string().contains("m1max"));
        assert!(!reg.compatible("u74mc", "nonexistent"));
    }
}
