//! The simulated install tree (Spack's `opt/spack/...` layout).
//!
//! Installation is modelled, not performed: the tree tracks which concrete
//! specs are "installed", enforces dependency order, assigns hash-addressed
//! prefixes, and refuses to uninstall packages that still have installed
//! dependents.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::concretize::{ConcreteSpec, Concretization};
use crate::modules::{module_name, render_modulefile};

/// One installed package.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstalledPackage {
    /// The concrete spec installed.
    pub spec: ConcreteSpec,
    /// The hash-addressed install prefix.
    pub prefix: String,
    /// The generated modulefile.
    pub modulefile: String,
}

/// Install-tree errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallError {
    /// A dependency of the package is not installed.
    MissingDependency {
        /// The package being installed.
        package: String,
        /// The absent dependency.
        dependency: String,
    },
    /// Uninstall refused: dependents are still installed.
    HasDependents {
        /// The package that cannot be removed.
        package: String,
        /// Installed packages that depend on it.
        dependents: Vec<String>,
    },
    /// The named package is not installed.
    NotInstalled {
        /// The package.
        package: String,
    },
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::MissingDependency {
                package,
                dependency,
            } => write!(
                f,
                "cannot install {package}: dependency {dependency} not installed"
            ),
            InstallError::HasDependents {
                package,
                dependents,
            } => write!(
                f,
                "cannot uninstall {package}: required by {}",
                dependents.join(", ")
            ),
            InstallError::NotInstalled { package } => {
                write!(f, "package {package} is not installed")
            }
        }
    }
}

impl std::error::Error for InstallError {}

/// The install tree.
///
/// # Examples
///
/// ```
/// use cimone_pkg::concretize::concretize;
/// use cimone_pkg::install::InstallTree;
/// use cimone_pkg::repo::PackageRepo;
/// use cimone_pkg::target::TargetRegistry;
///
/// let dag = concretize(
///     &"stream".parse()?,
///     &PackageRepo::builtin(),
///     &TargetRegistry::builtin(),
/// )?;
/// let mut tree = InstallTree::new("/opt/cimone");
/// let installed = tree.install_dag(&dag)?;
/// assert_eq!(installed.len(), 1); // stream has no dependencies
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InstallTree {
    root: String,
    /// Installed packages by hash.
    by_hash: BTreeMap<String, InstalledPackage>,
}

impl InstallTree {
    /// Creates an empty tree rooted at `root`.
    pub fn new(root: impl Into<String>) -> Self {
        InstallTree {
            root: root.into(),
            by_hash: BTreeMap::new(),
        }
    }

    /// The tree root path.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// The prefix a spec would install to.
    pub fn prefix_for(&self, spec: &ConcreteSpec) -> String {
        format!(
            "{}/{}/{}-{}-{}",
            self.root,
            spec.target,
            spec.name,
            spec.version,
            &spec.hash[..7.min(spec.hash.len())]
        )
    }

    /// Whether a concrete spec is installed.
    pub fn is_installed(&self, spec: &ConcreteSpec) -> bool {
        self.by_hash.contains_key(&spec.hash)
    }

    /// Installs one concrete spec, requiring its dependencies (by name
    /// within the same DAG) to be present already.
    ///
    /// Re-installing an identical spec is a no-op.
    ///
    /// # Errors
    ///
    /// Fails with [`InstallError::MissingDependency`] when installed out of
    /// order.
    pub fn install(
        &mut self,
        spec: &ConcreteSpec,
        dag: &Concretization,
    ) -> Result<&InstalledPackage, InstallError> {
        if !self.by_hash.contains_key(&spec.hash) {
            for dep in &spec.deps {
                let dep_spec = dag
                    .get(dep)
                    .ok_or_else(|| InstallError::MissingDependency {
                        package: spec.name.clone(),
                        dependency: dep.clone(),
                    })?;
                if !self.is_installed(dep_spec) {
                    return Err(InstallError::MissingDependency {
                        package: spec.name.clone(),
                        dependency: dep.clone(),
                    });
                }
            }
            let prefix = self.prefix_for(spec);
            let modulefile = render_modulefile(spec, &prefix);
            self.by_hash.insert(
                spec.hash.clone(),
                InstalledPackage {
                    spec: spec.clone(),
                    prefix,
                    modulefile,
                },
            );
        }
        Ok(&self.by_hash[&spec.hash])
    }

    /// Installs a whole DAG in build order, returning the newly installed
    /// packages (already-present ones are skipped).
    ///
    /// # Errors
    ///
    /// Propagates per-package failures (which cannot occur for a
    /// well-formed DAG).
    pub fn install_dag(&mut self, dag: &Concretization) -> Result<Vec<String>, InstallError> {
        let mut new = Vec::new();
        for name in dag.build_order() {
            let spec = dag.get(name).expect("build order names exist");
            if !self.is_installed(spec) {
                self.install(spec, dag)?;
                new.push(name.clone());
            }
        }
        Ok(new)
    }

    /// Uninstalls a spec, refusing while installed dependents remain.
    ///
    /// # Errors
    ///
    /// Fails when the package is absent or still needed.
    pub fn uninstall(&mut self, spec: &ConcreteSpec) -> Result<(), InstallError> {
        if !self.by_hash.contains_key(&spec.hash) {
            return Err(InstallError::NotInstalled {
                package: spec.name.clone(),
            });
        }
        let dependents: Vec<String> = self
            .by_hash
            .values()
            .filter(|p| p.spec.deps.contains(&spec.name))
            .map(|p| p.spec.name.clone())
            .collect();
        if !dependents.is_empty() {
            return Err(InstallError::HasDependents {
                package: spec.name.clone(),
                dependents,
            });
        }
        self.by_hash.remove(&spec.hash);
        Ok(())
    }

    /// All installed packages, sorted by hash.
    pub fn installed(&self) -> impl Iterator<Item = &InstalledPackage> {
        self.by_hash.values()
    }

    /// Number of installed packages.
    pub fn len(&self) -> usize {
        self.by_hash.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.by_hash.is_empty()
    }

    /// `module avail` over the installed tree, sorted.
    pub fn module_avail(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .by_hash
            .values()
            .map(|p| module_name(&p.spec))
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concretize::concretize;
    use crate::repo::PackageRepo;
    use crate::target::TargetRegistry;

    fn dag(spec: &str) -> Concretization {
        concretize(
            &spec.parse().unwrap(),
            &PackageRepo::builtin(),
            &TargetRegistry::builtin(),
        )
        .unwrap()
    }

    #[test]
    fn dag_install_follows_build_order_and_is_idempotent() {
        let hpl = dag("hpl");
        let mut tree = InstallTree::new("/opt/cimone");
        let first = tree.install_dag(&hpl).unwrap();
        assert_eq!(first.len(), hpl.len());
        let again = tree.install_dag(&hpl).unwrap();
        assert!(again.is_empty(), "second install must be a no-op");
        assert_eq!(tree.len(), hpl.len());
    }

    #[test]
    fn out_of_order_install_is_rejected() {
        let hpl = dag("hpl");
        let mut tree = InstallTree::new("/opt/cimone");
        let err = tree.install(hpl.root(), &hpl).unwrap_err();
        assert!(matches!(err, InstallError::MissingDependency { .. }));
    }

    #[test]
    fn prefixes_are_hash_addressed_under_the_target() {
        let hpl = dag("hpl target=u74mc");
        let tree = InstallTree::new("/opt/cimone");
        let prefix = tree.prefix_for(hpl.root());
        assert!(prefix.starts_with("/opt/cimone/u74mc/hpl-2.3-"));
    }

    #[test]
    fn uninstall_refuses_while_dependents_exist() {
        let hpl = dag("hpl");
        let mut tree = InstallTree::new("/opt/cimone");
        tree.install_dag(&hpl).unwrap();
        let blas = hpl.get("openblas").unwrap();
        let err = tree.uninstall(blas).unwrap_err();
        assert!(matches!(err, InstallError::HasDependents { .. }));
        // Removing the root first unblocks the dependency.
        tree.uninstall(hpl.root()).unwrap();
        tree.uninstall(blas).unwrap();
        assert!(!tree.is_installed(blas));
    }

    #[test]
    fn uninstalling_absent_packages_errors() {
        let hpl = dag("hpl");
        let mut tree = InstallTree::new("/opt/cimone");
        let err = tree.uninstall(hpl.root()).unwrap_err();
        assert!(matches!(err, InstallError::NotInstalled { .. }));
    }

    #[test]
    fn module_avail_reflects_installs() {
        let stream = dag("stream");
        let mut tree = InstallTree::new("/opt/cimone");
        tree.install_dag(&stream).unwrap();
        assert_eq!(
            tree.module_avail(),
            vec!["stream/5.10-gcc-10.3.0".to_owned()]
        );
    }
}
