//! Property-based tests for the numerical kernels: the invariants hold for
//! *every* well-formed input, not just the unit-test fixtures.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use cimone_kernels::checkpoint::{Checkpoint, SteppableLu};
use cimone_kernels::dgemm;
use cimone_kernels::eig::EigenDecomposition;
use cimone_kernels::lu::{hpl_residual, LuFactorization, HPL_RESIDUAL_THRESHOLD};
use cimone_kernels::matrix::Matrix;
use cimone_kernels::pool::WorkerPool;
use cimone_kernels::stream::{StreamConfig, StreamRun};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_always_passes_the_hpl_residual_check(
        n in 1usize..48,
        nb in 1usize..64,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(n, n, &mut rng);
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).cos()).collect();
        let lu = LuFactorization::factor(a.clone(), nb).expect("random matrices are nonsingular");
        let x = lu.solve(&b);
        let r = hpl_residual(&a, &x, &b);
        prop_assert!(r < HPL_RESIDUAL_THRESHOLD, "n={n} nb={nb} seed={seed}: residual {r}");
    }

    #[test]
    fn lu_block_size_does_not_change_the_factors(
        n in 2usize..32,
        nb_a in 1usize..40,
        nb_b in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(n, n, &mut rng);
        let lu_a = LuFactorization::factor(a.clone(), nb_a).expect("nonsingular");
        let lu_b = LuFactorization::factor(a, nb_b).expect("nonsingular");
        prop_assert_eq!(lu_a.pivots(), lu_b.pivots());
        prop_assert!(lu_a.packed().max_abs_diff(lu_b.packed()) < 1e-10);
    }

    #[test]
    fn lu_checkpoint_restore_round_trip_is_lossless(
        n in 2usize..40,
        nb in 1usize..16,
        interrupt_after in 0usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(n, n, &mut rng);
        // Run one factorisation straight through...
        let direct = LuFactorization::factor(a.clone(), nb).expect("nonsingular");
        // ...and another interrupted mid-flight, checkpointed, restored.
        let mut stepped = SteppableLu::new(a, nb).expect("square");
        for _ in 0..interrupt_after {
            if !stepped.step().expect("nonsingular") {
                break;
            }
        }
        let resumed = SteppableLu::restore(stepped.checkpoint());
        prop_assert_eq!(resumed.panels_done(), stepped.panels_done());
        let from_snapshot = resumed.run_to_completion().expect("nonsingular");
        // Bit-identical, not just close: checkpointing loses nothing.
        prop_assert_eq!(from_snapshot.packed().as_slice(), direct.packed().as_slice());
        prop_assert_eq!(from_snapshot.pivots(), direct.pivots());
    }

    #[test]
    fn stream_checkpoint_restore_round_trip_is_lossless(
        elements in 1usize..500,
        threads in 1usize..4,
        before in 0usize..3,
        after in 0usize..3,
    ) {
        let config = StreamConfig::new(elements, threads);
        let mut direct = StreamRun::new(config);
        let mut interrupted = StreamRun::new(config);
        for _ in 0..before {
            direct.run_iteration();
            interrupted.run_iteration();
        }
        let mut resumed = StreamRun::restore(interrupted.checkpoint());
        for _ in 0..after {
            direct.run_iteration();
            resumed.run_iteration();
        }
        prop_assert!(resumed.validate(before + after).is_ok());
        // Bit-identical to the uninterrupted run.
        let d = direct.checkpoint();
        let r = resumed.checkpoint();
        prop_assert_eq!(d.a_bits, r.a_bits);
        prop_assert_eq!(d.b_bits, r.b_bits);
        prop_assert_eq!(d.c_bits, r.c_bits);
        prop_assert_eq!(d.iterations, r.iterations);
    }

    #[test]
    fn blocked_dgemm_matches_naive(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        block in 1usize..32,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(m, k, &mut rng);
        let b = Matrix::random(k, n, &mut rng);
        let mut c1 = Matrix::random(m, n, &mut rng);
        let mut c2 = c1.clone();
        dgemm::naive(0.75, &a, &b, -0.25, &mut c1);
        dgemm::blocked(0.75, &a, &b, -0.25, &mut c2, block);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-12);
    }

    #[test]
    fn eigendecomposition_invariants(
        n in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random_symmetric(n, &mut rng);
        let eig = EigenDecomposition::compute(&a).expect("symmetric input");
        prop_assert!(eig.values().windows(2).all(|w| w[0] <= w[1]), "sorted");
        prop_assert!(eig.residual(&a) < 1e-9, "residual {}", eig.residual(&a));
        prop_assert!(eig.orthogonality_error() < 1e-9);
        // Trace preservation.
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.values().iter().sum();
        prop_assert!((trace - sum).abs() < 1e-9 * (1.0 + trace.abs()));
    }

    #[test]
    fn stream_validates_after_any_iteration_count(
        elements in 1usize..2000,
        threads in 1usize..6,
        iterations in 0usize..5,
    ) {
        let mut run = StreamRun::new(StreamConfig::new(elements, threads));
        for _ in 0..iterations {
            run.run_iteration();
        }
        prop_assert!(run.validate(iterations).is_ok());
    }

    #[test]
    fn threaded_lu_is_bit_identical_to_serial(
        n in 2usize..48,
        nb in 1usize..24,
        threads in 1usize..=8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(n, n, &mut rng);
        let pool = WorkerPool::new(threads);
        let serial = LuFactorization::factor(a.clone(), nb).expect("nonsingular");
        let threaded = LuFactorization::factor_parallel(a, nb, &pool).expect("nonsingular");
        // Bitwise, not approximately: the pool must not change a single ulp.
        prop_assert_eq!(serial.packed().as_slice(), threaded.packed().as_slice());
        prop_assert_eq!(serial.pivots(), threaded.pivots());
    }

    #[test]
    fn threaded_dgemm_is_bit_identical_to_serial(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        block in 1usize..32,
        threads in 1usize..=8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(m, k, &mut rng);
        let b = Matrix::random(k, n, &mut rng);
        let mut c1 = Matrix::random(m, n, &mut rng);
        let mut c2 = c1.clone();
        let pool = WorkerPool::new(threads);
        dgemm::blocked(0.75, &a, &b, -0.25, &mut c1, block);
        dgemm::blocked_parallel(0.75, &a, &b, -0.25, &mut c2, block, &pool);
        prop_assert_eq!(c1.as_slice(), c2.as_slice());
    }

    #[test]
    fn threaded_stream_is_bit_identical_to_serial(
        elements in 1usize..2000,
        threads in 2usize..=8,
        iterations in 1usize..4,
    ) {
        let mut serial = StreamRun::new(StreamConfig::new(elements, 1));
        let mut threaded = StreamRun::new(StreamConfig::new(elements, threads));
        for _ in 0..iterations {
            serial.run_iteration();
            threaded.run_iteration();
        }
        let s = serial.checkpoint();
        let t = threaded.checkpoint();
        prop_assert_eq!(s.a_bits, t.a_bits);
        prop_assert_eq!(s.b_bits, t.b_bits);
        prop_assert_eq!(s.c_bits, t.c_bits);
    }

    #[test]
    fn threaded_lu_checkpoint_round_trip_is_lossless(
        n in 2usize..40,
        nb in 1usize..16,
        interrupt_after in 0usize..6,
        threads in 2usize..=8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(n, n, &mut rng);
        let pool = WorkerPool::new(threads);
        let direct = LuFactorization::factor(a.clone(), nb).expect("nonsingular");
        // Factor on the pool, interrupt mid-flight, checkpoint, restore,
        // finish on the pool: the PR 2 restart law holds on the threaded
        // path too, and the result still matches the serial factors.
        let mut stepped = SteppableLu::new(a, nb).expect("square");
        for _ in 0..interrupt_after {
            if !stepped.step_with_pool(&pool).expect("nonsingular") {
                break;
            }
        }
        let resumed = SteppableLu::restore(stepped.checkpoint());
        prop_assert_eq!(resumed.panels_done(), stepped.panels_done());
        let from_snapshot = resumed.run_to_completion_with_pool(&pool).expect("nonsingular");
        prop_assert_eq!(from_snapshot.packed().as_slice(), direct.packed().as_slice());
        prop_assert_eq!(from_snapshot.pivots(), direct.pivots());
    }

    #[test]
    fn matvec_is_linear(
        n in 1usize..16,
        alpha in -3.0f64..3.0,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(n, n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).recip()).collect();
        let scaled: Vec<f64> = x.iter().map(|v| alpha * v).collect();
        let ax = a.matvec(&x);
        let a_scaled = a.matvec(&scaled);
        for (lhs, rhs) in a_scaled.iter().zip(ax.iter().map(|v| alpha * v)) {
            prop_assert!((lhs - rhs).abs() < 1e-12 * (1.0 + rhs.abs()));
        }
    }
}
