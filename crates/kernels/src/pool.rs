//! A reusable fixed-size worker pool for the compute kernels and the
//! cluster engine's per-node fan-out.
//!
//! The pool is built on the vendored `crossbeam` unbounded channel (job
//! injection) and `parking_lot` (shared bookkeeping). Workers are spawned
//! once and live for the pool's lifetime, so per-call overhead is one
//! channel send per task instead of an OS thread spawn — the difference
//! between a usable trailing-update fan-out at HPL block granularity and
//! one that loses its speedup to `clone(2)`.
//!
//! # Determinism
//!
//! [`WorkerPool::scope`] runs a batch of *disjoint* tasks and joins them
//! all before returning. Callers split their data into tiles, each task
//! owns its tile exclusively, and the per-tile computation is a fixed
//! sequential program — so results are bit-identical run-to-run at any
//! worker count. Scheduling only decides *which worker* runs a tile,
//! never *what* the tile computes. Every parallel kernel in this crate
//! (packed DGEMM, the LU trailing update, STREAM) is written against that
//! contract, and the property tests in `tests/properties.rs` enforce it
//! for 1..=8 threads.
//!
//! # Checkpoint synchronisation
//!
//! Because `scope` is a full barrier, a [`crate::checkpoint::Checkpoint`]
//! snapshot taken between scopes observes fully quiesced state: there is
//! never an in-flight tile when `checkpoint()` runs. This is what keeps
//! the PR 2 checkpoint/restart machinery lossless on top of the threaded
//! kernels.
//!
//! # Examples
//!
//! ```
//! use cimone_kernels::pool::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let mut data = vec![0u64; 1024];
//! pool.scope(|scope| {
//!     for (i, chunk) in data.chunks_mut(256).enumerate() {
//!         scope.spawn(move || {
//!             for v in chunk.iter_mut() {
//!                 *v = i as u64;
//!             }
//!         });
//!     }
//! });
//! assert_eq!(data[0], 0);
//! assert_eq!(data[1023], 3);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Environment variable overriding the global pool's worker count.
pub const THREADS_ENV: &str = "CIMONE_THREADS";

/// Hard cap on worker threads (the paper's nodes have 4 cores; 64 leaves
/// generous headroom for big hosts while bounding a typo'd override).
pub const MAX_THREADS: usize = 64;

/// A boxed unit of work handed to a worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of long-lived worker threads.
pub struct WorkerPool {
    injector: Option<Sender<Job>>,
    /// The workers' end of the job queue, kept so a blocked scope caller
    /// can help drain it instead of idling on an OS wakeup.
    queue: Option<Receiver<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers. A pool of size 1 spawns no OS
    /// threads at all: its scopes run inline on the caller, which makes a
    /// one-worker pool literally the serial path.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a worker pool needs at least one worker");
        let threads = threads.min(MAX_THREADS);
        if threads == 1 {
            return WorkerPool {
                injector: None,
                queue: None,
                workers: Vec::new(),
                size: 1,
            };
        }
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("cimone-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            injector: Some(tx),
            queue: Some(rx),
            workers,
            size: threads,
        }
    }

    /// The shared process-wide pool. Sized by [`THREADS_ENV`] when set to
    /// a positive integer, otherwise by `std::thread::available_parallelism`.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(default_threads()))
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs a batch of tasks and blocks until every one has finished —
    /// a full barrier, which is what makes checkpoints taken between
    /// scopes consistent. Tasks may borrow from the caller's stack; the
    /// barrier guarantees no borrow outlives the call.
    ///
    /// Tasks run in spawn order on a one-worker pool and in arbitrary
    /// order otherwise; they must not depend on ordering or overlap
    /// mutable state (disjoint tiles only).
    ///
    /// # Panics
    ///
    /// If a task panics, the panic is captured and re-raised on the
    /// caller *after* every other task in the scope has completed (so the
    /// barrier still holds). Must not be called from inside a pool task
    /// of the same pool — workers do not re-enter the injector queue and
    /// a nested scope could deadlock waiting for them.
    pub fn scope<'env, F>(&self, f: F)
    where
        F: FnOnce(&mut Scope<'env>),
    {
        let mut scope = Scope { tasks: Vec::new() };
        f(&mut scope);
        let tasks = scope.tasks;
        if tasks.is_empty() {
            return;
        }
        let Some(injector) = &self.injector else {
            // Serial pool: run inline, in spawn order.
            for task in tasks {
                task();
            }
            return;
        };
        let total = tasks.len();
        let (done_tx, done_rx) = unbounded::<Option<Box<dyn std::any::Any + Send>>>();
        for task in tasks {
            // SAFETY: the transmute erases the `'env` lifetime on the
            // boxed closure so it can cross the injector channel. It is
            // sound because this function does not return until every
            // task has reported completion below — the borrows inside
            // the closure therefore never outlive `'env`.
            let task: Job = unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + 'env>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(task)
            };
            let done = done_tx.clone();
            let job: Job = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(task)).err();
                // The scope cannot have dropped the receiver: it is
                // still blocked in the recv loop below.
                let _ = done.send(outcome);
            });
            assert!(injector.send(job).is_ok(), "worker pool alive");
        }
        // Join with helping: instead of idling on the done channel, the
        // caller drains queued jobs itself. On machines with fewer cores
        // than workers this removes the OS-wakeup round trip from the
        // barrier's critical path (the caller may well run every tile).
        let queue = self.queue.as_ref().expect("threaded pool has a queue");
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        let mut completed = 0;
        while completed < total {
            if let Ok(outcome) = done_rx.try_recv() {
                completed += 1;
                if panic.is_none() {
                    panic = outcome;
                }
                continue;
            }
            if let Ok(job) = queue.try_recv() {
                job();
                continue;
            }
            // Queue empty and nothing reported: the stragglers are running
            // on workers — block until they report.
            let outcome = done_rx.recv().expect("task completion reported");
            completed += 1;
            if panic.is_none() {
                panic = outcome;
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Splits `0..len` into at most `size()` contiguous chunks of
    /// near-equal length (difference at most one). Returns the
    /// `(start, end)` pairs in order; empty when `len` is zero. This is
    /// the canonical tile split every parallel kernel uses, so the tile
    /// boundaries — and therefore the merge order — are a pure function
    /// of `(len, size)`.
    pub fn even_chunks(&self, len: usize) -> Vec<(usize, usize)> {
        even_chunks(len, self.size)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the injector disconnects the receivers; workers drain
        // what is queued and exit.
        self.injector.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Collects the tasks of one [`WorkerPool::scope`] call.
pub struct Scope<'env> {
    tasks: Vec<Box<dyn FnOnce() + Send + 'env>>,
}

impl<'env> Scope<'env> {
    /// Adds a task to the batch. Tasks start only after the scope closure
    /// returns.
    pub fn spawn<F>(&mut self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.tasks.push(Box::new(f));
    }

    /// Tasks queued so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no task has been queued.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// Worker count for the global pool: `CIMONE_THREADS` when set to a
/// positive integer, else available parallelism, clamped to
/// [`MAX_THREADS`].
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n.min(MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// The tile split behind [`WorkerPool::even_chunks`], usable without a
/// pool (the serial paths share it so serial and threaded kernels walk
/// identical tile boundaries).
pub fn even_chunks(len: usize, parts: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.max(1).min(len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_every_task_and_joins() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..100 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_may_borrow_disjoint_mutable_tiles() {
        let pool = WorkerPool::new(3);
        let mut data = [0usize; 10];
        pool.scope(|scope| {
            for (i, slot) in data.iter_mut().enumerate() {
                scope.spawn(move || *slot = i * i);
            }
        });
        assert_eq!(data[9], 81);
        assert_eq!(data[0], 0);
        assert_eq!(data[5], 25);
    }

    #[test]
    fn single_worker_pool_runs_inline_in_order() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.size(), 1);
        let order = std::sync::Mutex::new(Vec::new());
        pool.scope(|scope| {
            for i in 0..5 {
                let order = &order;
                scope.spawn(move || order.lock().unwrap().push(i));
            }
        });
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pool_is_reusable_across_scopes() {
        let pool = WorkerPool::new(2);
        let mut total = 0u64;
        for round in 0..10u64 {
            let mut partial = [0u64; 2];
            pool.scope(|scope| {
                for (i, slot) in partial.iter_mut().enumerate() {
                    scope.spawn(move || *slot = round + i as u64);
                }
            });
            total += partial.iter().sum::<u64>();
        }
        assert_eq!(total, 2 * 45 + 10);
    }

    #[test]
    fn task_panic_propagates_after_the_barrier() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("boom"));
                for _ in 0..10 {
                    scope.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate");
        // The barrier held: every non-panicking task still ran.
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        // And the pool survives for the next scope.
        pool.scope(|scope| {
            scope.spawn(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn even_chunks_cover_the_range_without_overlap() {
        for len in [0usize, 1, 7, 8, 9, 100] {
            for parts in 1usize..9 {
                let chunks = even_chunks(len, parts);
                let mut covered = 0;
                for (i, &(s, e)) in chunks.iter().enumerate() {
                    assert!(s < e, "chunk {i} empty for len={len} parts={parts}");
                    assert_eq!(s, covered, "gap before chunk {i}");
                    covered = e;
                }
                assert_eq!(covered, len);
                if len > 0 {
                    let sizes: Vec<usize> = chunks.iter().map(|(s, e)| e - s).collect();
                    let min = sizes.iter().min().unwrap();
                    let max = sizes.iter().max().unwrap();
                    assert!(max - min <= 1, "uneven split {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn env_override_is_clamped() {
        // Not a global-pool test (the env var is process-wide); exercise
        // the parsing helper's clamp directly.
        assert!(default_threads() >= 1);
        assert!(default_threads() <= MAX_THREADS);
    }

    #[test]
    fn scope_len_reports_queued_tasks() {
        let pool = WorkerPool::new(1);
        pool.scope(|scope| {
            assert!(scope.is_empty());
            scope.spawn(|| {});
            scope.spawn(|| {});
            assert_eq!(scope.len(), 2);
        });
    }
}
