//! The STREAM memory-bandwidth benchmark (McCalpin), real and threaded.
//!
//! Implements the four canonical kernels over heap-allocated arrays with
//! the standard STREAM accounting (copy/scale move 16 B per element,
//! add/triad 24 B) and validation. Unlike upstream STREAM's static arrays —
//! whose size the `medany` code model caps at 2 GiB on RV64, as the paper
//! discusses — these arrays are heap allocated, which is exactly the
//! workaround the paper suggests exploring.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use crate::pool::WorkerPool;

/// One of the four STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StreamKernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = q·c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + q·c[i]`
    Triad,
}

impl StreamKernel {
    /// All kernels in STREAM's canonical order.
    pub const ALL: [StreamKernel; 4] = [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ];

    /// The kernel's lowercase name as used in STREAM output and Table V.
    pub fn name(self) -> &'static str {
        match self {
            StreamKernel::Copy => "copy",
            StreamKernel::Scale => "scale",
            StreamKernel::Add => "add",
            StreamKernel::Triad => "triad",
        }
    }

    /// Bytes moved per element under STREAM's accounting.
    pub fn bytes_per_element(self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 16,
            StreamKernel::Add | StreamKernel::Triad => 24,
        }
    }

    /// FLOPs per element.
    pub fn flops_per_element(self) -> usize {
        match self {
            StreamKernel::Copy => 0,
            StreamKernel::Scale | StreamKernel::Add => 1,
            StreamKernel::Triad => 2,
        }
    }

    /// Memory streams touched (read + write), which determines how many
    /// prefetcher slots the kernel occupies per core.
    pub fn stream_count(self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 2,
            StreamKernel::Add | StreamKernel::Triad => 3,
        }
    }
}

impl fmt::Display for StreamKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration for a STREAM run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Elements per array.
    pub elements: usize,
    /// Worker threads (the paper uses one per physical core: 4).
    pub threads: usize,
    /// The scale factor `q` (STREAM uses 3.0).
    pub scalar: f64,
}

impl StreamConfig {
    /// A config with STREAM defaults for the scalar.
    ///
    /// # Panics
    ///
    /// Panics if `elements` or `threads` is zero.
    pub fn new(elements: usize, threads: usize) -> Self {
        assert!(elements > 0, "need at least one element");
        assert!(threads > 0, "need at least one thread");
        StreamConfig {
            elements,
            threads,
            scalar: 3.0,
        }
    }

    /// Total working set across the three arrays, in bytes.
    pub fn working_set_bytes(&self) -> u64 {
        3 * self.elements as u64 * std::mem::size_of::<f64>() as u64
    }
}

/// The three STREAM arrays plus run machinery.
///
/// # Examples
///
/// ```
/// use cimone_kernels::stream::{StreamConfig, StreamKernel, StreamRun};
///
/// let mut run = StreamRun::new(StreamConfig::new(10_000, 2));
/// for _ in 0..3 {
///     run.run_iteration();
/// }
/// run.validate(3).expect("results validate");
/// let result = run.benchmark(StreamKernel::Triad, 3);
/// assert!(result.best_mb_per_s > 0.0);
/// ```
#[derive(Debug)]
pub struct StreamRun {
    config: StreamConfig,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    /// Full STREAM iterations applied so far (for validation).
    iterations: usize,
    /// Executes the per-chunk work; long-lived, so repeated kernels pay a
    /// channel send per chunk instead of an OS thread spawn per chunk.
    pool: Arc<WorkerPool>,
}

impl StreamRun {
    /// Allocates and initialises the arrays (STREAM's 1.0/2.0/0.0 pattern)
    /// with a private worker pool of `config.threads` workers.
    pub fn new(config: StreamConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(config.threads));
        StreamRun::with_pool(config, pool)
    }

    /// [`new`](StreamRun::new), but sharing an existing pool (e.g. the
    /// process-wide [`WorkerPool::global`]). Chunking still follows
    /// `config.threads`, so results and accounting are independent of the
    /// pool that happens to execute the chunks.
    pub fn with_pool(config: StreamConfig, pool: Arc<WorkerPool>) -> Self {
        StreamRun {
            config,
            a: vec![1.0; config.elements],
            b: vec![2.0; config.elements],
            c: vec![0.0; config.elements],
            iterations: 0,
            pool,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The arrays and iteration count, for checkpoint snapshots.
    pub(crate) fn parts(&self) -> (&[f64], &[f64], &[f64], usize) {
        (&self.a, &self.b, &self.c, self.iterations)
    }

    /// Rebuilds a run mid-flight from snapshotted arrays.
    pub(crate) fn from_parts(
        config: StreamConfig,
        a: Vec<f64>,
        b: Vec<f64>,
        c: Vec<f64>,
        iterations: usize,
    ) -> Self {
        assert_eq!(a.len(), config.elements, "array a length matches config");
        assert_eq!(b.len(), config.elements, "array b length matches config");
        assert_eq!(c.len(), config.elements, "array c length matches config");
        let pool = Arc::new(WorkerPool::new(config.threads));
        StreamRun {
            config,
            a,
            b,
            c,
            iterations,
            pool,
        }
    }

    /// Executes one kernel once across all threads; returns elapsed seconds.
    ///
    /// Min-work threshold: when the arrays are too small to amortise the
    /// fan-out/join overhead ([`PARALLEL_GRAIN_ELEMENTS`] per worker) the
    /// kernel runs inline on the caller's thread — the elementwise maths
    /// is identical either way, only the wall clock changes.
    pub fn run_kernel(&mut self, kernel: StreamKernel) -> f64 {
        let threads = self.config.threads;
        let scalar = self.config.scalar;
        let len = self.a.len();
        let chunk = if len < threads * PARALLEL_GRAIN_ELEMENTS {
            len // one chunk ⇒ par_map runs it inline, skipping the pool
        } else {
            len.div_ceil(threads)
        };
        let pool = &self.pool;
        let start = Instant::now();
        match kernel {
            StreamKernel::Copy => {
                par_map2(pool, &mut self.c, &self.a, chunk, |c, a| {
                    c.copy_from_slice(a)
                });
            }
            StreamKernel::Scale => {
                par_map2(pool, &mut self.b, &self.c, chunk, |b, c| {
                    for (bv, cv) in b.iter_mut().zip(c) {
                        *bv = scalar * cv;
                    }
                });
            }
            StreamKernel::Add => {
                par_map3(pool, &mut self.c, &self.a, &self.b, chunk, |c, a, b| {
                    for ((cv, av), bv) in c.iter_mut().zip(a).zip(b) {
                        *cv = av + bv;
                    }
                });
            }
            StreamKernel::Triad => {
                par_map3(pool, &mut self.a, &self.b, &self.c, chunk, |a, b, c| {
                    for ((av, bv), cv) in a.iter_mut().zip(b).zip(c) {
                        *av = bv + scalar * cv;
                    }
                });
            }
        }
        start.elapsed().as_secs_f64()
    }

    /// Runs one full STREAM iteration (copy, scale, add, triad in order),
    /// returning the four elapsed times in seconds.
    pub fn run_iteration(&mut self) -> [f64; 4] {
        let times = [
            self.run_kernel(StreamKernel::Copy),
            self.run_kernel(StreamKernel::Scale),
            self.run_kernel(StreamKernel::Add),
            self.run_kernel(StreamKernel::Triad),
        ];
        self.iterations += 1;
        times
    }

    /// Benchmarks one kernel over `trials` runs, reporting STREAM's
    /// best-rate statistic.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn benchmark(&mut self, kernel: StreamKernel, trials: usize) -> StreamResult {
        assert!(trials > 0, "need at least one trial");
        let bytes = (kernel.bytes_per_element() * self.config.elements) as f64;
        let times: Vec<f64> = (0..trials).map(|_| self.run_kernel(kernel)).collect();
        let best = times.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = times.iter().copied().fold(0.0, f64::max);
        let avg = times.iter().sum::<f64>() / trials as f64;
        StreamResult {
            kernel,
            best_mb_per_s: bytes / best / 1e6,
            avg_mb_per_s: bytes / avg / 1e6,
            min_time_s: best,
            max_time_s: worst,
        }
    }

    /// Verifies the arrays hold the values implied by `iterations` full
    /// STREAM iterations, within STREAM's error tolerance.
    ///
    /// # Errors
    ///
    /// Returns the offending array name and relative error on failure.
    pub fn validate(&self, iterations: usize) -> Result<(), StreamValidationError> {
        let q = self.config.scalar;
        let (mut ea, mut eb, mut ec) = (1.0, 2.0, 0.0);
        for _ in 0..iterations {
            ec = ea;
            eb = q * ec;
            ec = ea + eb;
            ea = eb + q * ec;
        }
        for (name, expected, arr) in [("a", ea, &self.a), ("b", eb, &self.b), ("c", ec, &self.c)] {
            let sum: f64 = arr.iter().sum();
            let avg = sum / arr.len() as f64;
            let rel = ((avg - expected) / expected).abs();
            if rel > 1e-13 {
                return Err(StreamValidationError {
                    array: name,
                    relative_error: rel,
                });
            }
        }
        Ok(())
    }
}

/// Bandwidth result for one kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamResult {
    /// The kernel measured.
    pub kernel: StreamKernel,
    /// Best (highest) rate across trials, in MB/s — STREAM's headline.
    pub best_mb_per_s: f64,
    /// Average rate across trials, in MB/s.
    pub avg_mb_per_s: f64,
    /// Fastest trial, seconds.
    pub min_time_s: f64,
    /// Slowest trial, seconds.
    pub max_time_s: f64,
}

/// Array contents diverged from the analytic expectation.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamValidationError {
    /// Which array failed.
    pub array: &'static str,
    /// Relative error observed.
    pub relative_error: f64,
}

impl fmt::Display for StreamValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "STREAM validation failed on array {} (relative error {:.3e})",
            self.array, self.relative_error
        )
    }
}

impl std::error::Error for StreamValidationError {}

/// Minimum elements each worker must receive before a kernel fans out to
/// the pool. Below this the fan-out/join handshake costs more than the
/// memory traffic it parallelises (a 64 Ki-element chunk is ~512 KiB —
/// roughly one worker's share of L2 — and streams in well under the
/// ~10 µs a scope round-trip costs), so smaller runs stay on the caller's
/// thread. The arithmetic is elementwise either way, so results are
/// bit-identical.
const PARALLEL_GRAIN_ELEMENTS: usize = 64 * 1024;

/// Applies `f` to corresponding chunks of one mutable and one shared slice
/// across the pool's workers. A single chunk (`dst.len() <= chunk`) runs
/// inline on the caller's thread, skipping the pool entirely.
fn par_map2(
    pool: &WorkerPool,
    dst: &mut [f64],
    src: &[f64],
    chunk: usize,
    f: impl Fn(&mut [f64], &[f64]) + Send + Sync,
) {
    if dst.len() <= chunk {
        f(dst, src);
        return;
    }
    let f = &f;
    pool.scope(|scope| {
        for (d, s) in dst.chunks_mut(chunk).zip(src.chunks(chunk)) {
            scope.spawn(move || f(d, s));
        }
    });
}

/// Applies `f` to corresponding chunks of one mutable and two shared slices
/// across the pool's workers. A single chunk (`dst.len() <= chunk`) runs
/// inline on the caller's thread, skipping the pool entirely.
fn par_map3(
    pool: &WorkerPool,
    dst: &mut [f64],
    s1: &[f64],
    s2: &[f64],
    chunk: usize,
    f: impl Fn(&mut [f64], &[f64], &[f64]) + Send + Sync,
) {
    if dst.len() <= chunk {
        f(dst, s1, s2);
        return;
    }
    let f = &f;
    pool.scope(|scope| {
        for ((d, a), b) in dst
            .chunks_mut(chunk)
            .zip(s1.chunks(chunk))
            .zip(s2.chunks(chunk))
        {
            scope.spawn(move || f(d, a, b));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_accounting_matches_stream_conventions() {
        assert_eq!(StreamKernel::Copy.bytes_per_element(), 16);
        assert_eq!(StreamKernel::Triad.bytes_per_element(), 24);
        assert_eq!(StreamKernel::Triad.flops_per_element(), 2);
        assert_eq!(StreamKernel::Add.stream_count(), 3);
    }

    #[test]
    fn kernels_compute_correct_values() {
        let mut run = StreamRun::new(StreamConfig::new(1000, 3));
        run.run_kernel(StreamKernel::Copy);
        assert!(run.c.iter().all(|&v| v == 1.0));
        run.run_kernel(StreamKernel::Scale);
        assert!(run.b.iter().all(|&v| v == 3.0));
        run.run_kernel(StreamKernel::Add);
        assert!(run.c.iter().all(|&v| v == 4.0));
        run.run_kernel(StreamKernel::Triad);
        assert!(run.a.iter().all(|&v| v == 15.0));
    }

    #[test]
    fn validation_tracks_full_iterations() {
        let mut run = StreamRun::new(StreamConfig::new(512, 2));
        for _ in 0..4 {
            run.run_iteration();
        }
        run.validate(4).unwrap();
        assert!(run.validate(3).is_err());
    }

    #[test]
    fn benchmark_reports_consistent_statistics() {
        let mut run = StreamRun::new(StreamConfig::new(4096, 2));
        let r = run.benchmark(StreamKernel::Copy, 5);
        assert!(r.best_mb_per_s >= r.avg_mb_per_s * 0.99);
        assert!(r.min_time_s <= r.max_time_s);
    }

    #[test]
    fn uneven_chunking_covers_all_elements() {
        // 1001 elements with a chunk of 250 exercises the pool path and
        // the remainder chunk (run_kernel itself would run this size
        // inline under the min-work threshold).
        let pool = WorkerPool::new(4);
        let src = vec![2.0; 1001];
        let mut dst = vec![0.0; 1001];
        par_map2(&pool, &mut dst, &src, 250, |d, s| {
            for (x, y) in d.iter_mut().zip(s) {
                *x = *y;
            }
        });
        assert!(dst.iter().all(|&v| v == 2.0));
        let mut tri = vec![0.0; 1001];
        par_map3(&pool, &mut tri, &src, &dst, 250, |d, a, b| {
            for ((x, y), z) in d.iter_mut().zip(a).zip(b) {
                *x = y + 3.0 * z;
            }
        });
        assert!(tri.iter().all(|&v| v == 8.0));
    }

    #[test]
    fn small_runs_stay_inline_and_match_pooled_results() {
        // Below threads * PARALLEL_GRAIN_ELEMENTS the kernels run on the
        // caller's thread; the values must match the pooled path exactly.
        let elements = 1001;
        assert!(elements < 4 * PARALLEL_GRAIN_ELEMENTS);
        let mut small = StreamRun::new(StreamConfig::new(elements, 4));
        let mut serial = StreamRun::new(StreamConfig::new(elements, 1));
        for k in StreamKernel::ALL {
            small.run_kernel(k);
            serial.run_kernel(k);
        }
        assert_eq!(small.a, serial.a);
        assert_eq!(small.b, serial.b);
        assert_eq!(small.c, serial.c);
    }

    #[test]
    fn working_set_accounts_three_arrays() {
        let cfg = StreamConfig::new(1_000_000, 4);
        assert_eq!(cfg.working_set_bytes(), 24_000_000);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = StreamConfig::new(10, 0);
    }
}
