//! Application-level checkpoint/restart for the iterative kernels.
//!
//! Long HPL and STREAM runs are exactly the jobs that die expensively on a
//! node failure, so the kernels expose their natural restart points: the
//! blocked LU factors one panel at a time through [`SteppableLu`], and
//! STREAM snapshots its three arrays between iterations. A snapshot taken
//! through the [`Checkpoint`] trait is *lossless*: resuming from it and
//! running to completion produces bit-identical results to an
//! uninterrupted run (floating-point payloads travel as [`f64::to_bits`]
//! words, never through a decimal round-trip).

use crate::lu::{LuError, LuFactorization};
use crate::matrix::Matrix;
use crate::pool::WorkerPool;
use crate::stream::{StreamConfig, StreamRun};

/// A computation that can snapshot its progress and resume from the
/// snapshot with no loss of state.
///
/// Implementations guarantee the round-trip law: for any prefix of work,
/// `restore(checkpoint(&x))` behaves exactly like `x` from that point on —
/// finishing both must yield bit-identical results.
pub trait Checkpoint: Sized {
    /// The serialisable snapshot of in-progress state.
    type State: Clone;

    /// Captures everything needed to resume from the current position.
    fn checkpoint(&self) -> Self::State;

    /// Rebuilds the computation exactly as snapshotted.
    fn restore(state: Self::State) -> Self;
}

/// A blocked LU factorisation that advances one panel per [`step`] call —
/// HPL's natural checkpoint granularity (the paper's run has
/// `N / NB = 40704 / 192 = 212` panels).
///
/// [`step`]: SteppableLu::step
///
/// # Examples
///
/// ```
/// use cimone_kernels::checkpoint::{Checkpoint, SteppableLu};
/// use cimone_kernels::matrix::Matrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let a = Matrix::random(32, 32, &mut rng);
/// let mut lu = SteppableLu::new(a, 8)?;
/// lu.step()?; // factor the first panel
/// let snapshot = lu.checkpoint();
/// let resumed = SteppableLu::restore(snapshot).run_to_completion()?;
/// let direct = lu.run_to_completion()?;
/// assert_eq!(resumed.packed().as_slice(), direct.packed().as_slice());
/// # Ok::<(), cimone_kernels::lu::LuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SteppableLu {
    a: Matrix,
    pivots: Vec<usize>,
    block: usize,
    /// First column of the next panel to factor (`k` in the blocked loop).
    next_col: usize,
}

/// The lossless snapshot of a [`SteppableLu`] in progress.
///
/// Matrix entries are stored as raw IEEE-754 bit patterns so the
/// round-trip is exact for every representable value (including signed
/// zeros and subnormals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LuState {
    /// Matrix order.
    pub order: usize,
    /// Blocking factor (HPL's `NB`).
    pub block: usize,
    /// First column of the next panel to factor.
    pub next_col: usize,
    /// Column-major matrix entries as IEEE-754 bit patterns.
    pub data_bits: Vec<u64>,
    /// Pivot rows chosen so far (identity for columns not yet factored).
    pub pivots: Vec<usize>,
}

impl SteppableLu {
    /// Starts a blocked factorisation of `a` without performing any work.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::NotSquare`] for rectangular inputs.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    pub fn new(a: Matrix, block: usize) -> Result<Self, LuError> {
        assert!(block > 0, "block size must be positive");
        let n = a.rows();
        if a.cols() != n {
            return Err(LuError::NotSquare {
                rows: n,
                cols: a.cols(),
            });
        }
        Ok(SteppableLu {
            pivots: vec![0usize; n],
            a,
            block,
            next_col: 0,
        })
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// Panels factored so far.
    pub fn panels_done(&self) -> usize {
        self.next_col.div_ceil(self.block)
    }

    /// Total panels in the factorisation.
    pub fn panels_total(&self) -> usize {
        self.order().div_ceil(self.block)
    }

    /// Whether every panel has been factored.
    pub fn is_complete(&self) -> bool {
        self.next_col >= self.order()
    }

    /// Factors the next panel (panel factorisation, block-row solve,
    /// trailing update). Returns `true` while panels remain afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::Singular`] when an exact zero pivot appears.
    pub fn step(&mut self) -> Result<bool, LuError> {
        let n = self.order();
        if self.is_complete() {
            return Ok(false);
        }
        let k = self.next_col;
        let kb = self.block.min(n - k);
        crate::lu::factor_panel(&mut self.a, k, kb, &mut self.pivots)?;
        if k + kb < n {
            crate::lu::solve_block_row(&mut self.a, k, kb);
            crate::lu::update_trailing(&mut self.a, k, kb);
        }
        self.next_col = k + kb;
        if self.is_complete() {
            crate::lu::apply_deferred_swaps(&mut self.a, &self.pivots, self.block);
        }
        Ok(!self.is_complete())
    }

    /// Like [`step`](SteppableLu::step), but runs the fused block-row
    /// solve + trailing update on `pool`. Bit-identical to the serial
    /// step at any worker count, and because the pool scope is a full
    /// barrier, a [`checkpoint`](Checkpoint::checkpoint) taken between
    /// steps observes fully quiesced state — the PR 2 restart law holds
    /// unchanged on the threaded path.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::Singular`] when an exact zero pivot appears.
    pub fn step_with_pool(&mut self, pool: &WorkerPool) -> Result<bool, LuError> {
        let n = self.order();
        if self.is_complete() {
            return Ok(false);
        }
        let k = self.next_col;
        let kb = self.block.min(n - k);
        crate::lu::factor_panel(&mut self.a, k, kb, &mut self.pivots)?;
        if k + kb < n {
            crate::lu::update_trailing_parallel(&mut self.a, k, kb, pool);
        }
        self.next_col = k + kb;
        if self.is_complete() {
            crate::lu::apply_deferred_swaps(&mut self.a, &self.pivots, self.block);
        }
        Ok(!self.is_complete())
    }

    /// Factors all remaining panels and packages the result.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::Singular`] when an exact zero pivot appears.
    pub fn run_to_completion(mut self) -> Result<LuFactorization, LuError> {
        while self.step()? {}
        Ok(LuFactorization::from_parts(self.a, self.pivots, self.block))
    }

    /// [`run_to_completion`](SteppableLu::run_to_completion) on `pool`.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::Singular`] when an exact zero pivot appears.
    pub fn run_to_completion_with_pool(
        mut self,
        pool: &WorkerPool,
    ) -> Result<LuFactorization, LuError> {
        while self.step_with_pool(pool)? {}
        Ok(LuFactorization::from_parts(self.a, self.pivots, self.block))
    }
}

impl Checkpoint for SteppableLu {
    type State = LuState;

    fn checkpoint(&self) -> LuState {
        LuState {
            order: self.a.rows(),
            block: self.block,
            next_col: self.next_col,
            data_bits: self.a.as_slice().iter().map(|v| v.to_bits()).collect(),
            pivots: self.pivots.clone(),
        }
    }

    fn restore(state: LuState) -> Self {
        let n = state.order;
        assert_eq!(
            state.data_bits.len(),
            n * n,
            "LU state holds {} entries for order {n}",
            state.data_bits.len()
        );
        let mut a = Matrix::zeros(n, n);
        for (dst, &bits) in a.as_mut_slice().iter_mut().zip(&state.data_bits) {
            *dst = f64::from_bits(bits);
        }
        SteppableLu {
            a,
            pivots: state.pivots,
            block: state.block,
            next_col: state.next_col,
        }
    }
}

/// The lossless snapshot of a [`StreamRun`] between iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamState {
    /// The run configuration (restored verbatim).
    pub config: StreamConfig,
    /// Array `a` as IEEE-754 bit patterns.
    pub a_bits: Vec<u64>,
    /// Array `b` as IEEE-754 bit patterns.
    pub b_bits: Vec<u64>,
    /// Array `c` as IEEE-754 bit patterns.
    pub c_bits: Vec<u64>,
    /// Full STREAM iterations applied so far.
    pub iterations: usize,
}

impl Checkpoint for StreamRun {
    type State = StreamState;

    fn checkpoint(&self) -> StreamState {
        let (a, b, c, iterations) = self.parts();
        StreamState {
            config: *self.config(),
            a_bits: a.iter().map(|v| v.to_bits()).collect(),
            b_bits: b.iter().map(|v| v.to_bits()).collect(),
            c_bits: c.iter().map(|v| v.to_bits()).collect(),
            iterations,
        }
    }

    fn restore(state: StreamState) -> Self {
        let thaw = |bits: Vec<u64>| bits.into_iter().map(f64::from_bits).collect();
        StreamRun::from_parts(
            state.config,
            thaw(state.a_bits),
            thaw(state.b_bits),
            thaw(state.c_bits),
            state.iterations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stepped_lu_matches_monolithic_factor() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Matrix::random(40, 40, &mut rng);
        let stepped = SteppableLu::new(a.clone(), 8)
            .unwrap()
            .run_to_completion()
            .unwrap();
        let direct = LuFactorization::factor(a, 8).unwrap();
        assert_eq!(stepped.packed().as_slice(), direct.packed().as_slice());
        assert_eq!(stepped.pivots(), direct.pivots());
    }

    #[test]
    fn lu_checkpoint_restore_round_trip_is_bitwise_lossless() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Matrix::random(48, 48, &mut rng);
        let mut lu = SteppableLu::new(a, 16).unwrap();
        lu.step().unwrap();
        lu.step().unwrap();
        let resumed = SteppableLu::restore(lu.checkpoint());
        assert_eq!(resumed.panels_done(), 2);
        let from_snapshot = resumed.run_to_completion().unwrap();
        let uninterrupted = lu.run_to_completion().unwrap();
        assert_eq!(
            from_snapshot.packed().as_slice(),
            uninterrupted.packed().as_slice()
        );
        assert_eq!(from_snapshot.pivots(), uninterrupted.pivots());
    }

    #[test]
    fn panel_accounting_matches_the_paper_shape() {
        let a = Matrix::zeros(30, 30);
        let lu = SteppableLu::new(a, 8).unwrap();
        assert_eq!(lu.panels_total(), 4); // 8+8+8+6
        assert_eq!(lu.panels_done(), 0);
        assert!(!lu.is_complete());
    }

    #[test]
    fn stream_checkpoint_preserves_validation() {
        let config = StreamConfig::new(512, 1);
        let mut run = StreamRun::new(config);
        run.run_iteration();
        run.run_iteration();
        let mut resumed = StreamRun::restore(run.checkpoint());
        resumed.run_iteration();
        resumed.validate(3).expect("resumed run validates");
    }

    #[test]
    fn rectangular_input_is_rejected() {
        let err = SteppableLu::new(Matrix::zeros(3, 5), 2).unwrap_err();
        assert_eq!(err, LuError::NotSquare { rows: 3, cols: 5 });
    }
}
