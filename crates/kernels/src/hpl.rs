//! A native HPL-style driver: generate, factor, solve, verify, report.
//!
//! This is the single-process equivalent of the HPL benchmark: it builds a
//! random dense system, runs the blocked LU of [`crate::lu`], solves, and
//! reports GFLOP/s with the HPL operation count and residual check. The
//! cluster-scale distributed runs of the paper are modelled in
//! `cimone-cluster`, which consumes this driver's FLOP accounting.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::abft::{factor_protected, AbftMode, AbftReport, SdcInjection};
use crate::lu::{hpl_flops, hpl_residual, LuError, LuFactorization, HPL_RESIDUAL_THRESHOLD};
use crate::matrix::Matrix;

/// Parameters of an HPL run (the paper uses N = 40704, NB = 192 on the
/// real machine; native runs here use laptop-scale N).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HplConfig {
    /// Problem size (matrix order).
    pub n: usize,
    /// Blocking factor.
    pub nb: usize,
    /// RNG seed for matrix generation.
    pub seed: u64,
    /// ABFT protection applied to the factorisation.
    pub abft: AbftMode,
}

impl HplConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `nb` is zero.
    pub fn new(n: usize, nb: usize) -> Self {
        assert!(n > 0, "problem size must be positive");
        assert!(nb > 0, "block size must be positive");
        HplConfig {
            n,
            nb,
            seed: 42,
            abft: AbftMode::Off,
        }
    }

    /// Overrides the generator seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the ABFT protection mode.
    pub fn with_abft(mut self, abft: AbftMode) -> Self {
        self.abft = abft;
        self
    }

    /// The FLOPs HPL credits this problem size.
    pub fn flops(&self) -> f64 {
        hpl_flops(self.n)
    }

    /// Memory footprint of the system matrix in bytes.
    pub fn matrix_bytes(&self) -> u64 {
        (self.n * self.n * std::mem::size_of::<f64>()) as u64
    }
}

/// Outcome of a native HPL run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HplResult {
    /// The configuration that ran.
    pub config: HplConfig,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Sustained GFLOP/s.
    pub gflops: f64,
    /// The scaled residual.
    pub residual: f64,
    /// Whether the residual check passed (`residual < 16`).
    pub passed: bool,
    /// ABFT observations, when protection was on.
    pub abft: Option<AbftReport>,
}

/// Runs the native HPL driver.
///
/// # Errors
///
/// Propagates [`LuError`] if factorisation breaks down (practically
/// impossible for the random generator used).
///
/// # Examples
///
/// ```
/// use cimone_kernels::hpl::{run, HplConfig};
///
/// let result = run(HplConfig::new(64, 16))?;
/// assert!(result.passed);
/// assert!(result.gflops > 0.0);
/// # Ok::<(), cimone_kernels::lu::LuError>(())
/// ```
pub fn run(config: HplConfig) -> Result<HplResult, LuError> {
    let (result, _x) = run_with_injection(config, None)?;
    Ok(result)
}

/// [`run`], optionally planting a deterministic single-bit flip in the
/// live factors (the SDC experiments' fault model). Returns the result
/// plus the computed solution vector, so callers can compare a poisoned
/// run against a clean one.
///
/// # Errors
///
/// Propagates [`LuError`] if factorisation breaks down.
pub fn run_with_injection(
    config: HplConfig,
    inject: Option<SdcInjection>,
) -> Result<(HplResult, Vec<f64>), LuError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let a = Matrix::random(config.n, config.n, &mut rng);
    let b: Vec<f64> = Matrix::random(config.n, 1, &mut rng).as_slice().to_vec();

    let start = Instant::now();
    let (lu, report) = if config.abft == AbftMode::Off && inject.is_none() {
        (LuFactorization::factor(a.clone(), config.nb)?, None)
    } else {
        let (lu, report) = factor_protected(a.clone(), config.nb, config.abft, None, inject)?;
        (lu, Some(report))
    };
    let x = lu.solve(&b);
    let seconds = start.elapsed().as_secs_f64();

    let residual = hpl_residual(&a, &x, &b);
    let result = HplResult {
        config,
        seconds,
        gflops: config.flops() / seconds / 1e9,
        residual,
        passed: residual < HPL_RESIDUAL_THRESHOLD,
        abft: report.filter(|_| config.abft != AbftMode::Off),
    };
    Ok((result, x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_passes_and_reports_positive_rate() {
        let r = run(HplConfig::new(96, 24)).unwrap();
        assert!(r.passed, "residual {}", r.residual);
        assert!(r.gflops > 0.0);
        assert!(r.seconds > 0.0);
    }

    #[test]
    fn different_seeds_give_different_matrices_but_both_pass() {
        let a = run(HplConfig::new(48, 16).with_seed(1)).unwrap();
        let b = run(HplConfig::new(48, 16).with_seed(2)).unwrap();
        assert!(a.passed && b.passed);
        assert_ne!(a.residual, b.residual);
    }

    #[test]
    fn flops_and_bytes_accounting() {
        let cfg = HplConfig::new(1000, 100);
        assert!((cfg.flops() - (2.0 / 3.0 * 1e9 + 1.5e6)).abs() < 1.0);
        assert_eq!(cfg.matrix_bytes(), 8_000_000);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_panics() {
        let _ = HplConfig::new(10, 0);
    }

    #[test]
    fn abft_modes_report_and_match_the_baseline_residual() {
        let base = run(HplConfig::new(96, 24)).unwrap();
        assert!(base.abft.is_none());
        let detect = run(HplConfig::new(96, 24).with_abft(AbftMode::Detect)).unwrap();
        let report = detect.abft.expect("protection was on");
        assert_eq!(report.mismatches, 0);
        assert!(report.panels_verified > 0);
        assert_eq!(detect.residual.to_bits(), base.residual.to_bits());

        // A planted exponent flip: Detect flags it, Correct heals it back
        // to the clean residual bit-for-bit.
        let inject = Some(SdcInjection {
            panel: 1,
            word: 70 * 96 + 80,
            bit: 62,
        });
        let (poisoned, _) =
            run_with_injection(HplConfig::new(96, 24).with_abft(AbftMode::Detect), inject).unwrap();
        assert!(poisoned.abft.unwrap().mismatches >= 1);
        let (healed, _) =
            run_with_injection(HplConfig::new(96, 24).with_abft(AbftMode::Correct), inject)
                .unwrap();
        assert_eq!(healed.residual.to_bits(), base.residual.to_bits());
        assert!(healed.passed);
    }
}
