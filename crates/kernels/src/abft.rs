//! Algorithm-based fault tolerance (ABFT) for the blocked LU and DGEMM
//! paths — Huang–Abraham column checksums against silent data corruption.
//!
//! Monte Cimone's FU740 blades carry non-ECC DDR, so a bit can flip in a
//! live panel and nothing crashes: the run completes and only the residual
//! betrays it, hours later. ABFT closes that window at panel granularity.
//! Before each trailing update the factorisation records the column sums
//! of the trailing block and of the `L21` panel; after the update the sum
//! of every trailing column must equal the checksum image of the same
//! update (`s′_j = s_j − Σ_p lsum_p·u_pj`). A mismatch localises the
//! corruption to one column of one panel, and [`AbftMode::Correct`]
//! rebuilds exactly that column from a pre-update snapshot by replaying
//! the identical per-element operation chain — so a repaired run is
//! **bit-identical** to a clean one.
//!
//! All checksum arithmetic uses Neumaier compensated summation, keeping
//! the verification tolerance near `kb·ε·scale` instead of `n·ε·scale`;
//! every flip large enough to move the HPL residual sits orders of
//! magnitude above it.

use crate::lu::{
    apply_deferred_swaps, factor_panel, solve_block_row, update_trailing, update_trailing_parallel,
    LuError, LuFactorization,
};
use crate::matrix::Matrix;
use crate::pool::WorkerPool;

/// How much protection the checksummed kernels apply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum AbftMode {
    /// No checksums: the unprotected baseline path.
    #[default]
    Off,
    /// Maintain and verify checksums; report mismatches but leave the
    /// corrupted data in place.
    Detect,
    /// Verify, then rebuild any mismatching column from its pre-update
    /// snapshot (bitwise equal to a clean run).
    Correct,
}

/// What the checksummed kernels observed and spent.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AbftReport {
    /// Panels whose trailing update was verified.
    pub panels_verified: usize,
    /// Column checksum mismatches raised.
    pub mismatches: usize,
    /// Columns rebuilt (and re-verified clean) in [`AbftMode::Correct`].
    pub columns_recomputed: usize,
    /// Arithmetic spent maintaining and verifying checksums.
    pub checksum_flops: f64,
    /// Arithmetic wasted rebuilding corrupted columns.
    pub recompute_flops: f64,
}

impl AbftReport {
    /// Checksum + recompute work relative to `base_flops` (the protected
    /// kernel's own FLOP count): the ABFT overhead fraction.
    pub fn overhead_vs(&self, base_flops: f64) -> f64 {
        if base_flops <= 0.0 {
            return 0.0;
        }
        (self.checksum_flops + self.recompute_flops) / base_flops
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: &AbftReport) {
        self.panels_verified += other.panels_verified;
        self.mismatches += other.mismatches;
        self.columns_recomputed += other.columns_recomputed;
        self.checksum_flops += other.checksum_flops;
        self.recompute_flops += other.recompute_flops;
    }
}

/// A deterministic single-bit fault against the factorisation's live
/// state: after panel `panel`'s trailing update, bit `bit % 64` of word
/// `word % n²` of the in-place factors is flipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdcInjection {
    /// Zero-based panel index after whose update the flip lands.
    pub panel: usize,
    /// Flat column-major word index into the matrix (taken modulo `n²`).
    pub word: usize,
    /// Bit position within the word (taken modulo 64).
    pub bit: u32,
}

/// Neumaier compensated accumulator: exact enough that the verification
/// tolerance is set by the *update's* rounding, not the summation's.
#[derive(Debug, Clone, Copy, Default)]
struct Neumaier {
    sum: f64,
    comp: f64,
}

impl Neumaier {
    fn seeded(v: f64) -> Self {
        Neumaier { sum: v, comp: 0.0 }
    }

    fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.comp += (self.sum - t) + v;
        } else {
            self.comp += (v - t) + self.sum;
        }
        self.sum = t;
    }

    fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

/// Flips one bit of the matrix backing store in place.
fn flip_bit(a: &mut Matrix, word: usize, bit: u32) {
    let data = a.as_mut_slice();
    let idx = word % data.len();
    data[idx] = f64::from_bits(data[idx].to_bits() ^ (1u64 << (bit % 64)));
}

/// Verification tolerance for one trailing column: the update performs
/// `kb` multiply-accumulates per element, so the float drift between the
/// direct sum and the checksum image is bounded by `~kb·ε` times the
/// column's absolute mass. The `+4` and factor 8 absorb the compensated
/// sums' own residue and the dot products on the checksum side.
fn column_tolerance(kb: usize, abs_scale: f64) -> f64 {
    8.0 * f64::EPSILON * (kb as f64 + 4.0) * abs_scale + 1e-290
}

/// Blocked LU with Huang–Abraham panel checksums.
///
/// Identical arithmetic to [`LuFactorization::factor`] (serial) or
/// [`LuFactorization::factor_parallel`] (when `pool` is given): the
/// checksum passes only *read* the factors, and a [`AbftMode::Correct`]
/// repair replays the exact per-element update chain, so the returned
/// factors are bit-identical to the unprotected path on a clean run —
/// at any worker count.
///
/// `inject` plants a deterministic single-bit flip after the named
/// panel's update (the SDC experiments' fault model); `None` runs clean.
///
/// # Errors
///
/// Returns [`LuError::NotSquare`] for rectangular inputs and
/// [`LuError::Singular`] when an exact zero pivot appears.
///
/// # Panics
///
/// Panics if `block` is zero.
pub fn factor_protected(
    mut a: Matrix,
    block: usize,
    mode: AbftMode,
    pool: Option<&WorkerPool>,
    inject: Option<SdcInjection>,
) -> Result<(LuFactorization, AbftReport), LuError> {
    assert!(block > 0, "block size must be positive");
    let n = a.rows();
    if a.cols() != n {
        return Err(LuError::NotSquare {
            rows: n,
            cols: a.cols(),
        });
    }
    let mut pivots = vec![0usize; n];
    let mut report = AbftReport::default();
    let protect = mode != AbftMode::Off;
    let mut snapshot: Vec<f64> = Vec::new();
    let mut panel_index = 0usize;

    for k in (0..n).step_by(block) {
        let kb = block.min(n - k);
        factor_panel(&mut a, k, kb, &mut pivots)?;
        let t = n - (k + kb);
        if t == 0 {
            if matches!(inject, Some(i) if i.panel == panel_index) {
                let i = inject.expect("just matched");
                flip_bit(&mut a, i.word, i.bit);
            }
            panel_index += 1;
            continue;
        }

        // Checksums are taken *after* the panel factorisation: its
        // deferred-pivot pass swaps trailing-block rows across the
        // `k+kb` boundary, so earlier sums would not survive it.
        let mut s_pre = vec![0.0f64; t];
        let mut s_abs = vec![0.0f64; t];
        let mut lsum = vec![0.0f64; kb];
        let mut labs = vec![0.0f64; kb];
        if protect {
            for (j, (s, sa)) in s_pre.iter_mut().zip(s_abs.iter_mut()).enumerate() {
                let col = &a.col(k + kb + j)[k + kb..n];
                let mut acc = Neumaier::default();
                let mut abs = 0.0f64;
                for &v in col {
                    acc.add(v);
                    abs += v.abs();
                }
                *s = acc.value();
                *sa = abs;
            }
            for (p, (s, sa)) in lsum.iter_mut().zip(labs.iter_mut()).enumerate() {
                let col = &a.col(k + p)[k + kb..n];
                let mut acc = Neumaier::default();
                let mut abs = 0.0f64;
                for &v in col {
                    acc.add(v);
                    abs += v.abs();
                }
                *s = acc.value();
                *sa = abs;
            }
            if mode == AbftMode::Correct {
                snapshot.clear();
                snapshot.reserve(t * t);
                for j in 0..t {
                    snapshot.extend_from_slice(&a.col(k + kb + j)[k + kb..n]);
                }
            }
        }

        match pool {
            Some(p) => update_trailing_parallel(&mut a, k, kb, p),
            None => {
                solve_block_row(&mut a, k, kb);
                update_trailing(&mut a, k, kb);
            }
        }

        if matches!(inject, Some(i) if i.panel == panel_index) {
            let i = inject.expect("just matched");
            flip_bit(&mut a, i.word, i.bit);
        }

        if protect {
            report.checksum_flops += (9 * t * t + 9 * t * kb) as f64;
            for jj in k + kb..n {
                let (pred, abs_scale) = {
                    let col = a.col(jj);
                    let mut pred = Neumaier::seeded(s_pre[jj - k - kb]);
                    let mut dot_abs = 0.0f64;
                    for (p, (&s, &sa)) in lsum.iter().zip(labs.iter()).enumerate() {
                        let u = col[k + p];
                        pred.add(-(s * u));
                        dot_abs += sa * u.abs();
                    }
                    (pred.value(), s_abs[jj - k - kb] + 2.0 * dot_abs)
                };
                let tol = column_tolerance(kb, abs_scale);
                let actual = trailing_sum(&a, jj, k + kb);
                let delta = (actual - pred).abs();
                // A NaN delta is a mismatch: corruption can turn sums into
                // NaN, which every ordered comparison would wave through.
                if delta > tol || delta.is_nan() {
                    report.mismatches += 1;
                    if mode == AbftMode::Correct {
                        repair_column(&mut a, &snapshot, k, kb, jj, t);
                        report.recompute_flops += (2 * kb * t + 4 * t + 4 * kb) as f64;
                        let again = (trailing_sum(&a, jj, k + kb) - pred).abs();
                        if again <= tol {
                            report.columns_recomputed += 1;
                        }
                    }
                }
            }
            report.panels_verified += 1;
        }
        panel_index += 1;
    }
    apply_deferred_swaps(&mut a, &pivots, block);

    Ok((LuFactorization::from_parts(a, pivots, block), report))
}

/// Neumaier sum of column `jj`, rows `row0..n`.
fn trailing_sum(a: &Matrix, jj: usize, row0: usize) -> f64 {
    let n = a.rows();
    let mut acc = Neumaier::default();
    for &v in &a.col(jj)[row0..n] {
        acc.add(v);
    }
    acc.value()
}

/// Rebuilds trailing column `jj` of panel `k`: restores the pre-update
/// rows from `snapshot` and replays the update's exact per-element chain
/// (`p` ascending, `c += l·(−mult)`) — bit-for-bit what both the serial
/// and the pool update produce.
fn repair_column(a: &mut Matrix, snapshot: &[f64], k: usize, kb: usize, jj: usize, t: usize) {
    let n = a.rows();
    let c0 = (jj - (k + kb)) * t;
    a.col_mut(jj)[k + kb..n].copy_from_slice(&snapshot[c0..c0 + t]);
    let data = a.as_mut_slice();
    for p in 0..kb {
        let mult = data[jj * n + k + p];
        let neg = -mult;
        let (l_off, c_off) = ((k + p) * n, jj * n);
        for i in k + kb..n {
            let lv = data[l_off + i];
            data[c_off + i] += lv * neg;
        }
    }
}

/// Checksummed `C ← alpha·A·B + beta·C` over the blocked DGEMM kernel.
///
/// Column sums of `A` and the pre-call `C` give the checksum image
/// `pred_j = beta·s0_j + alpha·Σ_p sA_p·B_pj`; after the multiply every
/// column of `C` is verified against it. [`AbftMode::Correct`] rebuilds a
/// mismatching column from the snapshot by the kernel's own per-element
/// chain (`beta`-scale, then `k` ascending `c += a·(alpha·b)`), bitwise
/// equal to an uncorrupted [`crate::dgemm::blocked`] run.
///
/// `inject` flips bit `.1` of word `.0` of `C` after the multiply;
/// `None` runs clean. Returns the observation/cost report.
///
/// # Panics
///
/// Panics on dimension mismatch or a zero block size.
#[allow(clippy::too_many_arguments)]
pub fn checked_multiply(
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    block: usize,
    mode: AbftMode,
    pool: Option<&WorkerPool>,
    inject: Option<(usize, u32)>,
) -> AbftReport {
    let (m, kdim, ncols) = (a.rows(), a.cols(), b.cols());
    let mut report = AbftReport::default();
    let protect = mode != AbftMode::Off;

    let mut s0 = vec![0.0f64; ncols];
    let mut s0_abs = vec![0.0f64; ncols];
    let mut sa = vec![0.0f64; kdim];
    let mut sa_abs = vec![0.0f64; kdim];
    let mut snapshot: Vec<f64> = Vec::new();
    if protect {
        for j in 0..ncols {
            let mut acc = Neumaier::default();
            let mut abs = 0.0f64;
            for &v in c.col(j) {
                acc.add(v);
                abs += v.abs();
            }
            s0[j] = acc.value();
            s0_abs[j] = abs;
        }
        for p in 0..kdim {
            let mut acc = Neumaier::default();
            let mut abs = 0.0f64;
            for &v in a.col(p) {
                acc.add(v);
                abs += v.abs();
            }
            sa[p] = acc.value();
            sa_abs[p] = abs;
        }
        if mode == AbftMode::Correct {
            snapshot = c.as_slice().to_vec();
        }
        report.checksum_flops += (5 * m * ncols + 5 * m * kdim) as f64;
    }

    match pool {
        Some(p) => crate::dgemm::blocked_parallel(alpha, a, b, beta, c, block, p),
        None => crate::dgemm::blocked(alpha, a, b, beta, c, block),
    }

    if let Some((word, bit)) = inject {
        flip_bit(c, word, bit);
    }

    if protect {
        report.checksum_flops += (ncols * (4 * kdim + 4 * m + 4)) as f64;
        for j in 0..ncols {
            let bcol = b.col(j);
            let mut pred = Neumaier::seeded(beta * s0[j]);
            let mut dot_abs = 0.0f64;
            for p in 0..kdim {
                pred.add(alpha * (sa[p] * bcol[p]));
                dot_abs += sa_abs[p] * bcol[p].abs();
            }
            let abs_scale = beta.abs() * s0_abs[j] + alpha.abs() * dot_abs;
            let tol = column_tolerance(kdim, abs_scale);
            let actual = full_col_sum(c, j);
            let delta = (actual - pred.value()).abs();
            // NaN counts as a mismatch, same as the factorization check.
            if delta > tol || delta.is_nan() {
                report.mismatches += 1;
                if mode == AbftMode::Correct {
                    repair_gemm_column(alpha, a, b, beta, c, &snapshot, j);
                    report.recompute_flops += (2 * kdim * m + 4 * m) as f64;
                    let again = (full_col_sum(c, j) - pred.value()).abs();
                    if again <= tol {
                        report.columns_recomputed += 1;
                    }
                }
            }
        }
    }
    report
}

fn full_col_sum(c: &Matrix, j: usize) -> f64 {
    let mut acc = Neumaier::default();
    for &v in c.col(j) {
        acc.add(v);
    }
    acc.value()
}

/// Rebuilds `C`'s column `j` by the blocked kernel's per-element chain:
/// `beta`-scale the snapshot, then accumulate `a·(alpha·b)` with `k`
/// ascending — one rounding per multiply, one per add, exactly as the
/// packed kernel retires them.
fn repair_gemm_column(
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    snapshot: &[f64],
    j: usize,
) {
    let (m, kdim) = (a.rows(), a.cols());
    let col = c.col_mut(j);
    col.copy_from_slice(&snapshot[j * m..(j + 1) * m]);
    if beta != 1.0 {
        for v in col.iter_mut() {
            *v *= beta;
        }
    }
    let a_data = a.as_slice();
    let bcol = b.col(j);
    for p in 0..kdim {
        let f = alpha * bcol[p];
        let acol = &a_data[p * m..(p + 1) * m];
        for (cv, &av) in col.iter_mut().zip(acol) {
            *cv += av * f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgemm;
    use crate::lu::{hpl_flops, hpl_residual, HPL_RESIDUAL_THRESHOLD};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn system(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(n, n, &mut rng);
        let b = Matrix::random(n, 1, &mut rng);
        (a, b.as_slice().to_vec())
    }

    #[test]
    fn clean_protected_factor_is_bitwise_the_baseline() {
        let (a, _) = system(96, 7);
        let base = LuFactorization::factor(a.clone(), 24).unwrap();
        for mode in [AbftMode::Off, AbftMode::Detect, AbftMode::Correct] {
            let (lu, report) = factor_protected(a.clone(), 24, mode, None, None).unwrap();
            assert_eq!(lu.packed().as_slice(), base.packed().as_slice(), "{mode:?}");
            assert_eq!(lu.pivots(), base.pivots());
            assert_eq!(report.mismatches, 0);
        }
        let pool = WorkerPool::new(3);
        let (lu, _) = factor_protected(a, 24, AbftMode::Detect, Some(&pool), None).unwrap();
        assert_eq!(lu.packed().as_slice(), base.packed().as_slice());
    }

    #[test]
    fn trailing_flip_is_detected_and_corrected_bitwise() {
        let (a, b) = system(96, 11);
        let clean = LuFactorization::factor(a.clone(), 24).unwrap();
        // Panel 0, a word deep inside the trailing block, exponent bit.
        let inject = SdcInjection {
            panel: 0,
            word: 60 * 96 + 70,
            bit: 62,
        };
        let (_, detect) =
            factor_protected(a.clone(), 24, AbftMode::Detect, None, Some(inject)).unwrap();
        assert!(detect.mismatches >= 1, "flip must trip the panel checksum");
        assert_eq!(detect.columns_recomputed, 0);

        let (lu, correct) =
            factor_protected(a.clone(), 24, AbftMode::Correct, None, Some(inject)).unwrap();
        assert_eq!(correct.columns_recomputed, correct.mismatches);
        assert_eq!(
            lu.packed().as_slice(),
            clean.packed().as_slice(),
            "repair must reproduce the clean factors bit-for-bit"
        );
        let x = lu.solve(&b);
        assert!(hpl_residual(&a, &x, &b) < HPL_RESIDUAL_THRESHOLD);
    }

    #[test]
    fn off_mode_rides_the_flip_to_a_failed_residual() {
        let (a, b) = system(96, 11);
        let inject = SdcInjection {
            panel: 0,
            word: 60 * 96 + 70,
            bit: 62,
        };
        let (lu, report) =
            factor_protected(a.clone(), 24, AbftMode::Off, None, Some(inject)).unwrap();
        assert_eq!(report.panels_verified, 0);
        let x = lu.solve(&b);
        assert!(
            hpl_residual(&a, &x, &b) >= HPL_RESIDUAL_THRESHOLD,
            "an exponent flip in the live panel must poison the residual"
        );
    }

    #[test]
    fn factored_region_flip_escapes_panel_checks_but_not_the_residual() {
        let (a, b) = system(96, 13);
        // Flip after the *last* panel: lands in finished factors, where no
        // further panel verification runs.
        let inject = SdcInjection {
            panel: 3,
            word: 10 * 96 + 50,
            bit: 51,
        };
        let (lu, report) =
            factor_protected(a.clone(), 24, AbftMode::Detect, None, Some(inject)).unwrap();
        assert_eq!(report.mismatches, 0, "no trailing block left to check");
        let x = lu.solve(&b);
        let residual = hpl_residual(&a, &x, &b);
        assert!(
            residual >= HPL_RESIDUAL_THRESHOLD || residual.is_nan(),
            "a top-mantissa flip in L must fail the residual, got {residual}"
        );
    }

    #[test]
    fn protected_parallel_detects_and_repairs_like_serial() {
        let (a, _) = system(128, 17);
        let clean = LuFactorization::factor(a.clone(), 32).unwrap();
        let pool = WorkerPool::new(4);
        let inject = SdcInjection {
            panel: 1,
            word: 90 * 128 + 100,
            bit: 61,
        };
        let (lu, report) =
            factor_protected(a, 32, AbftMode::Correct, Some(&pool), Some(inject)).unwrap();
        assert!(report.mismatches >= 1);
        assert_eq!(report.columns_recomputed, report.mismatches);
        assert_eq!(lu.packed().as_slice(), clean.packed().as_slice());
    }

    #[test]
    fn checksum_overhead_stays_modest() {
        let (a, _) = system(256, 19);
        let (_, report) = factor_protected(a, 64, AbftMode::Detect, None, None).unwrap();
        let overhead = report.overhead_vs(hpl_flops(256));
        assert!(overhead > 0.0 && overhead < 0.15, "overhead {overhead}");
    }

    #[test]
    fn checked_dgemm_detects_and_repairs_a_flip() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = Matrix::random(64, 48, &mut rng);
        let b = Matrix::random(48, 56, &mut rng);
        let c0 = Matrix::random(64, 56, &mut rng);

        let mut reference = c0.clone();
        dgemm::blocked(1.5, &a, &b, 0.5, &mut reference, 16);

        let mut clean = c0.clone();
        let report = checked_multiply(
            1.5,
            &a,
            &b,
            0.5,
            &mut clean,
            16,
            AbftMode::Detect,
            None,
            None,
        );
        assert_eq!(report.mismatches, 0);
        assert_eq!(clean.as_slice(), reference.as_slice());

        let mut poisoned = c0.clone();
        let report = checked_multiply(
            1.5,
            &a,
            &b,
            0.5,
            &mut poisoned,
            16,
            AbftMode::Correct,
            None,
            Some((17 * 64 + 30, 62)),
        );
        assert_eq!(report.mismatches, 1);
        assert_eq!(report.columns_recomputed, 1);
        assert_eq!(
            poisoned.as_slice(),
            reference.as_slice(),
            "repair must reproduce the blocked kernel bit-for-bit"
        );
        assert!(report.recompute_flops > 0.0);
    }

    #[test]
    fn report_merges_and_rates() {
        let mut a = AbftReport {
            panels_verified: 1,
            mismatches: 1,
            columns_recomputed: 1,
            checksum_flops: 50.0,
            recompute_flops: 10.0,
        };
        let b = AbftReport {
            panels_verified: 2,
            checksum_flops: 40.0,
            ..AbftReport::default()
        };
        a.merge(&b);
        assert_eq!(a.panels_verified, 3);
        assert!((a.overhead_vs(1000.0) - 0.1).abs() < 1e-12);
        assert_eq!(AbftReport::default().overhead_vs(0.0), 0.0);
    }
}
