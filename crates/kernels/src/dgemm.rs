//! Double-precision general matrix multiply.
//!
//! Three implementations share one contract (`C ← alpha·A·B + beta·C`):
//! a [`naive`] triple loop (the baseline the ablation bench compares
//! against), a cache-[`blocked`] version used by the blocked LU
//! factorisation, and [`blocked_parallel`], which runs the same packed
//! block algorithm with the column tiles fanned out over a
//! [`WorkerPool`].
//!
//! # Packing
//!
//! The blocked paths pack each `A` sub-block (`ii..i_end` × `pp..p_end`)
//! into a contiguous scratch buffer once per block step, so the
//! register-blocked microkernel streams unit-stride data regardless of
//! the parent matrix's leading dimension. Scratch buffers are recycled
//! through a small `parking_lot`-guarded arena instead of being
//! reallocated every block step.
//!
//! # Determinism
//!
//! Every element `C[i, j]` is owned by exactly one column tile, and the
//! per-element update order (outer `pp` blocks ascending, `p` ascending
//! within a block) is identical in the serial and parallel paths — so
//! [`blocked`] and [`blocked_parallel`] produce bit-identical results at
//! any worker count.

use crate::matrix::Matrix;
use crate::pool::WorkerPool;

use parking_lot::Mutex;

/// Default blocking factor for [`blocked`]; sized so three blocks fit in
/// the FU740's 2 MiB L2 (3 · 64² · 8 B ≈ 96 KiB leaves generous margin for
/// other hosts too).
pub const DEFAULT_BLOCK: usize = 64;

/// Columns the microkernel updates per register block: four packed-`A`
/// reloads amortised across four accumulating columns.
const COL_UNROLL: usize = 4;

/// Recycled pack buffers, shared process-wide. Entry point for every
/// packed kernel (DGEMM and the LU trailing update) so repeated block
/// steps reuse warm allocations.
static PACK_ARENA: Mutex<Vec<Vec<f64>>> = Mutex::new(Vec::new());

/// Takes a scratch buffer of at least `len` elements from the arena
/// (contents unspecified).
pub(crate) fn take_scratch(len: usize) -> Vec<f64> {
    let mut buf = PACK_ARENA.lock().pop().unwrap_or_default();
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    buf
}

/// Returns a scratch buffer to the arena for reuse.
pub(crate) fn put_scratch(buf: Vec<f64>) {
    const MAX_POOLED: usize = 64;
    let mut arena = PACK_ARENA.lock();
    if arena.len() < MAX_POOLED {
        arena.push(buf);
    }
}

/// Naive `C ← alpha·A·B + beta·C` (jik loops, no blocking).
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn naive(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions differ");
    assert_eq!(a.rows(), c.rows(), "output rows differ");
    assert_eq!(b.cols(), c.cols(), "output cols differ");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[(i, p)] * b[(p, j)];
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

/// Packs the `rows`×`cols` sub-block of column-major `src` starting at
/// `(r0, c0)` into the head of `dst`, column-major and contiguous.
pub(crate) fn pack_block(
    dst: &mut [f64],
    src: &[f64],
    ld: usize,
    r0: usize,
    rows: usize,
    c0: usize,
    cols: usize,
) {
    for c in 0..cols {
        let src_col = &src[(c0 + c) * ld + r0..(c0 + c) * ld + r0 + rows];
        dst[c * rows..(c + 1) * rows].copy_from_slice(src_col);
    }
}

/// Cache-blocked, packed `C ← alpha·A·B + beta·C`.
///
/// `A` sub-blocks are packed into contiguous buffers once per block step
/// and streamed against `B` with a four-column register-blocked kernel.
/// The mutable borrow of `C`'s backing slice is taken once, outside the
/// block loops.
///
/// # Panics
///
/// Panics on dimension mismatch or a zero block size.
pub fn blocked(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix, block: usize) {
    check_dims(a, b, c, block);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    // Hoisted: one borrow of C's storage for the whole multiply.
    let c_data = c.as_mut_slice();
    scale(c_data, beta);
    gemm_cols(alpha, a.as_slice(), b.as_slice(), c_data, m, k, 0, n, block);
}

/// Minimum retired FLOPs each worker must receive before
/// [`blocked_parallel`] engages the pool. Below this the fork/join
/// latency and the per-worker re-packing of `A` cost more than the tile
/// compute they buy back: calibrated on the n=384 square case, where the
/// fan-out ran 0.88–0.93x of serial, while n=512 (≈67 MFLOP per worker
/// at four workers) breaks even or better.
pub const MIN_PARALLEL_FLOPS_PER_WORKER: f64 = 48e6;

/// [`blocked`] with the column tiles of `C` fanned out over `pool`.
///
/// Bit-identical to the serial path at any worker count: tiles are
/// disjoint contiguous column ranges and each tile runs the identical
/// packed kernel. Problems too small to amortise the fan-out (per-worker
/// work under [`MIN_PARALLEL_FLOPS_PER_WORKER`]) run the serial kernel
/// directly — same result, none of the regression.
///
/// # Panics
///
/// Panics on dimension mismatch or a zero block size.
pub fn blocked_parallel(
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    block: usize,
    pool: &WorkerPool,
) {
    check_dims(a, b, c, block);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let c_data = c.as_mut_slice();
    scale(c_data, beta);
    let tiles = pool.even_chunks(n);
    let per_worker_flops = 2.0 * m as f64 * k as f64 * n as f64 / tiles.len().max(1) as f64;
    if tiles.len() <= 1 || per_worker_flops < MIN_PARALLEL_FLOPS_PER_WORKER {
        gemm_cols(alpha, a.as_slice(), b.as_slice(), c_data, m, k, 0, n, block);
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    pool.scope(|scope| {
        let mut rest = c_data;
        let mut offset = 0;
        for &(j0, j1) in &tiles {
            let (tile, tail) = rest.split_at_mut((j1 - offset) * m);
            rest = tail;
            offset = j1;
            scope.spawn(move || {
                gemm_cols(alpha, a_data, b_data, tile, m, k, j0, j1, block);
            });
        }
    });
}

fn check_dims(a: &Matrix, b: &Matrix, c: &Matrix, block: usize) {
    assert!(block > 0, "block size must be positive");
    assert_eq!(a.cols(), b.rows(), "inner dimensions differ");
    assert_eq!(a.rows(), c.rows(), "output rows differ");
    assert_eq!(b.cols(), c.cols(), "output cols differ");
}

fn scale(c_data: &mut [f64], beta: f64) {
    if beta != 1.0 {
        for v in c_data {
            *v *= beta;
        }
    }
}

/// The packed block kernel over columns `j0..j1` of `C`. `c_cols` holds
/// exactly those columns (contiguous, leading dimension `m`); `j0`/`j1`
/// index into `B`'s columns.
#[allow(clippy::too_many_arguments)]
fn gemm_cols(
    alpha: f64,
    a_data: &[f64],
    b_data: &[f64],
    c_cols: &mut [f64],
    m: usize,
    k: usize,
    j0: usize,
    j1: usize,
    block: usize,
) {
    debug_assert_eq!(c_cols.len(), (j1 - j0) * m);
    let ldb = k;
    let mut a_pack = take_scratch(block * block);
    let mut f_pack = take_scratch(COL_UNROLL * block);
    for pp in (0..k).step_by(block) {
        let p_end = (pp + block).min(k);
        let kb = p_end - pp;
        for ii in (0..m).step_by(block) {
            let i_end = (ii + block).min(m);
            let rows = i_end - ii;
            // Pack A(ii..i_end, pp..p_end) once per block step.
            pack_block(&mut a_pack, a_data, m, ii, rows, pp, kb);
            let mut j = j0;
            while j < j1 {
                let jcols = COL_UNROLL.min(j1 - j);
                // Multipliers for this column group: f[q·kb + p] = alpha·B[pp+p, j+q].
                for q in 0..jcols {
                    let b_col = &b_data[(j + q) * ldb + pp..(j + q) * ldb + p_end];
                    for (fq, &bv) in f_pack[q * kb..(q + 1) * kb].iter_mut().zip(b_col) {
                        *fq = alpha * bv;
                    }
                }
                let base = (j - j0) * m;
                let cols_region = &mut c_cols[base..base + jcols * m];
                if jcols == COL_UNROLL {
                    // Split the four columns into disjoint row windows.
                    let (c0, rest) = cols_region.split_at_mut(m);
                    let (c1, rest) = rest.split_at_mut(m);
                    let (c2, c3) = rest.split_at_mut(m);
                    accum_group(
                        &a_pack[..rows * kb],
                        rows,
                        rows,
                        kb,
                        &f_pack[..COL_UNROLL * kb],
                        &mut c0[ii..i_end],
                        &mut c1[ii..i_end],
                        &mut c2[ii..i_end],
                        &mut c3[ii..i_end],
                    );
                } else {
                    for (q, c_col) in cols_region.chunks_exact_mut(m).enumerate().take(jcols) {
                        accum_col(
                            &a_pack[..rows * kb],
                            rows,
                            rows,
                            kb,
                            &f_pack[q * kb..(q + 1) * kb],
                            &mut c_col[ii..i_end],
                        );
                    }
                }
                j += jcols;
            }
        }
    }
    put_scratch(f_pack);
    put_scratch(a_pack);
}

/// Rows each register tile covers. 4 columns × 16 rows of `f64`
/// accumulators give eight independent AVX-512 add chains (sixteen on
/// AVX2) — enough to hide the floating-point add latency — while leaving
/// registers for the streamed `A` column and broadcasts.
const ROW_TILE: usize = 16;

/// The register-tiled accumulate kernel for a four-column group:
/// `c_q[i] ← ((c_q[i] + a[i,0]·f_q[0]) + a[i,1]·f_q[1]) + …` with the
/// chain held in registers, so `C` is loaded and stored once per call
/// instead of once per `p`.
///
/// The per-element operation sequence (`p` ascending, multiply then add,
/// each individually rounded — `#[target_feature]` widens the vectors
/// but never licenses FMA contraction) is identical to a scalar
/// `for p { c[i] += f[p]·a[i,p] }` loop, which is what makes every
/// dispatch target below bit-identical to the others and to the serial
/// reference kernels.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn accum_group_body(
    a_pack: &[f64],
    ld: usize,
    rows: usize,
    kb: usize,
    f: &[f64],
    c0: &mut [f64],
    c1: &mut [f64],
    c2: &mut [f64],
    c3: &mut [f64],
) {
    assert!(rows <= ld && a_pack.len() >= (kb - 1) * ld + rows && f.len() >= 4 * kb);
    let (c0, c1) = (&mut c0[..rows], &mut c1[..rows]);
    let (c2, c3) = (&mut c2[..rows], &mut c3[..rows]);
    let (f0, f1) = (&f[..kb], &f[kb..2 * kb]);
    let (f2, f3) = (&f[2 * kb..3 * kb], &f[3 * kb..4 * kb]);
    let mut i0 = 0;
    while i0 + ROW_TILE <= rows {
        let mut acc0 = [0.0; ROW_TILE];
        let mut acc1 = [0.0; ROW_TILE];
        let mut acc2 = [0.0; ROW_TILE];
        let mut acc3 = [0.0; ROW_TILE];
        acc0.copy_from_slice(&c0[i0..i0 + ROW_TILE]);
        acc1.copy_from_slice(&c1[i0..i0 + ROW_TILE]);
        acc2.copy_from_slice(&c2[i0..i0 + ROW_TILE]);
        acc3.copy_from_slice(&c3[i0..i0 + ROW_TILE]);
        for p in 0..kb {
            let a_col = &a_pack[p * ld + i0..p * ld + i0 + ROW_TILE];
            let (v0, v1, v2, v3) = (f0[p], f1[p], f2[p], f3[p]);
            for r in 0..ROW_TILE {
                let av = a_col[r];
                acc0[r] += v0 * av;
                acc1[r] += v1 * av;
                acc2[r] += v2 * av;
                acc3[r] += v3 * av;
            }
        }
        c0[i0..i0 + ROW_TILE].copy_from_slice(&acc0);
        c1[i0..i0 + ROW_TILE].copy_from_slice(&acc1);
        c2[i0..i0 + ROW_TILE].copy_from_slice(&acc2);
        c3[i0..i0 + ROW_TILE].copy_from_slice(&acc3);
        i0 += ROW_TILE;
    }
    for i in i0..rows {
        let (mut s0, mut s1) = (c0[i], c1[i]);
        let (mut s2, mut s3) = (c2[i], c3[i]);
        for p in 0..kb {
            let av = a_pack[p * ld + i];
            s0 += f0[p] * av;
            s1 += f1[p] * av;
            s2 += f2[p] * av;
            s3 += f3[p] * av;
        }
        c0[i] = s0;
        c1[i] = s1;
        c2[i] = s2;
        c3[i] = s3;
    }
}

/// `c[i] += f·a[i]` — the streamed axpy behind the shared panel rank-1
/// update (see `lu::factor_panel`).
#[inline(always)]
fn axpy_body(c: &mut [f64], a: &[f64], f: f64) {
    let n = c.len().min(a.len());
    let (c, a) = (&mut c[..n], &a[..n]);
    for i in 0..n {
        c[i] += f * a[i];
    }
}

/// Single-column variant of [`accum_group_body`] for group remainders.
#[inline(always)]
fn accum_col_body(a_pack: &[f64], ld: usize, rows: usize, kb: usize, f: &[f64], c: &mut [f64]) {
    assert!(rows <= ld && a_pack.len() >= (kb - 1) * ld + rows && f.len() >= kb);
    let c = &mut c[..rows];
    let f = &f[..kb];
    let mut i0 = 0;
    while i0 + ROW_TILE <= rows {
        let mut acc = [0.0; ROW_TILE];
        acc.copy_from_slice(&c[i0..i0 + ROW_TILE]);
        for (p, &fp) in f.iter().enumerate() {
            let a_col = &a_pack[p * ld + i0..p * ld + i0 + ROW_TILE];
            for r in 0..ROW_TILE {
                acc[r] += fp * a_col[r];
            }
        }
        c[i0..i0 + ROW_TILE].copy_from_slice(&acc);
        i0 += ROW_TILE;
    }
    for i in i0..rows {
        let mut s = c[i];
        for (p, &fp) in f.iter().enumerate() {
            s += fp * a_pack[p * ld + i];
        }
        c[i] = s;
    }
}

#[cfg(target_arch = "x86_64")]
mod simd {
    //! Wider-vector instantiations of the accumulate kernels.
    //!
    //! `#[target_feature]` re-compiles the identical Rust body with wider
    //! registers; Rust never enables floating-point contraction, so the
    //! multiply and add stay separately rounded and the results are
    //! bit-identical to the scalar build (see `accum_group_body`).
    use super::{accum_col_body, accum_group_body, axpy_body};

    macro_rules! instantiate {
        ($col:ident, $axpy:ident, $feat:literal) => {
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $col(
                a_pack: &[f64],
                ld: usize,
                rows: usize,
                kb: usize,
                f: &[f64],
                c: &mut [f64],
            ) {
                accum_col_body(a_pack, ld, rows, kb, f, c);
            }

            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $axpy(c: &mut [f64], a: &[f64], f: f64) {
                axpy_body(c, a, f);
            }
        };
    }

    instantiate!(accum_col_avx512, axpy_avx512, "avx512f");
    instantiate!(accum_col_avx2, axpy_avx2, "avx2");

    /// Auto-vectorised group kernel for AVX2-only hosts.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx2` is available.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn accum_group_avx2(
        a_pack: &[f64],
        ld: usize,
        rows: usize,
        kb: usize,
        f: &[f64],
        c0: &mut [f64],
        c1: &mut [f64],
        c2: &mut [f64],
        c3: &mut [f64],
    ) {
        accum_group_body(a_pack, ld, rows, kb, f, c0, c1, c2, c3);
    }

    /// [`accum_group_body`] with explicit 512-bit intrinsics. LLVM's
    /// `prefer-vector-width=256` default keeps the auto-vectorised
    /// `avx512f` instantiation on 256-bit registers; spelling out the
    /// `vmulpd`/`vaddpd` chain doubles the width. Per lane the operation
    /// sequence is unchanged (`p` ascending, multiply then add, each
    /// individually rounded), so results stay bit-identical to the
    /// scalar body.
    ///
    /// # Safety
    ///
    /// Caller must have verified `avx512f` is available.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn accum_group_zmm(
        a_pack: &[f64],
        ld: usize,
        rows: usize,
        kb: usize,
        f: &[f64],
        c0: &mut [f64],
        c1: &mut [f64],
        c2: &mut [f64],
        c3: &mut [f64],
    ) {
        use std::arch::x86_64::*;
        const W: usize = 8;
        assert!(rows <= ld && a_pack.len() >= (kb - 1) * ld + rows && f.len() >= 4 * kb);
        let (c0, c1) = (&mut c0[..rows], &mut c1[..rows]);
        let (c2, c3) = (&mut c2[..rows], &mut c3[..rows]);
        let mut i0 = 0;
        while i0 + 2 * W <= rows {
            // 4 columns × 16 rows = 8 zmm accumulators.
            let mut acc: [[__m512d; 2]; 4] = [[_mm512_setzero_pd(); 2]; 4];
            for (q, cq) in [&*c0, &*c1, &*c2, &*c3].into_iter().enumerate() {
                acc[q][0] = _mm512_loadu_pd(cq.as_ptr().add(i0));
                acc[q][1] = _mm512_loadu_pd(cq.as_ptr().add(i0 + W));
            }
            for p in 0..kb {
                let ap = a_pack.as_ptr().add(p * ld + i0);
                let a0 = _mm512_loadu_pd(ap);
                let a1 = _mm512_loadu_pd(ap.add(W));
                for (q, accq) in acc.iter_mut().enumerate() {
                    let fq = _mm512_set1_pd(*f.get_unchecked(q * kb + p));
                    accq[0] = _mm512_add_pd(accq[0], _mm512_mul_pd(a0, fq));
                    accq[1] = _mm512_add_pd(accq[1], _mm512_mul_pd(a1, fq));
                }
            }
            for (q, cq) in [&mut *c0, &mut *c1, &mut *c2, &mut *c3]
                .into_iter()
                .enumerate()
            {
                _mm512_storeu_pd(cq.as_mut_ptr().add(i0), acc[q][0]);
                _mm512_storeu_pd(cq.as_mut_ptr().add(i0 + W), acc[q][1]);
            }
            i0 += 2 * W;
        }
        // Remainder rows: the scalar chain (same per-element sequence).
        for i in i0..rows {
            let (mut s0, mut s1) = (c0[i], c1[i]);
            let (mut s2, mut s3) = (c2[i], c3[i]);
            for p in 0..kb {
                let av = a_pack[p * ld + i];
                s0 += f[p] * av;
                s1 += f[kb + p] * av;
                s2 += f[2 * kb + p] * av;
                s3 += f[3 * kb + p] * av;
            }
            c0[i] = s0;
            c1[i] = s1;
            c2[i] = s2;
            c3[i] = s3;
        }
    }
}

/// Runtime-dispatched [`accum_group_body`] (AVX-512 → AVX2 → portable).
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn accum_group(
    a_pack: &[f64],
    ld: usize,
    rows: usize,
    kb: usize,
    f: &[f64],
    c0: &mut [f64],
    c1: &mut [f64],
    c2: &mut [f64],
    c3: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: the feature was just detected on this CPU.
            return unsafe { simd::accum_group_zmm(a_pack, ld, rows, kb, f, c0, c1, c2, c3) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the feature was just detected on this CPU.
            return unsafe { simd::accum_group_avx2(a_pack, ld, rows, kb, f, c0, c1, c2, c3) };
        }
    }
    accum_group_body(a_pack, ld, rows, kb, f, c0, c1, c2, c3);
}

/// Runtime-dispatched [`accum_col_body`] (AVX-512 → AVX2 → portable).
#[inline]
pub(crate) fn accum_col(
    a_pack: &[f64],
    ld: usize,
    rows: usize,
    kb: usize,
    f: &[f64],
    c: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: the feature was just detected on this CPU.
            return unsafe { simd::accum_col_avx512(a_pack, ld, rows, kb, f, c) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the feature was just detected on this CPU.
            return unsafe { simd::accum_col_avx2(a_pack, ld, rows, kb, f, c) };
        }
    }
    accum_col_body(a_pack, ld, rows, kb, f, c);
}

/// Runtime-dispatched `c += f·a` (AVX-512 → AVX2 → portable). Used by the
/// panel factorisation, which is shared verbatim by the serial and
/// threaded LU paths.
#[inline]
pub(crate) fn axpy(c: &mut [f64], a: &[f64], f: f64) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: the feature was just detected on this CPU.
            return unsafe { simd::axpy_avx512(c, a, f) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the feature was just detected on this CPU.
            return unsafe { simd::axpy_avx2(c, a, f) };
        }
    }
    axpy_body(c, a, f);
}

/// FLOPs performed by a `m×k · k×n` GEMM (multiply + add per element).
pub fn flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.max_abs_diff(b) < tol
    }

    #[test]
    fn blocked_matches_naive_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(7);
        for (m, k, n) in [(5, 7, 3), (16, 16, 16), (33, 65, 17), (128, 64, 96)] {
            let a = Matrix::random(m, k, &mut rng);
            let b = Matrix::random(k, n, &mut rng);
            let mut c1 = Matrix::random(m, n, &mut rng);
            let mut c2 = c1.clone();
            naive(1.5, &a, &b, 0.5, &mut c1);
            blocked(1.5, &a, &b, 0.5, &mut c2, 32);
            assert!(close(&c1, &c2, 1e-12), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(21);
        for threads in [1, 2, 3, 5, 8] {
            let pool = WorkerPool::new(threads);
            for (m, k, n) in [(5, 7, 3), (33, 65, 17), (96, 64, 80)] {
                let a = Matrix::random(m, k, &mut rng);
                let b = Matrix::random(k, n, &mut rng);
                let mut c1 = Matrix::random(m, n, &mut rng);
                let mut c2 = c1.clone();
                blocked(1.25, &a, &b, 0.75, &mut c1, 32);
                blocked_parallel(1.25, &a, &b, 0.75, &mut c2, 32, &pool);
                assert_eq!(
                    c1.as_slice(),
                    c2.as_slice(),
                    "bitwise divergence at {m}x{k}x{n} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Matrix::random(10, 10, &mut rng);
        let i = Matrix::identity(10);
        let mut c = Matrix::zeros(10, 10);
        blocked(1.0, &a, &i, 0.0, &mut c, DEFAULT_BLOCK);
        assert!(close(&a, &c, 1e-15));
    }

    #[test]
    fn beta_scales_existing_contents() {
        let a = Matrix::zeros(4, 4);
        let b = Matrix::zeros(4, 4);
        let mut c = Matrix::from_fn(4, 4, |_, _| 2.0);
        blocked(1.0, &a, &b, 0.25, &mut c, 2);
        assert!(c.as_slice().iter().all(|&v| (v - 0.5).abs() < 1e-15));
    }

    #[test]
    fn flops_formula() {
        assert_eq!(flops(10, 20, 30), 12_000.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut c = Matrix::zeros(2, 3);
        blocked(1.0, &a, &b, 0.0, &mut c, 2);
    }

    #[test]
    fn block_size_larger_than_matrix_is_fine() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::random(6, 6, &mut rng);
        let b = Matrix::random(6, 6, &mut rng);
        let mut c1 = Matrix::zeros(6, 6);
        let mut c2 = Matrix::zeros(6, 6);
        naive(1.0, &a, &b, 0.0, &mut c1);
        blocked(1.0, &a, &b, 0.0, &mut c2, 999);
        assert!(close(&c1, &c2, 1e-13));
    }

    #[test]
    fn scratch_arena_recycles_buffers() {
        let buf = take_scratch(128);
        assert!(buf.len() >= 128);
        put_scratch(buf);
        let again = take_scratch(64);
        assert!(again.len() >= 64);
        put_scratch(again);
    }
}
