//! Double-precision general matrix multiply.
//!
//! Two implementations share one contract (`C ← alpha·A·B + beta·C`): a
//! [`naive`] triple loop (the baseline the ablation bench compares against)
//! and a cache-[`blocked`] version used by the blocked LU factorisation.

use crate::matrix::Matrix;

/// Default blocking factor for [`blocked`]; sized so three blocks fit in
/// the FU740's 2 MiB L2 (3 · 64² · 8 B ≈ 96 KiB leaves generous margin for
/// other hosts too).
pub const DEFAULT_BLOCK: usize = 64;

/// Naive `C ← alpha·A·B + beta·C` (jik loops, no blocking).
///
/// # Panics
///
/// Panics on dimension mismatch.
pub fn naive(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions differ");
    assert_eq!(a.rows(), c.rows(), "output rows differ");
    assert_eq!(b.cols(), c.cols(), "output cols differ");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for j in 0..n {
        for i in 0..m {
            let mut acc = 0.0;
            for p in 0..k {
                acc += a[(i, p)] * b[(p, j)];
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

/// Cache-blocked `C ← alpha·A·B + beta·C`.
///
/// Panels of `A` are streamed against blocks of `B` with a column-major
/// inner kernel that vectorises well.
///
/// # Panics
///
/// Panics on dimension mismatch or a zero block size.
pub fn blocked(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix, block: usize) {
    assert!(block > 0, "block size must be positive");
    assert_eq!(a.cols(), b.rows(), "inner dimensions differ");
    assert_eq!(a.rows(), c.rows(), "output rows differ");
    assert_eq!(b.cols(), c.cols(), "output cols differ");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());

    if beta != 1.0 {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }

    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let lda = m;
    let ldb = k;
    let ldc = m;

    for jj in (0..n).step_by(block) {
        let j_end = (jj + block).min(n);
        for pp in (0..k).step_by(block) {
            let p_end = (pp + block).min(k);
            for ii in (0..m).step_by(block) {
                let i_end = (ii + block).min(m);
                // Micro-kernel: for each (p, j), axpy column of A into C.
                for j in jj..j_end {
                    let c_col_off = j * ldc;
                    for p in pp..p_end {
                        let factor = alpha * b_data[j * ldb + p];
                        if factor == 0.0 {
                            continue;
                        }
                        let a_col_off = p * lda;
                        let c_col = &mut c.as_mut_slice()[c_col_off + ii..c_col_off + i_end];
                        let a_col = &a_data[a_col_off + ii..a_col_off + i_end];
                        for (cv, &av) in c_col.iter_mut().zip(a_col) {
                            *cv += factor * av;
                        }
                    }
                }
            }
        }
    }
}

/// FLOPs performed by a `m×k · k×n` GEMM (multiply + add per element).
pub fn flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.max_abs_diff(b) < tol
    }

    #[test]
    fn blocked_matches_naive_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(7);
        for (m, k, n) in [(5, 7, 3), (16, 16, 16), (33, 65, 17), (128, 64, 96)] {
            let a = Matrix::random(m, k, &mut rng);
            let b = Matrix::random(k, n, &mut rng);
            let mut c1 = Matrix::random(m, n, &mut rng);
            let mut c2 = c1.clone();
            naive(1.5, &a, &b, 0.5, &mut c1);
            blocked(1.5, &a, &b, 0.5, &mut c2, 32);
            assert!(close(&c1, &c2, 1e-12), "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Matrix::random(10, 10, &mut rng);
        let i = Matrix::identity(10);
        let mut c = Matrix::zeros(10, 10);
        blocked(1.0, &a, &i, 0.0, &mut c, DEFAULT_BLOCK);
        assert!(close(&a, &c, 1e-15));
    }

    #[test]
    fn beta_scales_existing_contents() {
        let a = Matrix::zeros(4, 4);
        let b = Matrix::zeros(4, 4);
        let mut c = Matrix::from_fn(4, 4, |_, _| 2.0);
        blocked(1.0, &a, &b, 0.25, &mut c, 2);
        assert!(c.as_slice().iter().all(|&v| (v - 0.5).abs() < 1e-15));
    }

    #[test]
    fn flops_formula() {
        assert_eq!(flops(10, 20, 30), 12_000.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut c = Matrix::zeros(2, 3);
        blocked(1.0, &a, &b, 0.0, &mut c, 2);
    }

    #[test]
    fn block_size_larger_than_matrix_is_fine() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Matrix::random(6, 6, &mut rng);
        let b = Matrix::random(6, 6, &mut rng);
        let mut c1 = Matrix::zeros(6, 6);
        let mut c2 = Matrix::zeros(6, 6);
        naive(1.0, &a, &b, 0.0, &mut c1);
        blocked(1.0, &a, &b, 0.0, &mut c2, 999);
        assert!(close(&c1, &c2, 1e-13));
    }
}
