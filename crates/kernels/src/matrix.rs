//! A column-major dense matrix of `f64`, the substrate for the HPL and
//! eigensolver kernels.
//!
//! Column-major layout matches LAPACK/HPL conventions, which keeps the
//! blocked LU factorisation readable next to its Fortran ancestors.

use std::fmt;
use std::ops::{Index, IndexMut};

use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// A dense column-major matrix.
///
/// # Examples
///
/// ```
/// use cimone_kernels::matrix::Matrix;
///
/// let a = Matrix::identity(3);
/// assert_eq!(a[(0, 0)], 1.0);
/// assert_eq!(a[(0, 1)], 0.0);
/// assert_eq!(a.norm_inf(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// Column-major storage: element (i, j) lives at `j * rows + i`.
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix with entries drawn uniformly from `[-0.5, 0.5)`,
    /// the distribution HPL uses for its test matrices.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let dist = Uniform::new(-0.5, 0.5);
        let data = (0..rows * cols).map(|_| dist.sample(rng)).collect();
        Matrix { rows, cols, data }
    }

    /// Builds a random symmetric matrix (for the eigensolver tests).
    pub fn random_symmetric<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut m = Matrix::random(n, n, rng);
        for j in 0..n {
            for i in 0..j {
                let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
                m[(i, j)] = avg;
                m[(j, i)] = avg;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The backing column-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The backing column-major slice, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One column as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.cols, "column {j} out of range ({})", self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// One column as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols, "column {j} out of range ({})", self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Two distinct columns, the first immutably and the second mutably —
    /// the borrow split the LU rank-1 panel update needs (`col b ← col b −
    /// col a · mult`).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of range.
    pub fn col_pair_mut(&mut self, a: usize, b: usize) -> (&[f64], &mut [f64]) {
        assert!(a != b, "col_pair_mut needs distinct columns");
        assert!(
            a < self.cols && b < self.cols,
            "column pair ({a}, {b}) out of range ({})",
            self.cols
        );
        let rows = self.rows;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * rows);
            (&lo[a * rows..a * rows + rows], &mut hi[..rows])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * rows);
            (&hi[..rows], &mut lo[b * rows..b * rows + rows])
        }
    }

    /// Matrix–vector product `A · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            let column = self.col(j);
            for (yi, &aij) in y.iter_mut().zip(column) {
                *yi += aij * xj;
            }
        }
        y
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        let mut row_sums = vec![0.0; self.rows];
        for j in 0..self.cols {
            for (i, &v) in self.col(j).iter().enumerate() {
                row_sums[i] += v.abs();
            }
        }
        row_sums.into_iter().fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Swaps rows `a` and `b` across all columns.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row swap out of range");
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(j * self.rows + a, j * self.rows + b);
        }
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[j * self.rows + i]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[j * self.rows + i]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        let show_cols = self.cols.min(6);
        for i in 0..show_rows {
            for j in 0..show_cols {
                write!(f, "{:>12.4e} ", self[(i, j)])?;
            }
            if show_cols < self.cols {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.rows {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

/// Infinity norm of a vector.
pub fn vec_norm_inf(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn storage_is_column_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        // Column 0 is rows (0,0) and (1,0).
        assert_eq!(m.col(0), &[0.0, 10.0]);
        assert_eq!(m.col(2), &[2.0, 12.0]);
    }

    #[test]
    fn matvec_matches_manual_computation() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + 2 * j + 1) as f64);
        // a = [1 3; 2 4] (column-major cols: [1,2], [3,4])
        let y = a.matvec(&[1.0, 1.0]);
        assert_eq!(y, vec![4.0, 6.0]);
    }

    #[test]
    fn identity_norms() {
        let i = Matrix::identity(5);
        assert_eq!(i.norm_inf(), 1.0);
        assert!((i.norm_frobenius() - 5f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn transpose_round_trips() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::random(4, 7, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn random_symmetric_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::random_symmetric(16, &mut rng);
        assert_eq!(a, a.transpose());
    }

    #[test]
    fn swap_rows_exchanges_whole_rows() {
        let mut m = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        m.swap_rows(0, 2);
        assert_eq!(m[(0, 0)], 20.0);
        assert_eq!(m[(2, 1)], 1.0);
    }

    #[test]
    fn random_entries_are_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::random(100, 100, &mut rng);
        let mean: f64 = m.as_slice().iter().sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.01);
        assert!(m.as_slice().iter().all(|v| (-0.5..0.5).contains(v)));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dimensions() {
        let a = Matrix::zeros(2, 3);
        let _ = a.matvec(&[1.0, 2.0]);
    }
}
