//! Symmetric eigensolver: Householder tridiagonalisation followed by
//! implicit-shift QL — the dense diagonalisation at the heart of
//! QuantumESPRESSO's LAX test driver.
//!
//! The implementation follows the classical EISPACK `tred2`/`tql2` pair,
//! rewritten for zero-based, column-major Rust.

use std::fmt;

use crate::matrix::Matrix;

/// Maximum QL iterations per eigenvalue before giving up.
const MAX_QL_ITERATIONS: usize = 50;

/// An eigendecomposition `A = Z · diag(λ) · Zᵀ` of a symmetric matrix,
/// with eigenvalues sorted ascending and eigenvectors in the columns of
/// `Z`.
///
/// # Examples
///
/// ```
/// use cimone_kernels::eig::EigenDecomposition;
/// use cimone_kernels::matrix::Matrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let a = Matrix::random_symmetric(12, &mut rng);
/// let eig = EigenDecomposition::compute(&a)?;
/// assert!(eig.reconstruction_error(&a) < 1e-10);
/// # Ok::<(), cimone_kernels::eig::EigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    values: Vec<f64>,
    vectors: Matrix,
}

/// Errors from the eigensolver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EigError {
    /// Input was not square.
    NotSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// Input was not symmetric within tolerance.
    NotSymmetric,
    /// The QL iteration failed to converge.
    NoConvergence {
        /// The eigenvalue index that stalled.
        index: usize,
    },
}

impl fmt::Display for EigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EigError::NotSquare { rows, cols } => {
                write!(f, "eigensolver requires a square matrix, got {rows}x{cols}")
            }
            EigError::NotSymmetric => write!(f, "matrix is not symmetric"),
            EigError::NoConvergence { index } => {
                write!(f, "QL iteration failed to converge for eigenvalue {index}")
            }
        }
    }
}

impl std::error::Error for EigError {}

impl EigenDecomposition {
    /// Diagonalises the symmetric matrix `a`.
    ///
    /// # Errors
    ///
    /// Fails for non-square or non-symmetric inputs, or if QL stalls (which
    /// does not happen for finite symmetric input in practice).
    pub fn compute(a: &Matrix) -> Result<Self, EigError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(EigError::NotSquare {
                rows: n,
                cols: a.cols(),
            });
        }
        let scale = a.norm_inf().max(1.0);
        for j in 0..n {
            for i in 0..j {
                if (a[(i, j)] - a[(j, i)]).abs() > 1e-10 * scale {
                    return Err(EigError::NotSymmetric);
                }
            }
        }
        if n == 0 {
            return Ok(EigenDecomposition {
                values: Vec::new(),
                vectors: Matrix::zeros(0, 0),
            });
        }

        let (mut z, mut d, mut e) = tred2(a);
        tql2(&mut d, &mut e, &mut z)?;

        // Sort ascending, permuting eigenvector columns alongside.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[i].total_cmp(&d[j]));
        let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let vectors = Matrix::from_fn(n, n, |i, j| z[(i, order[j])]);

        Ok(EigenDecomposition { values, vectors })
    }

    /// The eigenvalues, ascending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The eigenvectors (column `j` pairs with `values()[j]`).
    pub fn vectors(&self) -> &Matrix {
        &self.vectors
    }

    /// Max-norm error of `A·zⱼ − λⱼ·zⱼ` over all eigenpairs, scaled by
    /// `‖A‖∞`.
    pub fn residual(&self, a: &Matrix) -> f64 {
        let n = self.values.len();
        let norm = a.norm_inf().max(f64::MIN_POSITIVE);
        let mut worst = 0.0f64;
        for j in 0..n {
            let v = self.vectors.col(j);
            let av = a.matvec(v);
            for i in 0..n {
                worst = worst.max((av[i] - self.values[j] * v[i]).abs());
            }
        }
        worst / norm
    }

    /// Max-norm deviation of `ZᵀZ` from the identity.
    pub fn orthogonality_error(&self) -> f64 {
        let n = self.values.len();
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let dot: f64 = self
                    .vectors
                    .col(i)
                    .iter()
                    .zip(self.vectors.col(j))
                    .map(|(a, b)| a * b)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                worst = worst.max((dot - expected).abs());
            }
        }
        worst
    }

    /// Max-norm error of `Z·diag(λ)·Zᵀ − A`, scaled by `‖A‖∞`.
    pub fn reconstruction_error(&self, a: &Matrix) -> f64 {
        let n = self.values.len();
        let norm = a.norm_inf().max(f64::MIN_POSITIVE);
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += self.vectors[(i, k)] * self.values[k] * self.vectors[(j, k)];
                }
                worst = worst.max((acc - a[(i, j)]).abs());
            }
        }
        worst / norm
    }
}

/// Householder reduction to tridiagonal form with accumulated transform
/// (EISPACK `tred2`). Returns `(Z, d, e)` with the diagonal in `d` and the
/// subdiagonal in `e[1..]`.
fn tred2(a: &Matrix) -> (Matrix, Vec<f64>, Vec<f64>) {
    let n = a.rows();
    let mut z = a.clone();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    let v = z[(i, k)] / scale;
                    z[(i, k)] = v;
                    h += v * v;
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in j + 1..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let fj = z[(i, j)];
                    let gj = e[j] - hh * fj;
                    e[j] = gj;
                    for k in 0..=j {
                        let delta = fj * e[k] + gj * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;

    // Accumulate the transformation matrix.
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
    (z, d, e)
}

/// QL iteration with implicit shifts (EISPACK `tql2`), accumulating the
/// rotations into `z`.
fn tql2(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<(), EigError> {
    let n = d.len();
    if n == 0 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        'iteration: loop {
            // Look for a negligible subdiagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITERATIONS {
                return Err(EigError::NoConvergence { index: l });
            }
            // Implicit shift from the 2x2 leading block.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r } else { -r };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 && i > l {
                    // Underflow guard: recover and retry the sweep.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    continue 'iteration;
                }
                if r == 0.0 {
                    s = 0.0;
                    c = 1.0;
                } else {
                    s = f / r;
                    c = g / r;
                }
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector columns.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Approximate FLOP count of a full symmetric eigendecomposition of order
/// `n` with eigenvectors: `4/3·n³` for the tridiagonalisation plus `≈3·n³`
/// for accumulating QL rotations (the convention used when reporting the
/// LAX driver's GFLOP/s).
pub fn eig_flops(n: usize) -> f64 {
    let n = n as f64;
    (4.0 / 3.0 + 3.0) * n * n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn diagonal_matrix_eigenvalues_are_its_entries() {
        let mut a = Matrix::zeros(4, 4);
        for (i, v) in [3.0, -1.0, 7.0, 0.5].into_iter().enumerate() {
            a[(i, i)] = v;
        }
        let eig = EigenDecomposition::compute(&a).unwrap();
        assert_eq!(eig.values(), &[-1.0, 0.5, 3.0, 7.0]);
    }

    #[test]
    fn two_by_two_analytic_case() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let eig = EigenDecomposition::compute(&a).unwrap();
        assert!((eig.values()[0] - 1.0).abs() < 1e-12);
        assert!((eig.values()[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn random_symmetric_matrices_decompose_accurately() {
        let mut rng = StdRng::seed_from_u64(21);
        for n in [1, 2, 5, 16, 40, 64] {
            let a = Matrix::random_symmetric(n, &mut rng);
            let eig = EigenDecomposition::compute(&a).unwrap();
            assert!(eig.residual(&a) < 1e-10, "n={n} residual too large");
            assert!(
                eig.orthogonality_error() < 1e-10,
                "n={n} vectors not orthonormal"
            );
            assert!(
                eig.reconstruction_error(&a) < 1e-10,
                "n={n} reconstruction failed"
            );
        }
    }

    #[test]
    fn trace_is_preserved() {
        let mut rng = StdRng::seed_from_u64(22);
        let n = 32;
        let a = Matrix::random_symmetric(n, &mut rng);
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let eig = EigenDecomposition::compute(&a).unwrap();
        let sum: f64 = eig.values().iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn eigenvalues_are_sorted_ascending() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = Matrix::random_symmetric(24, &mut rng);
        let eig = EigenDecomposition::compute(&a).unwrap();
        assert!(eig.values().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn asymmetric_input_is_rejected() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 1)] = 1.0;
        assert_eq!(
            EigenDecomposition::compute(&a).unwrap_err(),
            EigError::NotSymmetric
        );
    }

    #[test]
    fn rectangular_input_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(
            EigenDecomposition::compute(&a).unwrap_err(),
            EigError::NotSquare { rows: 2, cols: 3 }
        );
    }

    #[test]
    fn empty_matrix_is_trivial() {
        let a = Matrix::zeros(0, 0);
        let eig = EigenDecomposition::compute(&a).unwrap();
        assert!(eig.values().is_empty());
    }

    #[test]
    fn flops_scale_cubically() {
        assert!(eig_flops(100) > 4.0e6);
        assert!((eig_flops(200) / eig_flops(100) - 8.0).abs() < 1e-12);
    }
}
