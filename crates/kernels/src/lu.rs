//! Blocked LU factorisation with partial pivoting — the computational core
//! of HPL.
//!
//! The factorisation is right-looking, as in LAPACK's `dgetrf`: an
//! unblocked panel factorisation with row pivoting, a unit-lower triangular
//! solve for the block row of `U`, and a GEMM-shaped trailing-submatrix
//! update that dominates the FLOP count.

use std::fmt;

use crate::matrix::{vec_norm_inf, Matrix};

/// The factorisation `P·A = L·U` stored compactly (unit-lower `L` below
/// the diagonal, `U` on and above it).
///
/// # Examples
///
/// ```
/// use cimone_kernels::lu::LuFactorization;
/// use cimone_kernels::matrix::Matrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let a = Matrix::random(32, 32, &mut rng);
/// let b = vec![1.0; 32];
/// let lu = LuFactorization::factor(a.clone(), 8)?;
/// let x = lu.solve(&b);
/// let r = cimone_kernels::lu::hpl_residual(&a, &x, &b);
/// assert!(r < 16.0);
/// # Ok::<(), cimone_kernels::lu::LuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuFactorization {
    lu: Matrix,
    pivots: Vec<usize>,
    block: usize,
}

/// Errors from the LU factorisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// An exactly zero pivot was encountered.
    Singular {
        /// The column at which factorisation broke down.
        column: usize,
    },
}

impl fmt::Display for LuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LuError::NotSquare { rows, cols } => {
                write!(f, "LU requires a square matrix, got {rows}x{cols}")
            }
            LuError::Singular { column } => {
                write!(f, "matrix is singular: zero pivot at column {column}")
            }
        }
    }
}

impl std::error::Error for LuError {}

impl LuFactorization {
    /// Factors `a` in place with partial pivoting and block size `block`.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::NotSquare`] for rectangular inputs and
    /// [`LuError::Singular`] when an exact zero pivot appears.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    pub fn factor(mut a: Matrix, block: usize) -> Result<Self, LuError> {
        assert!(block > 0, "block size must be positive");
        let n = a.rows();
        if a.cols() != n {
            return Err(LuError::NotSquare {
                rows: n,
                cols: a.cols(),
            });
        }
        let mut pivots = vec![0usize; n];

        for k in (0..n).step_by(block) {
            let kb = block.min(n - k);
            factor_panel(&mut a, k, kb, &mut pivots)?;
            if k + kb < n {
                solve_block_row(&mut a, k, kb);
                update_trailing(&mut a, k, kb);
            }
        }

        Ok(LuFactorization {
            lu: a,
            pivots,
            block,
        })
    }

    /// The packed `L`/`U` factors.
    pub fn packed(&self) -> &Matrix {
        &self.lu
    }

    /// The pivot row chosen at each elimination step.
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// The block size used.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix order.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n, "right-hand side length must match order");
        let mut x = b.to_vec();
        // Apply the row interchanges in factorisation order.
        for (j, &p) in self.pivots.iter().enumerate() {
            x.swap(j, p);
        }
        // Forward substitution with unit-diagonal L.
        for j in 0..n {
            let xj = x[j];
            if xj != 0.0 {
                let col = self.lu.col(j);
                for i in j + 1..n {
                    x[i] -= col[i] * xj;
                }
            }
        }
        // Backward substitution with U.
        for j in (0..n).rev() {
            let col = self.lu.col(j);
            x[j] /= col[j];
            let xj = x[j];
            if xj != 0.0 {
                for i in 0..j {
                    x[i] -= col[i] * xj;
                }
            }
        }
        x
    }

    /// Packages factors computed elsewhere (the steppable/checkpointable
    /// path in [`crate::checkpoint`]).
    pub(crate) fn from_parts(lu: Matrix, pivots: Vec<usize>, block: usize) -> Self {
        LuFactorization { lu, pivots, block }
    }

    /// Reconstructs `P·A` from the factors (test helper; O(n³)).
    pub fn reconstruct_permuted(&self) -> Matrix {
        let n = self.order();
        let mut pa = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let mut acc = 0.0;
                let kmax = i.min(j);
                for k in 0..=kmax {
                    let l = if i == k { 1.0 } else { self.lu[(i, k)] };
                    let u = if k <= j { self.lu[(k, j)] } else { 0.0 };
                    acc += l * u;
                }
                pa[(i, j)] = acc;
            }
        }
        pa
    }
}

/// Unblocked panel factorisation over columns `k..k+kb`, full row height,
/// with immediate full-row pivot swaps (keeps already-computed and
/// not-yet-touched columns consistent).
pub(crate) fn factor_panel(
    a: &mut Matrix,
    k: usize,
    kb: usize,
    pivots: &mut [usize],
) -> Result<(), LuError> {
    let n = a.rows();
    for j in k..k + kb {
        // Partial pivoting: largest magnitude in column j at/below the diagonal.
        let mut piv = j;
        let mut best = a[(j, j)].abs();
        for i in j + 1..n {
            let v = a[(i, j)].abs();
            if v > best {
                best = v;
                piv = i;
            }
        }
        if a[(piv, j)] == 0.0 {
            return Err(LuError::Singular { column: j });
        }
        pivots[j] = piv;
        a.swap_rows(j, piv);

        let diag = a[(j, j)];
        for i in j + 1..n {
            a[(i, j)] /= diag;
        }
        // Rank-1 update restricted to the remaining panel columns.
        for jj in j + 1..k + kb {
            let mult = a[(j, jj)];
            if mult == 0.0 {
                continue;
            }
            for i in j + 1..n {
                let lij = a[(i, j)];
                a[(i, jj)] -= lij * mult;
            }
        }
    }
    Ok(())
}

/// Computes `U12 = L11⁻¹ · A12` (unit-lower triangular solve applied to
/// each trailing column's panel rows).
pub(crate) fn solve_block_row(a: &mut Matrix, k: usize, kb: usize) {
    let n = a.rows();
    for jj in k + kb..n {
        for j in k..k + kb {
            let mult = a[(j, jj)];
            if mult == 0.0 {
                continue;
            }
            for i in j + 1..k + kb {
                let lij = a[(i, j)];
                a[(i, jj)] -= lij * mult;
            }
        }
    }
}

/// Trailing update `A22 ← A22 − L21 · U12` (the GEMM that dominates HPL).
pub(crate) fn update_trailing(a: &mut Matrix, k: usize, kb: usize) {
    let n = a.rows();
    let rows = n;
    // Split borrows manually through raw column offsets on the backing slice.
    for jj in k + kb..n {
        for p in k..k + kb {
            let mult = a[(p, jj)];
            if mult == 0.0 {
                continue;
            }
            let (l_col_off, c_col_off) = (p * rows, jj * rows);
            let data = a.as_mut_slice();
            // L21 lives in rows k+kb..n of column p; C in the same rows of column jj.
            for i in k + kb..n {
                let lv = data[l_col_off + i];
                data[c_col_off + i] -= lv * mult;
            }
        }
    }
}

/// FLOPs of an `n×n` LU factorisation plus triangular solves, per the HPL
/// convention: `2/3·n³ + 3/2·n²`.
pub fn hpl_flops(n: usize) -> f64 {
    let n = n as f64;
    2.0 / 3.0 * n * n * n + 1.5 * n * n
}

/// The HPL correctness metric:
/// `‖A·x − b‖∞ / (ε · (‖A‖∞·‖x‖∞ + ‖b‖∞) · n)`; runs pass below 16.
pub fn hpl_residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.matvec(x);
    let r: Vec<f64> = ax.iter().zip(b).map(|(axi, bi)| axi - bi).collect();
    let eps = f64::EPSILON;
    let denom = eps * (a.norm_inf() * vec_norm_inf(x) + vec_norm_inf(b)) * a.rows() as f64;
    let num = vec_norm_inf(&r);
    if denom == 0.0 {
        // Degenerate all-zero system: exact solve counts as a pass.
        return if num == 0.0 { 0.0 } else { f64::INFINITY };
    }
    num / denom
}

/// Threshold below which HPL declares a run numerically correct.
pub const HPL_RESIDUAL_THRESHOLD: f64 = 16.0;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_system(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(n, n, &mut rng);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        (a, b)
    }

    #[test]
    fn factor_solve_passes_hpl_residual() {
        for (n, nb) in [(1, 1), (7, 3), (50, 8), (96, 32), (130, 192)] {
            let (a, b) = random_system(n, n as u64);
            let lu = LuFactorization::factor(a.clone(), nb).unwrap();
            let x = lu.solve(&b);
            let r = hpl_residual(&a, &x, &b);
            assert!(
                r < HPL_RESIDUAL_THRESHOLD,
                "n={n} nb={nb}: residual {r} too large"
            );
        }
    }

    #[test]
    fn blocked_and_unblocked_factors_agree() {
        let (a, _) = random_system(40, 99);
        let lu1 = LuFactorization::factor(a.clone(), 1).unwrap();
        let lu40 = LuFactorization::factor(a.clone(), 64).unwrap();
        assert!(lu1.packed().max_abs_diff(lu40.packed()) < 1e-11);
        assert_eq!(lu1.pivots(), lu40.pivots());
    }

    #[test]
    fn reconstruction_matches_permuted_input() {
        let (a, _) = random_system(24, 5);
        let lu = LuFactorization::factor(a.clone(), 8).unwrap();
        // Apply recorded pivots to a copy of A and compare with L·U.
        let mut pa = a.clone();
        for (j, &p) in lu.pivots().iter().enumerate() {
            pa.swap_rows(j, p);
        }
        assert!(lu.reconstruct_permuted().max_abs_diff(&pa) < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::zeros(5, 5);
        let err = LuFactorization::factor(a, 2).unwrap_err();
        assert_eq!(err, LuError::Singular { column: 0 });
    }

    #[test]
    fn rectangular_input_is_rejected() {
        let a = Matrix::zeros(4, 5);
        let err = LuFactorization::factor(a, 2).unwrap_err();
        assert_eq!(err, LuError::NotSquare { rows: 4, cols: 5 });
    }

    #[test]
    fn pivoting_handles_zero_leading_element() {
        // A matrix whose (0,0) is zero but is nonsingular overall.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let lu = LuFactorization::factor(a.clone(), 1).unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        // A = [0 1; 1 0] -> x = [3, 2].
        assert!((x[0] - 3.0).abs() < 1e-15);
        assert!((x[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn hpl_flops_formula() {
        assert!((hpl_flops(10) - (2000.0 / 3.0 + 150.0)).abs() < 1e-9);
    }

    #[test]
    fn solve_identity_returns_rhs() {
        let lu = LuFactorization::factor(Matrix::identity(6), 2).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(lu.solve(&b), b);
    }
}
