//! Blocked LU factorisation with partial pivoting — the computational core
//! of HPL.
//!
//! The factorisation is right-looking, as in LAPACK's `dgetrf`: an
//! unblocked panel factorisation with row pivoting, a unit-lower triangular
//! solve for the block row of `U`, and a GEMM-shaped trailing-submatrix
//! update that dominates the FLOP count.
//!
//! Two trailing-update paths share one numerical contract:
//! [`LuFactorization::factor`] walks the update with the reference
//! per-element loops, while [`LuFactorization::factor_parallel`] packs
//! `L21` into a contiguous buffer and fans the trailing columns out over a
//! [`WorkerPool`] with a register-blocked axpy kernel. Each trailing
//! column is updated by the identical per-element operation sequence
//! (`p` ascending, `c −= l·mult` with one rounding per multiply and one
//! per subtract) in both paths, so the factors are **bit-identical** at
//! any worker count.

use std::fmt;

use crate::dgemm::{accum_col, accum_group, axpy, pack_block, put_scratch, take_scratch};
use crate::matrix::{vec_norm_inf, Matrix};
use crate::pool::WorkerPool;

/// The factorisation `P·A = L·U` stored compactly (unit-lower `L` below
/// the diagonal, `U` on and above it).
///
/// # Examples
///
/// ```
/// use cimone_kernels::lu::LuFactorization;
/// use cimone_kernels::matrix::Matrix;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let a = Matrix::random(32, 32, &mut rng);
/// let b = vec![1.0; 32];
/// let lu = LuFactorization::factor(a.clone(), 8)?;
/// let x = lu.solve(&b);
/// let r = cimone_kernels::lu::hpl_residual(&a, &x, &b);
/// assert!(r < 16.0);
/// # Ok::<(), cimone_kernels::lu::LuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuFactorization {
    lu: Matrix,
    pivots: Vec<usize>,
    block: usize,
}

/// Errors from the LU factorisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// An exactly zero pivot was encountered.
    Singular {
        /// The column at which factorisation broke down.
        column: usize,
    },
}

impl fmt::Display for LuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LuError::NotSquare { rows, cols } => {
                write!(f, "LU requires a square matrix, got {rows}x{cols}")
            }
            LuError::Singular { column } => {
                write!(f, "matrix is singular: zero pivot at column {column}")
            }
        }
    }
}

impl std::error::Error for LuError {}

impl LuFactorization {
    /// Factors `a` in place with partial pivoting and block size `block`.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::NotSquare`] for rectangular inputs and
    /// [`LuError::Singular`] when an exact zero pivot appears.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    pub fn factor(mut a: Matrix, block: usize) -> Result<Self, LuError> {
        assert!(block > 0, "block size must be positive");
        let n = a.rows();
        if a.cols() != n {
            return Err(LuError::NotSquare {
                rows: n,
                cols: a.cols(),
            });
        }
        let mut pivots = vec![0usize; n];

        for k in (0..n).step_by(block) {
            let kb = block.min(n - k);
            factor_panel(&mut a, k, kb, &mut pivots)?;
            if k + kb < n {
                solve_block_row(&mut a, k, kb);
                update_trailing(&mut a, k, kb);
            }
        }
        apply_deferred_swaps(&mut a, &pivots, block);

        Ok(LuFactorization {
            lu: a,
            pivots,
            block,
        })
    }

    /// [`factor`](LuFactorization::factor) with the trailing-submatrix
    /// update fanned out over `pool` as packed column tiles.
    ///
    /// Bit-identical to the serial path at any worker count (see the
    /// module docs for the argument).
    ///
    /// # Errors
    ///
    /// Returns [`LuError::NotSquare`] for rectangular inputs and
    /// [`LuError::Singular`] when an exact zero pivot appears.
    ///
    /// # Panics
    ///
    /// Panics if `block` is zero.
    pub fn factor_parallel(
        mut a: Matrix,
        block: usize,
        pool: &WorkerPool,
    ) -> Result<Self, LuError> {
        assert!(block > 0, "block size must be positive");
        let n = a.rows();
        if a.cols() != n {
            return Err(LuError::NotSquare {
                rows: n,
                cols: a.cols(),
            });
        }
        let mut pivots = vec![0usize; n];

        for k in (0..n).step_by(block) {
            let kb = block.min(n - k);
            factor_panel(&mut a, k, kb, &mut pivots)?;
            if k + kb < n {
                update_trailing_parallel(&mut a, k, kb, pool);
            }
        }
        apply_deferred_swaps(&mut a, &pivots, block);

        Ok(LuFactorization {
            lu: a,
            pivots,
            block,
        })
    }

    /// The packed `L`/`U` factors.
    pub fn packed(&self) -> &Matrix {
        &self.lu
    }

    /// The pivot row chosen at each elimination step.
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// The block size used.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix order.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.order();
        assert_eq!(b.len(), n, "right-hand side length must match order");
        let mut x = b.to_vec();
        // Apply the row interchanges in factorisation order.
        for (j, &p) in self.pivots.iter().enumerate() {
            x.swap(j, p);
        }
        // Forward substitution with unit-diagonal L.
        for j in 0..n {
            let xj = x[j];
            if xj != 0.0 {
                let col = self.lu.col(j);
                for i in j + 1..n {
                    x[i] -= col[i] * xj;
                }
            }
        }
        // Backward substitution with U.
        for j in (0..n).rev() {
            let col = self.lu.col(j);
            x[j] /= col[j];
            let xj = x[j];
            if xj != 0.0 {
                for i in 0..j {
                    x[i] -= col[i] * xj;
                }
            }
        }
        x
    }

    /// Packages factors computed elsewhere (the steppable/checkpointable
    /// path in [`crate::checkpoint`]).
    pub(crate) fn from_parts(lu: Matrix, pivots: Vec<usize>, block: usize) -> Self {
        LuFactorization { lu, pivots, block }
    }

    /// Reconstructs `P·A` from the factors (test helper; O(n³)).
    pub fn reconstruct_permuted(&self) -> Matrix {
        let n = self.order();
        let mut pa = Matrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let mut acc = 0.0;
                let kmax = i.min(j);
                for k in 0..=kmax {
                    let l = if i == k { 1.0 } else { self.lu[(i, k)] };
                    let u = if k <= j { self.lu[(k, j)] } else { 0.0 };
                    acc += l * u;
                }
                pa[(i, j)] = acc;
            }
        }
        pa
    }
}

/// Unblocked panel factorisation over columns `k..k+kb`, full row height.
/// Pivot swaps apply immediately to the panel and (batched) to the
/// trailing columns; columns left of the panel are settled at the end of
/// the factorisation by [`apply_deferred_swaps`].
pub(crate) fn factor_panel(
    a: &mut Matrix,
    k: usize,
    kb: usize,
    pivots: &mut [usize],
) -> Result<(), LuError> {
    let n = a.rows();
    for j in k..k + kb {
        // Partial pivoting: largest magnitude in column j at/below the diagonal.
        let (piv, best) = {
            let col = a.col(j);
            let mut piv = j;
            let mut best = col[j].abs();
            for (i, v) in col.iter().enumerate().skip(j + 1) {
                let v = v.abs();
                if v > best {
                    best = v;
                    piv = i;
                }
            }
            (piv, best)
        };
        if best == 0.0 {
            return Err(LuError::Singular { column: j });
        }
        pivots[j] = piv;
        // Swap only the panel columns now; the rank-1 updates below never
        // read outside the panel, so the remaining columns take their
        // swaps in one cache-friendly batch at the end (LAPACK's deferred
        // `laswp`). The final matrix is element-for-element the same as
        // with immediate full-row swaps.
        if piv != j {
            let data = a.as_mut_slice();
            for c in k..k + kb {
                data.swap(c * n + j, c * n + piv);
            }
        }

        {
            let col = a.col_mut(j);
            let diag = col[j];
            for v in &mut col[j + 1..] {
                *v /= diag;
            }
        }
        // Rank-1 update restricted to the remaining panel columns
        // (`c − l·mult` as `c + l·(−mult)`, exact under IEEE 754).
        for jj in j + 1..k + kb {
            let (lcol, ccol) = a.col_pair_mut(j, jj);
            let mult = ccol[j];
            if mult == 0.0 {
                continue;
            }
            axpy(&mut ccol[j + 1..], &lcol[j + 1..], -mult);
        }
    }
    // Deferred row interchanges for the *trailing* columns only (the
    // block-row solve and trailing update read them next), one column at a
    // time so each column stays cache-resident for its whole swap
    // sequence. Columns left of the panel are finished factors that
    // nothing reads again until the factorisation completes; they take
    // every later panel's swaps in one final [`apply_deferred_swaps`]
    // pass.
    let data = a.as_mut_slice();
    for col in data[(k + kb) * n..].chunks_exact_mut(n) {
        for (j, &piv) in pivots[k..k + kb].iter().enumerate() {
            col.swap(k + j, piv);
        }
    }
    Ok(())
}

/// Applies, to every factored column, the row interchanges recorded by
/// all panels *after* its own — the left-of-panel half of LAPACK's
/// `laswp` that [`factor_panel`] defers so each column is revisited once
/// instead of once per later panel. Swaps apply in ascending pivot-row
/// order, exactly the order immediate swapping would have used, so the
/// final matrix is element-for-element identical.
pub(crate) fn apply_deferred_swaps(a: &mut Matrix, pivots: &[usize], block: usize) {
    let n = a.rows();
    let data = a.as_mut_slice();
    for (jj, col) in data.chunks_exact_mut(n).enumerate() {
        let own_panel_end = ((jj / block) * block + block).min(n);
        for (j, &piv) in pivots.iter().enumerate().skip(own_panel_end) {
            col.swap(j, piv);
        }
    }
}

/// Computes `U12 = L11⁻¹ · A12` (unit-lower triangular solve applied to
/// each trailing column's panel rows).
pub(crate) fn solve_block_row(a: &mut Matrix, k: usize, kb: usize) {
    let n = a.rows();
    for jj in k + kb..n {
        for j in k..k + kb {
            let mult = a[(j, jj)];
            for i in j + 1..k + kb {
                let lij = a[(i, j)];
                a[(i, jj)] -= lij * mult;
            }
        }
    }
}

/// Trailing update `A22 ← A22 − L21 · U12` (the GEMM that dominates HPL).
///
/// This is the unpacked reference walk (one streamed axpy per `(p, jj)`
/// pair); [`update_trailing_parallel`] performs the same per-element
/// operation chain through the packed register-tiled kernel.
pub(crate) fn update_trailing(a: &mut Matrix, k: usize, kb: usize) {
    let n = a.rows();
    let rows = n;
    // Split borrows manually through raw column offsets on the backing slice.
    for jj in k + kb..n {
        for p in k..k + kb {
            let mult = a[(p, jj)];
            let (l_col_off, c_col_off) = (p * rows, jj * rows);
            let data = a.as_mut_slice();
            // L21 lives in rows k+kb..n of column p; C in the same rows of column jj.
            for i in k + kb..n {
                let lv = data[l_col_off + i];
                data[c_col_off + i] -= lv * mult;
            }
        }
    }
}

/// Fused block-row solve + packed trailing update, fanned out over
/// `pool` as disjoint column tiles.
///
/// Both phases of the right-looking step are *column-local*: solving
/// `U12[:, jj] = L11⁻¹·A12[:, jj]` touches rows `k..k+kb` of column `jj`,
/// and the trailing update touches rows `k+kb..n` of the same column,
/// reading only the (already final) panel columns. Fusing them per tile
/// therefore preserves the exact per-column operation sequence of
/// `solve_block_row` + `update_trailing`, while `L21` is packed once into
/// a contiguous buffer and streamed by a register-blocked axpy kernel.
pub(crate) fn update_trailing_parallel(a: &mut Matrix, k: usize, kb: usize, pool: &WorkerPool) {
    let n = a.rows();
    let trailing = n - (k + kb);
    if trailing == 0 {
        return;
    }
    // Pack L21 (rows k+kb.., panel columns) once per block step.
    let mut l_buf = take_scratch(trailing * kb);
    pack_block(&mut l_buf, a.as_slice(), n, k + kb, trailing, k, kb);
    let l_pack: &[f64] = &l_buf[..trailing * kb];

    let tiles = pool.even_chunks(trailing);
    let data = a.as_mut_slice();
    // Columns 0..k+kb (including the factored panel) are read-only from
    // here; the trailing columns are written, one disjoint tile per task.
    let (head, tail) = data.split_at_mut((k + kb) * n);
    let panel = &head[k * n..];
    pool.scope(|scope| {
        let mut rest = tail;
        let mut offset = 0;
        for &(_, c1) in &tiles {
            let (tile, remaining) = rest.split_at_mut((c1 - offset) * n);
            rest = remaining;
            offset = c1;
            scope.spawn(move || update_tile(panel, l_pack, tile, n, k, kb));
        }
    });
    put_scratch(l_buf);
}

/// Block-row solve + trailing update for one tile of trailing columns
/// (`cols` holds whole columns, leading dimension `n`).
///
/// The update runs `c − l·mult` as `c + l·(−mult)` through the shared
/// register-tiled accumulate kernel — bit-for-bit the serial chain,
/// since IEEE 754 defines subtraction as addition of the negation.
fn update_tile(panel: &[f64], l_pack: &[f64], cols: &mut [f64], n: usize, k: usize, kb: usize) {
    /// Rows of packed `L21` processed per pass; 48·64·8 B ≈ 24 KiB keeps a
    /// tile L1-resident while every column group streams against it.
    const ROW_PASS: usize = 48;
    let trailing = n - (k + kb);
    let ncols = cols.len() / n;
    // Solve U12 for every tile column first; the update below reads the
    // solved tops only through the negated multiplier pack.
    solve_cols_grouped(panel, cols, n, k, kb);
    // Negated multipliers for the whole tile: f[c·kb + p] = −U12[p, c].
    let mut f_pack = take_scratch(ncols * kb);
    for (c, col) in cols.chunks_exact(n).enumerate() {
        for p in 0..kb {
            f_pack[c * kb + p] = -col[k + p];
        }
    }
    let mut bottoms: Vec<&mut [f64]> = cols
        .chunks_exact_mut(n)
        .map(|col| col.split_at_mut(k + kb).1)
        .collect();
    // Row-tiled update: each L21 row pass stays cache-resident while all
    // column groups stream against it. Per element the `p`-ascending
    // accumulate chain is unchanged, so the factors stay bit-identical.
    let mut i0 = 0;
    while i0 < trailing {
        let ir = ROW_PASS.min(trailing - i0);
        let l_tile = &l_pack[i0..];
        let mut c = 0;
        for group in bottoms.chunks_mut(4) {
            if let [b0, b1, b2, b3] = group {
                accum_group(
                    l_tile,
                    trailing,
                    ir,
                    kb,
                    &f_pack[c * kb..(c + 4) * kb],
                    &mut b0[i0..i0 + ir],
                    &mut b1[i0..i0 + ir],
                    &mut b2[i0..i0 + ir],
                    &mut b3[i0..i0 + ir],
                );
            } else {
                for (q, b) in group.iter_mut().enumerate() {
                    accum_col(
                        l_tile,
                        trailing,
                        ir,
                        kb,
                        &f_pack[(c + q) * kb..(c + q + 1) * kb],
                        &mut b[i0..i0 + ir],
                    );
                }
            }
            c += group.len();
        }
        i0 += ir;
    }
    put_scratch(f_pack);
}

/// Lanes solved together by the transposed block-row solve: sixteen
/// columns ride one SIMD register row pair, each lane running its own
/// column's exact scalar recurrence.
const SOLVE_LANES: usize = 16;

/// Block-row solve for a tile of whole columns (leading dimension `n`):
/// full [`SOLVE_LANES`]-column groups go through the transposed lane
/// kernel, the remainder through the scalar per-column solve. Both run
/// the identical per-element recurrence, so the choice of path never
/// changes a bit.
fn solve_cols_grouped(panel: &[f64], cols: &mut [f64], n: usize, k: usize, kb: usize) {
    let mut t = take_scratch(SOLVE_LANES * kb);
    let mut groups = cols.chunks_exact_mut(SOLVE_LANES * n);
    for group in groups.by_ref() {
        // Transpose the panel rows of the group: t[p·LANES + q] = col_q[k+p].
        for (q, col) in group.chunks_exact(n).enumerate() {
            for p in 0..kb {
                t[p * SOLVE_LANES + q] = col[k + p];
            }
        }
        solve_tops(panel, &mut t[..SOLVE_LANES * kb], n, k, kb);
        for (q, col) in group.chunks_exact_mut(n).enumerate() {
            for p in 0..kb {
                col[k + p] = t[p * SOLVE_LANES + q];
            }
        }
    }
    for col in groups.into_remainder().chunks_exact_mut(n) {
        solve_col(panel, col, n, k, kb);
    }
    put_scratch(t);
}

/// The lane solve over a transposed `kb`×[`SOLVE_LANES`] block of column
/// tops. Lane `q` performs exactly the ops [`solve_col`] would: `j`
/// ascending, then `i` ascending, `t ← t + l·(−mult)`.
#[inline(always)]
fn solve_tops_body(panel: &[f64], t: &mut [f64], n: usize, k: usize, kb: usize) {
    for j in 0..kb {
        let mut m = [0.0f64; SOLVE_LANES];
        m.copy_from_slice(&t[j * SOLVE_LANES..(j + 1) * SOLVE_LANES]);
        for v in &mut m {
            *v = -*v;
        }
        let lcol = &panel[j * n..(j + 1) * n];
        for i in j + 1..kb {
            let l = lcol[k + i];
            let row = &mut t[i * SOLVE_LANES..(i + 1) * SOLVE_LANES];
            for q in 0..SOLVE_LANES {
                row[q] += l * m[q];
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod solve_simd {
    use super::{solve_tops_body, SOLVE_LANES};

    /// Explicit 512-bit lane solve: the multiplier row `m` stays in two
    /// `zmm` registers across the whole inner sweep, negated by an exact
    /// sign-bit flip (bitwise identical to the scalar `-x`).
    ///
    /// # Safety
    ///
    /// Caller must have detected `avx512f`.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn solve_tops_zmm(
        panel: &[f64],
        t: &mut [f64],
        n: usize,
        k: usize,
        kb: usize,
    ) {
        use std::arch::x86_64::*;
        const { assert!(SOLVE_LANES == 16) };
        assert!(t.len() >= SOLVE_LANES * kb);
        assert!(kb == 0 || panel.len() >= (kb - 1) * n + k + kb);
        let sign = _mm512_set1_epi64(i64::MIN);
        let tp = t.as_mut_ptr();
        for j in 0..kb {
            let m0 = _mm512_loadu_pd(tp.add(j * SOLVE_LANES));
            let m1 = _mm512_loadu_pd(tp.add(j * SOLVE_LANES + 8));
            let m0 = _mm512_castsi512_pd(_mm512_xor_si512(_mm512_castpd_si512(m0), sign));
            let m1 = _mm512_castsi512_pd(_mm512_xor_si512(_mm512_castpd_si512(m1), sign));
            for i in j + 1..kb {
                let l = _mm512_set1_pd(*panel.get_unchecked(j * n + k + i));
                let rp = tp.add(i * SOLVE_LANES);
                let r0 = _mm512_add_pd(_mm512_loadu_pd(rp), _mm512_mul_pd(l, m0));
                let r1 = _mm512_add_pd(_mm512_loadu_pd(rp.add(8)), _mm512_mul_pd(l, m1));
                _mm512_storeu_pd(rp, r0);
                _mm512_storeu_pd(rp.add(8), r1);
            }
        }
    }

    /// # Safety
    ///
    /// Caller must have detected `avx2`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn solve_tops_avx2(
        panel: &[f64],
        t: &mut [f64],
        n: usize,
        k: usize,
        kb: usize,
    ) {
        solve_tops_body(panel, t, n, k, kb);
    }
}

/// Feature-dispatched [`solve_tops_body`]. Wider registers change only
/// how many lanes move per instruction, never the per-lane arithmetic, so
/// every dispatch target produces identical bits.
fn solve_tops(panel: &[f64], t: &mut [f64], n: usize, k: usize, kb: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: the feature was just detected on this CPU.
            return unsafe { solve_simd::solve_tops_zmm(panel, t, n, k, kb) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the feature was just detected on this CPU.
            return unsafe { solve_simd::solve_tops_avx2(panel, t, n, k, kb) };
        }
    }
    solve_tops_body(panel, t, n, k, kb);
}

/// `col[k..k+kb] ← L11⁻¹ · col[k..k+kb]` for one trailing column, reading
/// the unit-lower panel from `panel` (columns `k..k+kb`, leading
/// dimension `n`). Per-element identical to `solve_block_row`'s inner
/// loops for that column.
fn solve_col(panel: &[f64], col: &mut [f64], n: usize, k: usize, kb: usize) {
    for j in 0..kb {
        let mult = col[k + j];
        let l_col = &panel[j * n..(j + 1) * n];
        axpy(
            &mut col[k + j + 1..k + kb],
            &l_col[k + j + 1..k + kb],
            -mult,
        );
    }
}

/// FLOPs of an `n×n` LU factorisation plus triangular solves, per the HPL
/// convention: `2/3·n³ + 3/2·n²`.
pub fn hpl_flops(n: usize) -> f64 {
    let n = n as f64;
    2.0 / 3.0 * n * n * n + 1.5 * n * n
}

/// The HPL correctness metric:
/// `‖A·x − b‖∞ / (ε · (‖A‖∞·‖x‖∞ + ‖b‖∞) · n)`; runs pass below 16.
pub fn hpl_residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.matvec(x);
    let r: Vec<f64> = ax.iter().zip(b).map(|(axi, bi)| axi - bi).collect();
    let eps = f64::EPSILON;
    let denom = eps * (a.norm_inf() * vec_norm_inf(x) + vec_norm_inf(b)) * a.rows() as f64;
    let num = vec_norm_inf(&r);
    if denom == 0.0 {
        // Degenerate all-zero system: exact solve counts as a pass.
        return if num == 0.0 { 0.0 } else { f64::INFINITY };
    }
    num / denom
}

/// Threshold below which HPL declares a run numerically correct.
pub const HPL_RESIDUAL_THRESHOLD: f64 = 16.0;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_system(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::random(n, n, &mut rng);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        (a, b)
    }

    #[test]
    fn factor_solve_passes_hpl_residual() {
        for (n, nb) in [(1, 1), (7, 3), (50, 8), (96, 32), (130, 192)] {
            let (a, b) = random_system(n, n as u64);
            let lu = LuFactorization::factor(a.clone(), nb).unwrap();
            let x = lu.solve(&b);
            let r = hpl_residual(&a, &x, &b);
            assert!(
                r < HPL_RESIDUAL_THRESHOLD,
                "n={n} nb={nb}: residual {r} too large"
            );
        }
    }

    #[test]
    fn blocked_and_unblocked_factors_agree() {
        let (a, _) = random_system(40, 99);
        let lu1 = LuFactorization::factor(a.clone(), 1).unwrap();
        let lu40 = LuFactorization::factor(a.clone(), 64).unwrap();
        assert!(lu1.packed().max_abs_diff(lu40.packed()) < 1e-11);
        assert_eq!(lu1.pivots(), lu40.pivots());
    }

    #[test]
    fn reconstruction_matches_permuted_input() {
        let (a, _) = random_system(24, 5);
        let lu = LuFactorization::factor(a.clone(), 8).unwrap();
        // Apply recorded pivots to a copy of A and compare with L·U.
        let mut pa = a.clone();
        for (j, &p) in lu.pivots().iter().enumerate() {
            pa.swap_rows(j, p);
        }
        assert!(lu.reconstruct_permuted().max_abs_diff(&pa) < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::zeros(5, 5);
        let err = LuFactorization::factor(a, 2).unwrap_err();
        assert_eq!(err, LuError::Singular { column: 0 });
    }

    #[test]
    fn rectangular_input_is_rejected() {
        let a = Matrix::zeros(4, 5);
        let err = LuFactorization::factor(a, 2).unwrap_err();
        assert_eq!(err, LuError::NotSquare { rows: 4, cols: 5 });
    }

    #[test]
    fn pivoting_handles_zero_leading_element() {
        // A matrix whose (0,0) is zero but is nonsingular overall.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let lu = LuFactorization::factor(a.clone(), 1).unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        // A = [0 1; 1 0] -> x = [3, 2].
        assert!((x[0] - 3.0).abs() < 1e-15);
        assert!((x[1] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn hpl_flops_formula() {
        assert!((hpl_flops(10) - (2000.0 / 3.0 + 150.0)).abs() < 1e-9);
    }

    #[test]
    fn solve_identity_returns_rhs() {
        let lu = LuFactorization::factor(Matrix::identity(6), 2).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(lu.solve(&b), b);
    }
}
