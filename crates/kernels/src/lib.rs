//! Real dense linear-algebra and bandwidth kernels for the Monte Cimone
//! reproduction.
//!
//! Unlike the behavioural models elsewhere in the workspace, everything in
//! this crate **actually computes**: the blocked LU really factors, STREAM
//! really moves bytes, the eigensolver really diagonalises. These kernels
//! serve three purposes:
//!
//! 1. native Criterion benchmarks (`cimone-bench`) — the repo works as a
//!    small dense-LA library in its own right;
//! 2. numerically validated ground truth for the simulator's FLOP/byte
//!    accounting;
//! 3. the workload definitions (HPL, STREAM, QE LAX) whose machine-scale
//!    behaviour `cimone-cluster` reproduces from the paper.
//!
//! # Examples
//!
//! ```
//! use cimone_kernels::hpl::{run, HplConfig};
//!
//! let result = run(HplConfig::new(64, 16))?;
//! assert!(result.passed);
//! # Ok::<(), cimone_kernels::lu::LuError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod abft;
pub mod checkpoint;
pub mod dgemm;
pub mod eig;
pub mod hpl;
pub mod lu;
pub mod matrix;
pub mod pool;
pub mod stream;

pub use abft::{AbftMode, AbftReport, SdcInjection};
pub use checkpoint::{Checkpoint, SteppableLu};
pub use eig::EigenDecomposition;
pub use lu::LuFactorization;
pub use matrix::Matrix;
pub use pool::WorkerPool;
pub use stream::{StreamConfig, StreamKernel, StreamRun};
