//! Property-based tests for the topic algebra and the time-series store.

use proptest::prelude::*;

use cimone_monitor::broker::Broker;
use cimone_monitor::payload::Payload;
use cimone_monitor::topic::{Topic, TopicFilter};
use cimone_monitor::tsdb::{Aggregation, TimeSeriesStore};
use cimone_soc::units::{SimDuration, SimTime};

fn segment_strategy() -> impl Strategy<Value = String> {
    "[a-z0-9_.-]{1,8}"
}

fn topic_strategy() -> impl Strategy<Value = Topic> {
    prop::collection::vec(segment_strategy(), 1..8).prop_map(Topic::new)
}

proptest! {
    #[test]
    fn topic_display_parse_round_trips(t in topic_strategy()) {
        let back: Topic = t.to_string().parse().expect("display parses");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn hash_filter_matches_everything(t in topic_strategy()) {
        let f: TopicFilter = "#".parse().expect("valid");
        prop_assert!(f.matches(&t));
    }

    #[test]
    fn a_topic_used_as_filter_matches_exactly_itself(
        a in topic_strategy(),
        b in topic_strategy(),
    ) {
        let f: TopicFilter = a.to_string().parse().expect("literal filter");
        prop_assert!(f.matches(&a));
        prop_assert_eq!(f.matches(&b), a == b);
    }

    #[test]
    fn prefix_hash_filter_matches_all_extensions(
        t in topic_strategy(),
        ext in prop::collection::vec(segment_strategy(), 0..4),
    ) {
        let f: TopicFilter = format!("{t}/#").parse().expect("valid");
        let extended = Topic::new(
            t.segments().iter().cloned().chain(ext).collect::<Vec<_>>(),
        );
        prop_assert!(f.matches(&extended));
    }

    #[test]
    fn interning_is_stable_and_lossless(t in topic_strategy()) {
        // Re-parsing the rendered form lands on the same interned handle,
        // and the id resolves back to a topic with identical segments.
        let reparsed: Topic = t.to_string().parse().expect("display parses");
        prop_assert_eq!(reparsed.id(), t.id());
        let resolved = Topic::from_id(t.id()).expect("registered id resolves");
        prop_assert_eq!(resolved.segments(), t.segments());
        prop_assert_eq!(resolved.as_str(), t.as_str());
    }

    #[test]
    fn plus_wildcard_matches_any_single_segment(
        prefix in segment_strategy(),
        middle in segment_strategy(),
        suffix in segment_strategy(),
    ) {
        let f: TopicFilter = format!("{prefix}/+/{suffix}").parse().expect("valid");
        let t: Topic = format!("{prefix}/{middle}/{suffix}").parse().expect("valid");
        prop_assert!(f.matches(&t));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inserting points in any order yields a time-sorted series whose
    /// full-range query returns everything.
    #[test]
    fn tsdb_inserts_in_any_order_stay_sorted(
        mut times in prop::collection::vec(0u64..10_000, 1..80),
    ) {
        let mut db = TimeSeriesStore::new();
        let topic: Topic = "prop/series".parse().expect("valid");
        for &t in &times {
            db.insert(&topic, Payload::new(t as f64, SimTime::from_micros(t)));
        }
        let points = db.query("prop/series", SimTime::ZERO, SimTime::from_secs(3600));
        prop_assert_eq!(points.len(), times.len());
        prop_assert!(points.windows(2).all(|w| w[0].0 <= w[1].0), "sorted");
        // The multiset of timestamps is preserved.
        let mut got: Vec<u64> = points.iter().map(|(t, _)| t.as_micros()).collect();
        times.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, times);
    }

    #[test]
    fn tsdb_mean_lies_between_min_and_max(
        values in prop::collection::vec(-1e6f64..1e6, 1..60),
    ) {
        let mut db = TimeSeriesStore::new();
        let topic: Topic = "prop/agg".parse().expect("valid");
        for (i, v) in values.iter().enumerate() {
            db.insert(&topic, Payload::new(*v, SimTime::from_millis(i as u64)));
        }
        let (from, to) = (SimTime::ZERO, SimTime::from_secs(100));
        let mean = db.aggregate("prop/agg", from, to, Aggregation::Mean).expect("points");
        let min = db.aggregate("prop/agg", from, to, Aggregation::Min).expect("points");
        let max = db.aggregate("prop/agg", from, to, Aggregation::Max).expect("points");
        prop_assert!(min <= mean + 1e-9 && mean <= max + 1e-9, "{min} <= {mean} <= {max}");
    }

    #[test]
    fn downsampled_bins_never_exceed_the_requested_count(
        count in 1usize..100,
        bin_ms in 1u64..500,
    ) {
        let mut db = TimeSeriesStore::new();
        let topic: Topic = "prop/bins".parse().expect("valid");
        for i in 0..count {
            db.insert(&topic, Payload::new(i as f64, SimTime::from_millis(i as u64 * 10)));
        }
        let to = SimTime::from_millis(count as u64 * 10);
        let bins = db.downsample(
            "prop/bins",
            SimTime::ZERO,
            to,
            SimDuration::from_millis(bin_ms),
            Aggregation::Count,
        );
        let expected_max = (count as u64 * 10).div_ceil(bin_ms) as usize;
        prop_assert!(bins.len() <= expected_max, "{} > {}", bins.len(), expected_max);
        let total: f64 = bins.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total as usize, count, "no point lost or duplicated");
    }

    #[test]
    fn phi_detector_never_suspects_an_uninterrupted_heartbeat_stream(
        period_ms in 100u64..30_000,
        beats in 4usize..200,
        // Arrival jitter as a fraction of the period, within the sigma
        // floor's design envelope (±25% of the mean interval).
        jitter_pct in 0u64..20,
        phase in 0u64..7,
    ) {
        use cimone_monitor::heartbeat::{PhiAccrualDetector, DEFAULT_PHI_THRESHOLD};

        let mut det = PhiAccrualDetector::default();
        let mut t = 0u64;
        let mut last = 0u64;
        for i in 0..beats {
            // Deterministic bounded jitter, alternating early/late.
            let jitter = period_ms * jitter_pct / 100;
            let offset = if (i as u64 + phase).is_multiple_of(2) { jitter } else { 0 };
            let at = t + offset;
            det.record(SimTime::from_millis(at));
            // The stream is uninterrupted: evaluated at any point up to the
            // next arrival, suspicion never crosses the threshold.
            for probe in [at, at + period_ms / 2, t + period_ms] {
                let phi = det.phi(SimTime::from_millis(probe.max(last)));
                prop_assert!(
                    phi < DEFAULT_PHI_THRESHOLD,
                    "beat {i}: phi {phi} at probe {probe}ms (period {period_ms}ms)"
                );
            }
            last = at;
            t += period_ms;
        }
    }

    #[test]
    fn payload_round_trips_through_the_wire_format(
        value in -1e9f64..1e9,
        // Bounded so the seconds-as-f64 wire encoding keeps µs resolution.
        micros in 0u64..1_000_000_000_000,
    ) {
        let p = Payload::new(value, SimTime::from_micros(micros));
        let decoded = Payload::decode(&p.encode()).expect("wire format decodes");
        prop_assert_eq!(decoded.value, p.value);
        // Timestamps survive to microsecond resolution.
        let dt = decoded.timestamp.as_micros().abs_diff(p.timestamp.as_micros());
        prop_assert!(dt <= 1, "timestamp drifted by {dt} µs");
    }
}

/// A filter derived from a concrete topic: each segment may be replaced
/// by `+`, and the tail may be truncated and replaced by `#`. Deriving
/// filters from published topics keeps the match rate high enough that
/// the delivery oracle below exercises real routing, not just misses.
fn derived_filter_strategy() -> impl Strategy<Value = TopicFilter> {
    (
        prop::collection::vec((segment_strategy(), any::<bool>()), 1..6),
        // 0..=5 truncates the tail into `#`; 6 means no hash wildcard.
        0usize..7,
    )
        .prop_map(|(segs, hash_at)| {
            let mut parts: Vec<String> = segs
                .into_iter()
                .map(|(s, plus)| if plus { "+".into() } else { s })
                .collect();
            if hash_at < 6 {
                parts.truncate(hash_at.min(parts.len()));
                parts.push("#".into());
            }
            parts.join("/").parse().expect("derived filter is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The precompiled routing table delivers exactly what a per-message
    /// `filter.matches` oracle predicts — same subscriber set, same
    /// per-queue order — and agrees with the per-message `publish` path.
    #[test]
    fn batched_routing_agrees_with_the_matches_oracle(
        // A small pool of topics so batches revisit routes and filters
        // derived from the same alphabet actually match.
        pool in prop::collection::vec(topic_strategy(), 1..6),
        filters in prop::collection::vec(derived_filter_strategy(), 1..5),
        picks in prop::collection::vec(0usize..6, 1..40),
    ) {
        let batched = Broker::new();
        let serial = Broker::new();
        let subs_batched: Vec<_> =
            filters.iter().map(|f| batched.subscribe(f.clone())).collect();
        let subs_serial: Vec<_> =
            filters.iter().map(|f| serial.subscribe(f.clone())).collect();

        let messages: Vec<(Topic, Payload)> = picks
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let topic = pool[p % pool.len()];
                (topic, Payload::new(i as f64, SimTime::from_millis(i as u64)))
            })
            .collect();

        let mut batch = messages.clone();
        batched.publish_batch_serial(&mut batch);
        for (topic, payload) in &messages {
            serial.publish(topic, *payload);
        }

        for ((filter, sub_b), sub_s) in
            filters.iter().zip(&subs_batched).zip(&subs_serial)
        {
            let expected: Vec<(Topic, f64)> = messages
                .iter()
                .filter(|(t, _)| filter.matches(t))
                .map(|(t, p)| (*t, p.value))
                .collect();
            let got_b: Vec<(Topic, f64)> = sub_b
                .drain()
                .into_iter()
                .map(|m| (m.topic, m.payload.value))
                .collect();
            let got_s: Vec<(Topic, f64)> = sub_s
                .drain()
                .into_iter()
                .map(|m| (m.topic, m.payload.value))
                .collect();
            prop_assert_eq!(&got_b, &expected, "batched path vs oracle for {}", filter);
            prop_assert_eq!(&got_s, &expected, "per-message path vs oracle for {}", filter);
        }
    }
}
