//! Acceptance probe for the zero-allocation telemetry hot path: after a
//! warm-up that compiles broker routes, interns every topic, and sizes
//! the scratch buffers, a steady-state sample→publish→ingest tick must
//! perform **zero** heap allocations.
//!
//! A counting global allocator makes the claim falsifiable. This file
//! holds exactly one `#[test]` so no sibling test thread can allocate
//! inside the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cimone_monitor::broker::Broker;
use cimone_monitor::collector::Collector;
use cimone_monitor::interner::registration_count;
use cimone_monitor::payload::Payload;
use cimone_monitor::plugins::{CoreCounters, NodeSnapshot, Plugin, PmuPlugin, StatsPlugin};
use cimone_monitor::topic::{ExamonSchema, Topic};
use cimone_monitor::tsdb::TimeSeriesStore;
use cimone_soc::units::{SimDuration, SimTime};

/// Counts every allocation and reallocation served by the system
/// allocator. Frees are not counted: releasing memory is allowed on the
/// hot path (it cannot grow the footprint), acquiring it is not.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn snapshot(cores: usize, at: SimTime) -> NodeSnapshot {
    NodeSnapshot {
        hostname: "mc-node-01".into(),
        time: at,
        cores: (0..cores)
            .map(|i| CoreCounters {
                cycles: 1_000_000 * (i as u64 + 1),
                instret: 700_000 * (i as u64 + 1),
                events: Default::default(),
            })
            .collect(),
        load_avg: (0.5, 0.4, 0.3),
        memory: Default::default(),
        paging: (1.0, 2.0),
        procs: (3.0, 0.0, 1.0),
        io_total: (1e6, 2e6),
        dsk_total: (1e6, 2e6),
        system: (100.0, 200.0),
        cpu_usage: Default::default(),
        net_total: (1e5, 2e5),
        temperatures: Default::default(),
    }
}

/// One monitoring tick: sample both plugins into the reused scratch
/// batch, publish the batch, pump the collector into the store.
#[allow(clippy::too_many_arguments)]
fn tick(
    at: SimTime,
    snap: &mut NodeSnapshot,
    pmu: &mut PmuPlugin,
    stats: &mut StatsPlugin,
    batch: &mut Vec<(Topic, Payload)>,
    broker: &Broker,
    collector: &mut Collector,
    store: &mut TimeSeriesStore,
) {
    snap.time = at;
    for (i, core) in snap.cores.iter_mut().enumerate() {
        core.cycles += 1_000_000 + i as u64;
        core.instret += 700_000 + i as u64;
    }
    pmu.sample_into(snap, batch);
    stats.sample_into(snap, batch);
    broker.publish_batch_serial(batch);
    collector.pump(store);
}

#[test]
fn steady_state_tick_allocates_nothing() {
    const CORES: usize = 4;
    const WARMUP_TICKS: u64 = 8;
    const MEASURED_TICKS: u64 = 64;

    let schema = ExamonSchema::monte_cimone();
    let mut pmu = PmuPlugin::for_host(schema.clone(), "mc-node-01", CORES);
    let mut stats = StatsPlugin::for_host(schema, "mc-node-01");
    let broker = Broker::new();
    let mut collector = Collector::attach(&broker, "#".parse().expect("valid"));
    let mut store = TimeSeriesStore::new();
    let mut snap = snapshot(CORES, SimTime::ZERO);
    let mut batch: Vec<(Topic, Payload)> = Vec::new();

    let period = SimDuration::from_millis(500);
    let mut now = SimTime::ZERO;
    for _ in 0..WARMUP_TICKS {
        now += period;
        tick(
            now,
            &mut snap,
            &mut pmu,
            &mut stats,
            &mut batch,
            &broker,
            &mut collector,
            &mut store,
        );
    }
    // Warm-up populated every series; give each column room for the
    // whole measured window so the sorted-append fast path never grows.
    store.reserve_points(MEASURED_TICKS as usize + 1);

    let registrations_before = registration_count();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..MEASURED_TICKS {
        now += period;
        tick(
            now,
            &mut snap,
            &mut pmu,
            &mut stats,
            &mut batch,
            &broker,
            &mut collector,
            &mut store,
        );
    }
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;

    assert!(
        store.point_count() > 0 && broker.stats().delivered > 0,
        "the probe must actually move data (got {} points, {} delivered)",
        store.point_count(),
        broker.stats().delivered,
    );
    assert_eq!(
        registration_count(),
        registrations_before,
        "steady-state ticks must not intern new topics"
    );
    assert_eq!(
        allocs, 0,
        "steady-state ticks must not allocate ({allocs} allocations over {MEASURED_TICKS} ticks)"
    );
}
