//! Anomaly detection over monitored series.
//!
//! The paper's §V-C shows ExaMon catching a real thermal-runaway: node 7's
//! SoC hit 107 °C during HPL and tripped. [`ThermalRunawayDetector`]
//! combines a level alarm with a rate-of-rise alarm so the incident is
//! flagged *before* the trip point, which is exactly what an ODA stack is
//! for.

use cimone_soc::units::{Celsius, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::tsdb::TimeSeriesStore;

/// Alarm severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Worth a look.
    Warning,
    /// Act now.
    Critical,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => f.write_str("WARNING"),
            Severity::Critical => f.write_str("CRITICAL"),
        }
    }
}

/// A raised alarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// The series that triggered.
    pub series: String,
    /// When the triggering sample was taken.
    pub at: SimTime,
    /// Severity.
    pub severity: Severity,
    /// Human-readable cause.
    pub message: String,
}

/// Fires when a series crosses a fixed threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdDetector {
    threshold: f64,
    severity: Severity,
}

impl ThresholdDetector {
    /// Creates a detector firing at `value >= threshold`.
    pub fn new(threshold: f64, severity: Severity) -> Self {
        ThresholdDetector {
            threshold,
            severity,
        }
    }

    /// Scans `series` over `[from, to)` and returns the first crossing.
    pub fn scan(
        &self,
        store: &TimeSeriesStore,
        series: &str,
        from: SimTime,
        to: SimTime,
    ) -> Option<Alarm> {
        store
            .query(series, from, to)
            .iter()
            .find(|(_, v)| *v >= self.threshold)
            .map(|(t, v)| Alarm {
                series: series.to_owned(),
                at: *t,
                severity: self.severity,
                message: format!("value {v:.1} crossed threshold {:.1}", self.threshold),
            })
    }
}

/// Fires when a series rises faster than a rate limit over a sliding
/// window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateOfRiseDetector {
    /// Maximum tolerated rise per second.
    max_per_second: f64,
    /// Window over which the rate is measured.
    window: SimDuration,
    severity: Severity,
}

impl RateOfRiseDetector {
    /// Creates a detector firing when the series rises faster than
    /// `max_per_second` measured across `window`.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero.
    pub fn new(max_per_second: f64, window: SimDuration, severity: Severity) -> Self {
        assert!(!window.is_zero(), "window must be non-zero");
        RateOfRiseDetector {
            max_per_second,
            window,
            severity,
        }
    }

    /// Scans `series` over `[from, to)`; returns the first too-fast rise.
    pub fn scan(
        &self,
        store: &TimeSeriesStore,
        series: &str,
        from: SimTime,
        to: SimTime,
    ) -> Option<Alarm> {
        let points = store.query(series, from, to);
        for (i, (t1, v1)) in points.iter().enumerate() {
            // Find the last point inside the window ending at t1.
            let window_start = if t1.as_micros() >= self.window.as_micros() {
                *t1 - self.window
            } else {
                SimTime::ZERO
            };
            for (t0, v0) in points[..i].iter().rev() {
                if *t0 < window_start {
                    break;
                }
                let dt = (*t1 - *t0).as_secs_f64();
                if dt <= 0.0 {
                    continue;
                }
                let rate = (v1 - v0) / dt;
                if rate > self.max_per_second {
                    return Some(Alarm {
                        series: series.to_owned(),
                        at: *t1,
                        severity: self.severity,
                        message: format!(
                            "rising {rate:.2}/s, faster than {:.2}/s",
                            self.max_per_second
                        ),
                    });
                }
            }
        }
        None
    }
}

/// Fires when a series goes quiet: its newest sample is older than the
/// tolerated staleness at scan time. Degraded telemetry — a dropped
/// sensor, broker message loss, a stalled collector — surfaces here
/// instead of silently freezing dashboards at the last good value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaleSeriesDetector {
    /// Maximum tolerated age of the newest sample.
    tolerance: SimDuration,
    severity: Severity,
}

impl StaleSeriesDetector {
    /// Creates a detector tolerating samples up to `tolerance` old.
    ///
    /// # Panics
    ///
    /// Panics if the tolerance is zero.
    pub fn new(tolerance: SimDuration, severity: Severity) -> Self {
        assert!(!tolerance.is_zero(), "tolerance must be non-zero");
        StaleSeriesDetector {
            tolerance,
            severity,
        }
    }

    /// Checks `series` at `now`; alarms if the newest sample is too old,
    /// or if the series has never reported at all.
    pub fn scan(&self, store: &TimeSeriesStore, series: &str, now: SimTime) -> Option<Alarm> {
        match store.latest(series) {
            None => Some(Alarm {
                series: series.to_owned(),
                at: now,
                severity: self.severity,
                message: "series has never reported".to_owned(),
            }),
            Some((t, _)) => {
                let age = now.saturating_since(t);
                (age > self.tolerance).then(|| Alarm {
                    series: series.to_owned(),
                    at: now,
                    severity: self.severity,
                    message: format!(
                        "last sample is {:.0} s old, tolerance {:.0} s",
                        age.as_secs_f64(),
                        self.tolerance.as_secs_f64()
                    ),
                })
            }
        }
    }

    /// Scans every series in the store; returns the stale ones.
    pub fn scan_all(&self, store: &TimeSeriesStore, now: SimTime) -> Vec<Alarm> {
        store
            .series_names()
            .map(str::to_owned)
            .collect::<Vec<_>>()
            .into_iter()
            .filter_map(|s| self.scan(store, &s, now))
            .collect()
    }
}

/// The combined detector ExaMon would run on `temperature.cpu_temp`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalRunawayDetector {
    /// Warning level (°C).
    pub warn_level: Celsius,
    /// Critical level (°C): shutdown imminent. Set below the hardware trip
    /// point so a 0.2 Hz sampler still catches the excursion before the
    /// node disappears.
    pub critical_level: Celsius,
    /// Rate alarm.
    pub rate: RateOfRiseDetector,
}

impl ThermalRunawayDetector {
    /// Defaults for the FU740: warn at 85 °C, critical at 102 °C (the
    /// silicon trips at 107 °C — the paper's observed shutdown), rate
    /// alarm above 0.5 °C/s sustained over 30 s.
    pub fn fu740_default() -> Self {
        ThermalRunawayDetector {
            warn_level: Celsius::new(85.0),
            critical_level: Celsius::new(102.0),
            rate: RateOfRiseDetector::new(0.5, SimDuration::from_secs(30), Severity::Warning),
        }
    }

    /// Scans a temperature series; returns all alarms, most severe first.
    pub fn scan(
        &self,
        store: &TimeSeriesStore,
        series: &str,
        from: SimTime,
        to: SimTime,
    ) -> Vec<Alarm> {
        let mut alarms = Vec::new();
        if let Some(a) = ThresholdDetector::new(self.critical_level.as_f64(), Severity::Critical)
            .scan(store, series, from, to)
        {
            alarms.push(a);
        }
        if let Some(a) = ThresholdDetector::new(self.warn_level.as_f64(), Severity::Warning)
            .scan(store, series, from, to)
        {
            alarms.push(a);
        }
        if let Some(a) = self.rate.scan(store, series, from, to) {
            alarms.push(a);
        }
        alarms.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.at.cmp(&b.at)));
        alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;
    use crate::topic::Topic;

    fn temp_series(values: &[(u64, f64)]) -> (TimeSeriesStore, String) {
        let mut db = TimeSeriesStore::new();
        let topic: Topic = "node/mc-node-07/temp".parse().unwrap();
        for (t, v) in values {
            db.insert(&topic, Payload::new(*v, SimTime::from_secs(*t)));
        }
        (db, topic.to_string())
    }

    #[test]
    fn threshold_fires_at_first_crossing() {
        let (db, series) = temp_series(&[(0, 50.0), (10, 90.0), (20, 95.0)]);
        let det = ThresholdDetector::new(85.0, Severity::Warning);
        let alarm = det
            .scan(&db, &series, SimTime::ZERO, SimTime::from_secs(100))
            .unwrap();
        assert_eq!(alarm.at, SimTime::from_secs(10));
        assert_eq!(alarm.severity, Severity::Warning);
    }

    #[test]
    fn threshold_stays_quiet_below() {
        let (db, series) = temp_series(&[(0, 50.0), (10, 60.0)]);
        let det = ThresholdDetector::new(85.0, Severity::Warning);
        assert!(det
            .scan(&db, &series, SimTime::ZERO, SimTime::from_secs(100))
            .is_none());
    }

    #[test]
    fn rate_detector_catches_fast_rises_only() {
        // 2 °C/s rise between t=10 and t=15.
        let (db, series) = temp_series(&[(0, 40.0), (10, 41.0), (15, 51.0)]);
        let det = RateOfRiseDetector::new(0.5, SimDuration::from_secs(30), Severity::Warning);
        let alarm = det
            .scan(&db, &series, SimTime::ZERO, SimTime::from_secs(100))
            .unwrap();
        assert_eq!(alarm.at, SimTime::from_secs(15));

        // Slow drift stays quiet.
        let (slow, series2) = temp_series(&[(0, 40.0), (100, 45.0)]);
        assert!(det
            .scan(&slow, &series2, SimTime::ZERO, SimTime::from_secs(200))
            .is_none());
    }

    #[test]
    fn runaway_detector_reports_trip_as_critical_first() {
        // The paper's incident: climb through warning to the 107 °C trip.
        let (db, series) = temp_series(&[(0, 60.0), (30, 75.0), (60, 90.0), (90, 107.0)]);
        let det = ThermalRunawayDetector::fu740_default();
        let alarms = det.scan(&db, &series, SimTime::ZERO, SimTime::from_secs(200));
        assert!(alarms.len() >= 2);
        assert_eq!(alarms[0].severity, Severity::Critical);
        assert_eq!(alarms[0].at, SimTime::from_secs(90));
    }

    #[test]
    fn stale_series_detector_flags_quiet_and_missing_series() {
        let (db, series) = temp_series(&[(0, 40.0), (60, 41.0)]);
        let det = StaleSeriesDetector::new(SimDuration::from_secs(30), Severity::Warning);
        // Fresh at t=70 (10 s old), stale at t=120 (60 s old).
        assert!(det.scan(&db, &series, SimTime::from_secs(70)).is_none());
        let alarm = det.scan(&db, &series, SimTime::from_secs(120)).unwrap();
        assert_eq!(alarm.severity, Severity::Warning);
        assert!(alarm.message.contains("60 s old"));
        // A series that never reported alarms too.
        assert!(det
            .scan(&db, "node/mc-node-99/temp", SimTime::ZERO)
            .is_some());
        assert_eq!(db.series_names().count(), 1);
        assert_eq!(det.scan_all(&db, SimTime::from_secs(120)).len(), 1);
    }

    #[test]
    fn healthy_node_raises_nothing() {
        let (db, series) = temp_series(&[(0, 38.0), (60, 39.0), (120, 39.5)]);
        let det = ThermalRunawayDetector::fu740_default();
        assert!(det
            .scan(&db, &series, SimTime::ZERO, SimTime::from_secs(200))
            .is_empty());
    }
}
