//! Sampling plugins: `pmu_pub` (per-core performance counters, 2 Hz) and
//! `stats_pub` (OS statistics, 0.2 Hz), as configured on Monte Cimone
//! (paper §IV-B, Tables II–IV).

use std::collections::BTreeMap;

use cimone_soc::units::{Celsius, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::broker::Broker;
use crate::payload::Payload;
use crate::topic::{ExamonSchema, Topic};

/// Cumulative counters for one core, as read through the perf interface.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CoreCounters {
    /// The fixed CYCLE counter.
    pub cycles: u64,
    /// The fixed INSTRET counter.
    pub instret: u64,
    /// Programmable counters, by event name (present only with the U-Boot
    /// HPM patch applied).
    pub events: BTreeMap<String, u64>,
}

/// Board temperatures, one per hwmon sensor (paper Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Temperatures {
    /// Motherboard sensor.
    pub mb: Celsius,
    /// SoC sensor.
    pub cpu: Celsius,
    /// NVMe SSD sensor.
    pub nvme: Celsius,
}

/// The `hwmon` sysfs paths of the three sensors (paper Table IV).
pub const HWMON_SYSFS: [(&str, &str); 3] = [
    ("nvme_temp", "/sys/class/hwmon/hwmon0/temp1_input"),
    ("mb_temp", "/sys/class/hwmon/hwmon1/temp1_input"),
    ("cpu_temp", "/sys/class/hwmon/hwmon1/temp2_input"),
];

/// Everything the plugins can observe about one node at one instant.
/// Filled in by the cluster simulator each monitoring tick.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeSnapshot {
    /// Hostname (`mc-node-01` …).
    pub hostname: String,
    /// Snapshot time.
    pub time: SimTime,
    /// Per-core cumulative counters.
    pub cores: Vec<CoreCounters>,
    /// 1/5/15-minute load averages.
    pub load_avg: (f64, f64, f64),
    /// Memory usage, bytes: used/free/buffers/cache.
    pub memory: MemoryUsage,
    /// Pages in/out per second.
    pub paging: (f64, f64),
    /// Running/blocked/new processes.
    pub procs: (f64, f64, f64),
    /// Filesystem I/O read/write bytes per second.
    pub io_total: (f64, f64),
    /// Raw disk read/write bytes per second.
    pub dsk_total: (f64, f64),
    /// Interrupts and context switches per second.
    pub system: (f64, f64),
    /// CPU usage percentages: usr/sys/idl/wai/stl.
    pub cpu_usage: CpuUsage,
    /// Network receive/send bytes per second.
    pub net_total: (f64, f64),
    /// hwmon temperatures.
    pub temperatures: Temperatures,
}

/// Memory usage in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MemoryUsage {
    /// Used.
    pub used: f64,
    /// Free.
    pub free: f64,
    /// Buffers.
    pub buff: f64,
    /// Page cache.
    pub cach: f64,
}

/// CPU usage percentages.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CpuUsage {
    /// User.
    pub usr: f64,
    /// System.
    pub sys: f64,
    /// Idle.
    pub idl: f64,
    /// I/O wait.
    pub wai: f64,
    /// Steal.
    pub stl: f64,
}

/// A sampling plugin: turns a node snapshot into topic/payload pairs.
pub trait Plugin {
    /// The plugin's name.
    fn name(&self) -> &str;

    /// The sampling period.
    fn period(&self) -> SimDuration;

    /// Produces the messages for one sample.
    fn sample(&mut self, snapshot: &NodeSnapshot) -> Vec<(Topic, Payload)> {
        let mut out = Vec::new();
        self.sample_into(snapshot, &mut out);
        out
    }

    /// Appends the messages for one sample to `out` without allocating a
    /// fresh vector — the hot-loop entry point. `out` keeps its capacity
    /// across ticks, so after warm-up a sample costs zero allocations
    /// (topic strings aside).
    fn sample_into(&mut self, snapshot: &NodeSnapshot, out: &mut Vec<(Topic, Payload)>);
}

/// Interned topics for one core's counters: the fixed pair plus any
/// programmed HPM events seen so far.
#[derive(Debug, Clone)]
struct PmuCoreTopics {
    cycles: Topic,
    instret: Topic,
    /// Sorted by event name, mirroring the snapshot's `BTreeMap` order:
    /// the sampling loop walks both in lockstep, so a steady-state
    /// sample costs one string equality per event instead of a map
    /// lookup.
    events: Vec<(String, Topic)>,
}

/// The `pmu_pub` plugin: per-core CYCLE/INSTRET (and any programmed HPM
/// events), at 2 Hz by default (paper Table II).
///
/// Topics are pre-registered per host/core/metric (eagerly via
/// [`PmuPlugin::for_host`], else on the first sample): the steady-state
/// [`Plugin::sample_into`] emits interned topic handles and performs zero
/// heap allocations.
#[derive(Debug, Clone)]
pub struct PmuPlugin {
    schema: ExamonSchema,
    period: SimDuration,
    /// Host the topic cache below was registered for.
    hostname: String,
    cores: Vec<PmuCoreTopics>,
}

impl PmuPlugin {
    /// Creates the plugin under `schema` at the paper's 2 Hz cadence.
    /// Topics are registered on the first sample; prefer
    /// [`PmuPlugin::for_host`] when the host is known up front.
    pub fn new(schema: ExamonSchema) -> Self {
        PmuPlugin {
            schema,
            period: SimDuration::from_millis(500), // 2 Hz
            hostname: String::new(),
            cores: Vec::new(),
        }
    }

    /// Creates the plugin with its per-core topics pre-registered for
    /// `hostname` — the construction-time interning that makes every
    /// subsequent sample allocation-free.
    pub fn for_host(schema: ExamonSchema, hostname: &str, cores: usize) -> Self {
        let mut plugin = PmuPlugin::new(schema);
        plugin.register_host(hostname, cores);
        plugin
    }

    /// (Re)builds the topic cache for `hostname` with `cores` cores.
    fn register_host(&mut self, hostname: &str, cores: usize) {
        self.hostname.clear();
        self.hostname.push_str(hostname);
        self.cores.clear();
        for core_id in 0..cores {
            self.cores.push(PmuCoreTopics {
                cycles: self.schema.pmu_topic(hostname, core_id, "cycles"),
                instret: self.schema.pmu_topic(hostname, core_id, "instret"),
                events: Vec::new(),
            });
        }
    }

    /// Overrides the sampling period (the paper runs 2 Hz; sweeps and the
    /// monitored fast-forward tests drive coprime, misaligned cadences).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn set_period(&mut self, period: SimDuration) {
        assert!(!period.is_zero(), "a sampling period must be positive");
        self.period = period;
    }
}

impl Plugin for PmuPlugin {
    fn name(&self) -> &str {
        "pmu_pub"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn sample_into(&mut self, snapshot: &NodeSnapshot, out: &mut Vec<(Topic, Payload)>) {
        if self.hostname != snapshot.hostname {
            // Lazy registration path for plugins built without a host.
            self.register_host(&snapshot.hostname, snapshot.cores.len());
        }
        // More cores than pre-registered: extend the cache (one-time).
        for core_id in self.cores.len()..snapshot.cores.len() {
            self.cores.push(PmuCoreTopics {
                cycles: self.schema.pmu_topic(&self.hostname, core_id, "cycles"),
                instret: self.schema.pmu_topic(&self.hostname, core_id, "instret"),
                events: Vec::new(),
            });
        }
        for (core_id, counters) in snapshot.cores.iter().enumerate() {
            let topics = &mut self.cores[core_id];
            out.push((
                topics.cycles,
                Payload::new(counters.cycles as f64, snapshot.time),
            ));
            out.push((
                topics.instret,
                Payload::new(counters.instret as f64, snapshot.time),
            ));
            // The snapshot's event map iterates in sorted order and the
            // cache is kept sorted, so in steady state (same programmed
            // events every tick) this is a straight lockstep walk.
            let mut cursor = 0usize;
            for (event, value) in &counters.events {
                let topic = loop {
                    match topics.events.get(cursor) {
                        Some((name, topic)) if name == event => {
                            cursor += 1;
                            break *topic;
                        }
                        // A cached event the snapshot no longer reports:
                        // step past it (kept for when it comes back).
                        Some((name, _)) if name.as_str() < event.as_str() => cursor += 1,
                        // First sight of this programmed event (cursor is
                        // at the first cached name sorting after it, or
                        // the end): intern once, keeping the cache sorted.
                        _ => {
                            let topic = self.schema.pmu_topic(&self.hostname, core_id, event);
                            topics.events.insert(cursor, (event.clone(), topic));
                            cursor += 1;
                            break topic;
                        }
                    }
                };
                out.push((topic, Payload::new(*value as f64, snapshot.time)));
            }
        }
    }
}

/// Metric names published by `stats_pub`, exactly the inventory of the
/// paper's Table III.
pub const STATS_METRICS: [&str; 28] = [
    "load_avg.1m",
    "load_avg.5m",
    "load_avg.15m",
    "io_total.read",
    "io_total.writ",
    "procs.run",
    "procs.blk",
    "procs.new",
    "memory_usage.used",
    "memory_usage.free",
    "memory_usage.buff",
    "memory_usage.cach",
    "paging.in",
    "paging.out",
    "dsk_total.read",
    "dsk_total.writ",
    "system.int",
    "system.csw",
    "total_cpu_usage.usr",
    "total_cpu_usage.sys",
    "total_cpu_usage.idl",
    "total_cpu_usage.wai",
    "total_cpu_usage.stl",
    "net_total.recv",
    "net_total.send",
    "temperature.mb_temp",
    "temperature.cpu_temp",
    "temperature.nvme_temp",
];

/// The `stats_pub` plugin: OS statistics and hwmon temperatures, at
/// 0.2 Hz by default (paper Table III).
///
/// Like [`PmuPlugin`], the 28 Table III topics are pre-registered per
/// host ([`StatsPlugin::for_host`], else first sample), so steady-state
/// sampling emits interned handles without allocating.
#[derive(Debug, Clone)]
pub struct StatsPlugin {
    schema: ExamonSchema,
    period: SimDuration,
    /// Host the topic cache below was registered for.
    hostname: String,
    /// One topic per [`STATS_METRICS`] entry, index-aligned.
    topics: Vec<Topic>,
}

impl StatsPlugin {
    /// Creates the plugin under `schema` at the paper's 0.2 Hz cadence.
    /// Topics are registered on the first sample; prefer
    /// [`StatsPlugin::for_host`] when the host is known up front.
    pub fn new(schema: ExamonSchema) -> Self {
        StatsPlugin {
            schema,
            period: SimDuration::from_secs(5), // 0.2 Hz
            hostname: String::new(),
            topics: Vec::new(),
        }
    }

    /// Creates the plugin with all 28 Table III topics pre-registered for
    /// `hostname`.
    pub fn for_host(schema: ExamonSchema, hostname: &str) -> Self {
        let mut plugin = StatsPlugin::new(schema);
        plugin.register_host(hostname);
        plugin
    }

    /// (Re)builds the topic cache for `hostname`.
    fn register_host(&mut self, hostname: &str) {
        self.hostname.clear();
        self.hostname.push_str(hostname);
        self.topics.clear();
        self.topics.extend(
            STATS_METRICS
                .iter()
                .map(|metric| self.schema.stats_topic(hostname, metric)),
        );
    }

    /// Overrides the sampling period (see [`PmuPlugin::set_period`]).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn set_period(&mut self, period: SimDuration) {
        assert!(!period.is_zero(), "a sampling period must be positive");
        self.period = period;
    }

    /// The value of the metric at a [`STATS_METRICS`] position: the hot
    /// sampling path walks the index-aligned topic cache, so the metric
    /// is known by position and no per-metric string match is needed.
    fn metric_value_at(snapshot: &NodeSnapshot, index: usize) -> f64 {
        match index {
            0 => snapshot.load_avg.0,                  // load_avg.1m
            1 => snapshot.load_avg.1,                  // load_avg.5m
            2 => snapshot.load_avg.2,                  // load_avg.15m
            3 => snapshot.io_total.0,                  // io_total.read
            4 => snapshot.io_total.1,                  // io_total.writ
            5 => snapshot.procs.0,                     // procs.run
            6 => snapshot.procs.1,                     // procs.blk
            7 => snapshot.procs.2,                     // procs.new
            8 => snapshot.memory.used,                 // memory_usage.used
            9 => snapshot.memory.free,                 // memory_usage.free
            10 => snapshot.memory.buff,                // memory_usage.buff
            11 => snapshot.memory.cach,                // memory_usage.cach
            12 => snapshot.paging.0,                   // paging.in
            13 => snapshot.paging.1,                   // paging.out
            14 => snapshot.dsk_total.0,                // dsk_total.read
            15 => snapshot.dsk_total.1,                // dsk_total.writ
            16 => snapshot.system.0,                   // system.int
            17 => snapshot.system.1,                   // system.csw
            18 => snapshot.cpu_usage.usr,              // total_cpu_usage.usr
            19 => snapshot.cpu_usage.sys,              // total_cpu_usage.sys
            20 => snapshot.cpu_usage.idl,              // total_cpu_usage.idl
            21 => snapshot.cpu_usage.wai,              // total_cpu_usage.wai
            22 => snapshot.cpu_usage.stl,              // total_cpu_usage.stl
            23 => snapshot.net_total.0,                // net_total.recv
            24 => snapshot.net_total.1,                // net_total.send
            25 => snapshot.temperatures.mb.as_f64(),   // temperature.mb_temp
            26 => snapshot.temperatures.cpu.as_f64(),  // temperature.cpu_temp
            27 => snapshot.temperatures.nvme.as_f64(), // temperature.nvme_temp
            other => unreachable!("stats metric index {other} out of range"),
        }
    }
}

impl Plugin for StatsPlugin {
    fn name(&self) -> &str {
        "stats_pub"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn sample_into(&mut self, snapshot: &NodeSnapshot, out: &mut Vec<(Topic, Payload)>) {
        if self.hostname != snapshot.hostname {
            // Lazy registration path for plugins built without a host.
            self.register_host(&snapshot.hostname);
        }
        out.reserve(STATS_METRICS.len());
        for (index, topic) in self.topics.iter().enumerate() {
            out.push((
                *topic,
                Payload::new(Self::metric_value_at(snapshot, index), snapshot.time),
            ));
        }
    }
}

/// Drives one plugin at its period, publishing to a broker.
#[derive(Debug)]
pub struct PluginRunner<P> {
    plugin: P,
    next_due: SimTime,
}

impl<P: Plugin> PluginRunner<P> {
    /// Wraps `plugin`; the first sample fires at the first `maybe_sample`
    /// call.
    pub fn new(plugin: P) -> Self {
        PluginRunner {
            plugin,
            next_due: SimTime::ZERO,
        }
    }

    /// The wrapped plugin.
    pub fn plugin(&self) -> &P {
        &self.plugin
    }

    /// Mutable access to the wrapped plugin (cadence reconfiguration).
    pub fn plugin_mut(&mut self) -> &mut P {
        &mut self.plugin
    }

    /// Re-anchors the next due time — the phase of the sampling comb.
    /// Subsequent samples keep the plugin's period from `at`.
    pub fn set_next_due(&mut self, at: SimTime) {
        self.next_due = at;
    }

    /// The next time this runner will produce messages. Due-time clocks
    /// use this instead of polling `due_messages` every tick.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// Samples if the period has elapsed, returning the messages without
    /// publishing them; `None` when not due. Splitting compute from
    /// publish lets the engine gather every node's messages first and
    /// push them through [`Broker::publish_batch`] in one parallel
    /// fan-out.
    pub fn due_messages(
        &mut self,
        now: SimTime,
        snapshot: &NodeSnapshot,
    ) -> Option<Vec<(Topic, Payload)>> {
        let mut out = Vec::new();
        self.due_messages_into(now, snapshot, &mut out)
            .then_some(out)
    }

    /// Allocation-free variant of [`PluginRunner::due_messages`]: appends
    /// this tick's messages to `out` (a scratch buffer the caller reuses
    /// across ticks) and returns whether the plugin was due.
    pub fn due_messages_into(
        &mut self,
        now: SimTime,
        snapshot: &NodeSnapshot,
        out: &mut Vec<(Topic, Payload)>,
    ) -> bool {
        if now < self.next_due {
            return false;
        }
        self.next_due = now + self.plugin.period();
        self.plugin.sample_into(snapshot, out);
        true
    }

    /// Samples and publishes if the period has elapsed; returns the number
    /// of messages published (0 when not due).
    pub fn maybe_sample(
        &mut self,
        now: SimTime,
        snapshot: &NodeSnapshot,
        broker: &Broker,
    ) -> usize {
        let Some(messages) = self.due_messages(now, snapshot) else {
            return 0;
        };
        let count = messages.len();
        for (topic, payload) in messages {
            broker.publish(&topic, payload);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> NodeSnapshot {
        NodeSnapshot {
            hostname: "mc-node-01".to_owned(),
            time: SimTime::from_secs(10),
            cores: vec![
                CoreCounters {
                    cycles: 1_200_000,
                    instret: 900_000,
                    events: BTreeMap::from([("dcache_miss".to_owned(), 42u64)]),
                },
                CoreCounters::default(),
            ],
            load_avg: (3.5, 2.0, 1.0),
            temperatures: Temperatures {
                mb: Celsius::new(40.0),
                cpu: Celsius::new(55.5),
                nvme: Celsius::new(35.0),
            },
            ..NodeSnapshot::default()
        }
    }

    #[test]
    fn stats_metric_inventory_matches_table_iii() {
        assert_eq!(STATS_METRICS.len(), 28);
        // Spot-check each Table III group is present.
        for probe in [
            "load_avg.15m",
            "io_total.writ",
            "procs.new",
            "memory_usage.cach",
            "paging.out",
            "dsk_total.read",
            "system.csw",
            "total_cpu_usage.stl",
            "net_total.send",
            "temperature.nvme_temp",
        ] {
            assert!(STATS_METRICS.contains(&probe), "missing {probe}");
        }
    }

    #[test]
    fn hwmon_paths_match_table_iv() {
        let map: BTreeMap<&str, &str> = HWMON_SYSFS.into_iter().collect();
        assert_eq!(map["nvme_temp"], "/sys/class/hwmon/hwmon0/temp1_input");
        assert_eq!(map["mb_temp"], "/sys/class/hwmon/hwmon1/temp1_input");
        assert_eq!(map["cpu_temp"], "/sys/class/hwmon/hwmon1/temp2_input");
    }

    #[test]
    fn pmu_plugin_publishes_per_core_counters() {
        let mut plugin = PmuPlugin::new(ExamonSchema::monte_cimone());
        let messages = plugin.sample(&snapshot());
        // Core 0: cycles + instret + 1 event; core 1: cycles + instret.
        assert_eq!(messages.len(), 5);
        let (topic, payload) = &messages[0];
        assert!(topic.to_string().ends_with("core/0/cycles"));
        assert_eq!(payload.value, 1_200_000.0);
        assert_eq!(payload.timestamp, SimTime::from_secs(10));
        assert!(messages
            .iter()
            .any(|(t, p)| t.to_string().ends_with("core/0/dcache_miss") && p.value == 42.0));
    }

    #[test]
    fn stats_plugin_publishes_every_table_iii_metric() {
        let mut plugin = StatsPlugin::new(ExamonSchema::monte_cimone());
        let messages = plugin.sample(&snapshot());
        assert_eq!(messages.len(), STATS_METRICS.len());
        let cpu_temp = messages
            .iter()
            .find(|(t, _)| t.to_string().ends_with("temperature.cpu_temp"))
            .expect("cpu temp published");
        assert_eq!(cpu_temp.1.value, 55.5);
    }

    #[test]
    fn plugin_periods_match_paper_rates() {
        let pmu = PmuPlugin::new(ExamonSchema::monte_cimone());
        let stats = StatsPlugin::new(ExamonSchema::monte_cimone());
        assert_eq!(pmu.period(), SimDuration::from_millis(500));
        assert_eq!(stats.period(), SimDuration::from_secs(5));
    }

    #[test]
    fn runner_respects_the_sampling_period() {
        let broker = Broker::new();
        let sub = broker.subscribe("#".parse().unwrap());
        let mut runner = PluginRunner::new(PmuPlugin::new(ExamonSchema::monte_cimone()));
        let snap = snapshot();
        assert!(runner.maybe_sample(SimTime::ZERO, &snap, &broker) > 0);
        // 100 ms later: not due (2 Hz).
        assert_eq!(
            runner.maybe_sample(SimTime::from_millis(100), &snap, &broker),
            0
        );
        assert!(runner.maybe_sample(SimTime::from_millis(500), &snap, &broker) > 0);
        assert_eq!(sub.drain().len(), 10);
    }
}
