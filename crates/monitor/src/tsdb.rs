//! The time-series storage backend (ExaMon's KairosDB role).

use std::collections::BTreeMap;
use std::fmt;

use cimone_soc::units::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::broker::PublishedMessage;
use crate::payload::Payload;
use crate::topic::{Topic, TopicFilter};

/// One stored data point.
pub type Point = (SimTime, f64);

/// Aggregation functions for range queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Aggregation {
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Point count.
    Count,
    /// Last value in the range.
    Last,
}

impl Aggregation {
    fn apply(self, points: &[Point]) -> Option<f64> {
        if points.is_empty() {
            return None;
        }
        let values = points.iter().map(|(_, v)| *v);
        Some(match self {
            Aggregation::Mean => values.sum::<f64>() / points.len() as f64,
            Aggregation::Min => values.fold(f64::INFINITY, f64::min),
            Aggregation::Max => values.fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Sum => values.sum(),
            Aggregation::Count => points.len() as f64,
            Aggregation::Last => points.last().map(|(_, v)| *v).expect("non-empty"),
        })
    }
}

impl fmt::Display for Aggregation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Aggregation::Mean => "mean",
            Aggregation::Min => "min",
            Aggregation::Max => "max",
            Aggregation::Sum => "sum",
            Aggregation::Count => "count",
            Aggregation::Last => "last",
        };
        f.write_str(s)
    }
}

/// An in-memory, per-topic time-series store.
///
/// Points are kept time-sorted per series; out-of-order inserts are placed
/// correctly.
///
/// Storage is columnar: each series is one point column, and interned
/// [`TopicId`](crate::interner::TopicId)s map to column handles through a
/// dense index vector, so the steady-state ingest path
/// ([`TimeSeriesStore::insert`] / [`TimeSeriesStore::append_batch`]) is an
/// O(1) handle lookup plus a column push — no string rendering, hashing or
/// tree walk per sample. Names are kept in a sorted side index for the
/// query paths, which are unchanged.
///
/// # Examples
///
/// ```
/// use cimone_monitor::tsdb::{Aggregation, TimeSeriesStore};
/// use cimone_monitor::payload::Payload;
/// use cimone_soc::units::SimTime;
///
/// let mut db = TimeSeriesStore::new();
/// let topic = "sensors/temp".parse()?;
/// for i in 0..10u64 {
///     db.insert(&topic, Payload::new(i as f64, SimTime::from_secs(i)));
/// }
/// let mean = db
///     .aggregate("sensors/temp", SimTime::ZERO, SimTime::from_secs(100), Aggregation::Mean)
///     .unwrap();
/// assert_eq!(mean, 4.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeSeriesStore {
    /// Sorted series-name index → column handle.
    names: BTreeMap<String, u32>,
    /// Point columns, handle-indexed. Evicted columns are recycled via
    /// `free` (their capacity retained), never removed, so handles held in
    /// `by_topic` stay dense.
    columns: Vec<Column>,
    /// `TopicId::index()` → column handle, `NO_COLUMN` when unbound.
    by_topic: Vec<u32>,
    /// Recycled column handles of fully evicted series.
    free: Vec<u32>,
}

#[derive(Debug, Clone)]
struct Column {
    name: String,
    /// The bound `TopicId` raw value, `NO_TOPIC` when unknown (series
    /// restored from serialization and not yet touched by an insert).
    topic: u32,
    points: Vec<Point>,
}

const NO_COLUMN: u32 = u32::MAX;
const NO_TOPIC: u32 = u32::MAX;

/// Sorted insert preserving the time order (fast path: append).
fn place(points: &mut Vec<Point>, payload: Payload) {
    let point = (payload.timestamp, payload.value);
    match points.last() {
        Some((last, _)) if *last > payload.timestamp => {
            // Out-of-order arrival: binary-search the slot.
            let idx = points.partition_point(|(t, _)| *t <= payload.timestamp);
            points.insert(idx, point);
        }
        _ => points.push(point),
    }
}

impl TimeSeriesStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TimeSeriesStore::default()
    }

    /// Resolves (binding or creating as needed) the column handle for
    /// `topic`. Steady state this is one dense-vector load.
    fn handle(&mut self, topic: &Topic) -> usize {
        let idx = topic.id().index();
        if let Some(&column) = self.by_topic.get(idx) {
            if column != NO_COLUMN {
                return column as usize;
            }
        }
        self.handle_slow(topic, idx)
    }

    /// First sight of this topic: bind an existing same-named series
    /// (deserialized, or re-created after eviction) or open a new column.
    fn handle_slow(&mut self, topic: &Topic, idx: usize) -> usize {
        if self.by_topic.len() <= idx {
            self.by_topic.resize(idx + 1, NO_COLUMN);
        }
        let column = match self.names.get(topic.as_str()) {
            Some(&column) => column,
            None => {
                let column = match self.free.pop() {
                    Some(recycled) => recycled,
                    None => {
                        self.columns.push(Column {
                            name: String::new(),
                            topic: NO_TOPIC,
                            points: Vec::new(),
                        });
                        (self.columns.len() - 1) as u32
                    }
                };
                let slot = &mut self.columns[column as usize];
                slot.name.clear();
                slot.name.push_str(topic.as_str());
                slot.points.clear();
                self.names.insert(topic.as_str().to_owned(), column);
                column
            }
        };
        self.columns[column as usize].topic = topic.id().as_u32();
        self.by_topic[idx] = column;
        column as usize
    }

    /// Inserts one sample under `topic`.
    pub fn insert(&mut self, topic: &Topic, payload: Payload) {
        let column = self.handle(topic);
        place(&mut self.columns[column].points, payload);
    }

    /// Inserts a broker message.
    pub fn insert_message(&mut self, message: &PublishedMessage) {
        self.insert(&message.topic, message.payload);
    }

    /// Columnar batch ingest: appends every message, resolving each topic
    /// to its series handle once per message (O(1) after the first sight).
    /// Equivalent to calling [`TimeSeriesStore::insert_message`] per
    /// element.
    pub fn append_batch(&mut self, messages: &[PublishedMessage]) {
        for message in messages {
            self.insert_message(message);
        }
    }

    /// Bulk-appends points of a single series: one handle resolution for
    /// the whole run, and a straight `memcpy`-style column extension when
    /// the run is internally time-sorted and starts at or after the column
    /// tail (the steady-state shape — the collector's pump groups each
    /// drain by topic before calling this). Out-of-order runs fall back to
    /// per-point sorted insertion; the stored column is identical to
    /// calling [`TimeSeriesStore::insert`] once per point in order.
    pub fn extend_series(&mut self, topic: &Topic, points: &[Point]) {
        if points.is_empty() {
            return;
        }
        let column = self.handle(topic);
        let col = &mut self.columns[column].points;
        let sorted = points.windows(2).all(|w| w[0].0 <= w[1].0);
        if sorted && col.last().is_none_or(|(t, _)| *t <= points[0].0) {
            col.extend_from_slice(points);
        } else {
            for &(t, v) in points {
                place(col, Payload::new(v, t));
            }
        }
    }

    /// Reserves room for `additional` further points on every series —
    /// lets a steady-state ingest loop run allocation-free over a known
    /// horizon (the zero-allocation probe uses this).
    pub fn reserve_points(&mut self, additional: usize) {
        for column in &mut self.columns {
            column.points.reserve(additional);
        }
    }

    /// Series names, sorted.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.names.keys().map(String::as_str)
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.names.len()
    }

    /// Total stored points.
    pub fn point_count(&self) -> usize {
        self.names
            .values()
            .map(|&c| self.columns[c as usize].points.len())
            .sum()
    }

    /// Whether the store has no data.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    fn points_of(&self, series: &str) -> Option<&Vec<Point>> {
        self.names
            .get(series)
            .map(|&c| &self.columns[c as usize].points)
    }

    /// Points of `series` in `[from, to)`.
    pub fn query(&self, series: &str, from: SimTime, to: SimTime) -> &[Point] {
        match self.points_of(series) {
            None => &[],
            Some(points) => {
                let lo = points.partition_point(|(t, _)| *t < from);
                let hi = points.partition_point(|(t, _)| *t < to);
                &points[lo..hi]
            }
        }
    }

    /// The latest point of `series`.
    pub fn latest(&self, series: &str) -> Option<Point> {
        self.points_of(series).and_then(|p| p.last().copied())
    }

    /// Aggregates `series` over `[from, to)`.
    pub fn aggregate(
        &self,
        series: &str,
        from: SimTime,
        to: SimTime,
        aggregation: Aggregation,
    ) -> Option<f64> {
        aggregation.apply(self.query(series, from, to))
    }

    /// Downsamples `series` over `[from, to)` into fixed `bin`s, applying
    /// `aggregation` per bin. Empty bins are omitted.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn downsample(
        &self,
        series: &str,
        from: SimTime,
        to: SimTime,
        bin: SimDuration,
        aggregation: Aggregation,
    ) -> Vec<Point> {
        assert!(!bin.is_zero(), "bin width must be non-zero");
        let mut out = Vec::new();
        let mut bin_start = from;
        while bin_start < to {
            let bin_end = (bin_start + bin).min(to);
            if let Some(v) = self.aggregate(series, bin_start, bin_end, aggregation) {
                out.push((bin_start, v));
            }
            bin_start = bin_end;
        }
        out
    }

    /// Drops every point older than `cutoff` (retention policy: the
    /// paper's ODA deployments cap storage by age). Series left empty are
    /// removed entirely (their columns recycled). Returns the number of
    /// points evicted.
    pub fn evict_before(&mut self, cutoff: SimTime) -> usize {
        let mut evicted = 0;
        let columns = &mut self.columns;
        let by_topic = &mut self.by_topic;
        let free = &mut self.free;
        self.names.retain(|_, &mut column| {
            let slot = &mut columns[column as usize];
            let keep_from = slot.points.partition_point(|(t, _)| *t < cutoff);
            evicted += keep_from;
            slot.points.drain(..keep_from);
            if slot.points.is_empty() {
                // Unbind and recycle the column (capacity retained).
                if slot.topic != NO_TOPIC {
                    by_topic[slot.topic as usize] = NO_COLUMN;
                    slot.topic = NO_TOPIC;
                }
                slot.name.clear();
                free.push(column);
                false
            } else {
                true
            }
        });
        evicted
    }

    /// Keeps only the trailing `window` of data relative to `now`.
    pub fn retain_window(&mut self, now: SimTime, window: SimDuration) -> usize {
        let cutoff = if now.as_micros() >= window.as_micros() {
            now - window
        } else {
            SimTime::ZERO
        };
        self.evict_before(cutoff)
    }

    /// All series whose name (as a topic) matches `filter`, with their
    /// points in `[from, to)`; series with no points in range are omitted.
    pub fn query_filter(
        &self,
        filter: &TopicFilter,
        from: SimTime,
        to: SimTime,
    ) -> BTreeMap<String, Vec<Point>> {
        let mut out = BTreeMap::new();
        for name in self.names.keys() {
            let Ok(topic) = name.parse::<Topic>() else {
                continue;
            };
            if filter.matches(&topic) {
                let points = self.query(name, from, to);
                if !points.is_empty() {
                    out.insert(name.clone(), points.to_vec());
                }
            }
        }
        out
    }
}

/// Stores compare by content: same series names with the same point runs,
/// regardless of column layout, topic bindings or recycled slots.
impl PartialEq for TimeSeriesStore {
    fn eq(&self, other: &Self) -> bool {
        self.names.len() == other.names.len()
            && self.names.iter().zip(other.names.iter()).all(
                |((a_name, &a_col), (b_name, &b_col))| {
                    a_name == b_name
                        && self.columns[a_col as usize].points
                            == other.columns[b_col as usize].points
                },
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(series: &str, points: &[(u64, f64)]) -> TimeSeriesStore {
        let mut db = TimeSeriesStore::new();
        let topic: Topic = series.parse().unwrap();
        for (t, v) in points {
            db.insert(&topic, Payload::new(*v, SimTime::from_secs(*t)));
        }
        db
    }

    #[test]
    fn range_queries_are_half_open() {
        let db = store_with("s", &[(0, 1.0), (5, 2.0), (10, 3.0)]);
        let pts = db.query("s", SimTime::from_secs(0), SimTime::from_secs(10));
        assert_eq!(pts.len(), 2);
        let all = db.query("s", SimTime::ZERO, SimTime::from_secs(11));
        assert_eq!(all.len(), 3);
        assert!(db
            .query("missing", SimTime::ZERO, SimTime::from_secs(1))
            .is_empty());
    }

    #[test]
    fn out_of_order_inserts_are_sorted() {
        let db = store_with("s", &[(10, 3.0), (0, 1.0), (5, 2.0)]);
        let pts = db.query("s", SimTime::ZERO, SimTime::from_secs(100));
        let times: Vec<u64> = pts.iter().map(|(t, _)| t.as_micros()).collect();
        assert_eq!(times, vec![0, 5_000_000, 10_000_000]);
    }

    #[test]
    fn aggregations() {
        let db = store_with("s", &[(0, 1.0), (1, 5.0), (2, 3.0)]);
        let range = (SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(
            db.aggregate("s", range.0, range.1, Aggregation::Mean),
            Some(3.0)
        );
        assert_eq!(
            db.aggregate("s", range.0, range.1, Aggregation::Min),
            Some(1.0)
        );
        assert_eq!(
            db.aggregate("s", range.0, range.1, Aggregation::Max),
            Some(5.0)
        );
        assert_eq!(
            db.aggregate("s", range.0, range.1, Aggregation::Sum),
            Some(9.0)
        );
        assert_eq!(
            db.aggregate("s", range.0, range.1, Aggregation::Count),
            Some(3.0)
        );
        assert_eq!(
            db.aggregate("s", range.0, range.1, Aggregation::Last),
            Some(3.0)
        );
        assert_eq!(db.aggregate("s", range.1, range.1, Aggregation::Mean), None);
    }

    #[test]
    fn downsampling_bins_correctly() {
        let db = store_with("s", &[(0, 2.0), (1, 4.0), (10, 10.0), (11, 20.0)]);
        let bins = db.downsample(
            "s",
            SimTime::ZERO,
            SimTime::from_secs(20),
            SimDuration::from_secs(10),
            Aggregation::Mean,
        );
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0], (SimTime::ZERO, 3.0));
        assert_eq!(bins[1], (SimTime::from_secs(10), 15.0));
    }

    #[test]
    fn filter_queries_group_series() {
        let mut db = TimeSeriesStore::new();
        for node in ["a", "b"] {
            let topic: Topic = format!("node/{node}/temp").parse().unwrap();
            db.insert(&topic, Payload::new(40.0, SimTime::from_secs(1)));
        }
        let other: Topic = "node/a/power".parse().unwrap();
        db.insert(&other, Payload::new(5.0, SimTime::from_secs(1)));
        let filter: TopicFilter = "node/+/temp".parse().unwrap();
        let grouped = db.query_filter(&filter, SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(grouped.len(), 2);
        assert!(grouped.contains_key("node/a/temp"));
        assert!(grouped.contains_key("node/b/temp"));
    }

    #[test]
    fn retention_evicts_old_points_and_empty_series() {
        let mut db = store_with("old", &[(0, 1.0), (5, 2.0)]);
        let topic: Topic = "fresh".parse().unwrap();
        db.insert(&topic, Payload::new(9.0, SimTime::from_secs(100)));
        let evicted = db.evict_before(SimTime::from_secs(50));
        assert_eq!(evicted, 2);
        assert_eq!(db.series_count(), 1, "empty series removed");
        assert!(db.latest("fresh").is_some());
        assert!(db
            .query("old", SimTime::ZERO, SimTime::from_secs(1000))
            .is_empty());
    }

    #[test]
    fn retain_window_keeps_the_trailing_span() {
        let mut db = store_with("s", &[(0, 1.0), (50, 2.0), (99, 3.0)]);
        db.retain_window(SimTime::from_secs(100), SimDuration::from_secs(60));
        let points = db.query("s", SimTime::ZERO, SimTime::from_secs(1000));
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].0, SimTime::from_secs(50));
        // A window larger than the history evicts nothing.
        assert_eq!(
            db.retain_window(SimTime::from_secs(100), SimDuration::from_secs(9999)),
            0
        );
    }

    #[test]
    fn latest_returns_newest_point() {
        let db = store_with("s", &[(3, 1.0), (7, 9.0)]);
        assert_eq!(db.latest("s"), Some((SimTime::from_secs(7), 9.0)));
        assert_eq!(db.latest("missing"), None);
    }

    /// `extend_series` must store exactly what per-point `insert` would,
    /// through both its paths: the sorted tail-append fast path and the
    /// out-of-order fallback (runs that are internally unsorted, or start
    /// before the existing column tail).
    #[test]
    fn extend_series_matches_per_point_inserts() {
        let topic: Topic = "ext/equiv".parse().unwrap();
        let runs: [&[(u64, f64)]; 4] = [
            &[(0, 1.0), (5, 2.0), (10, 3.0)],   // sorted, fresh column
            &[(10, 4.0), (20, 5.0)],            // sorted, starts at the tail
            &[(30, 8.0), (25, 7.0), (40, 9.0)], // internally unsorted
            &[(15, 6.0)],                       // starts before the tail
        ];
        let mut bulk = TimeSeriesStore::new();
        let mut reference = TimeSeriesStore::new();
        for run in runs {
            let points: Vec<Point> = run
                .iter()
                .map(|&(t, v)| (SimTime::from_secs(t), v))
                .collect();
            bulk.extend_series(&topic, &points);
            for &(t, v) in &points {
                reference.insert(&topic, Payload::new(v, t));
            }
        }
        let all = (SimTime::ZERO, SimTime::from_secs(1000));
        assert_eq!(
            bulk.query("ext/equiv", all.0, all.1),
            reference.query("ext/equiv", all.0, all.1),
        );
    }

    #[test]
    fn extend_series_with_empty_run_creates_nothing() {
        let mut db = TimeSeriesStore::new();
        let topic: Topic = "ext/empty".parse().unwrap();
        db.extend_series(&topic, &[]);
        assert_eq!(db.series_count(), 0);
    }

    /// Fully evicting a series frees its column for recycling; a new
    /// series then reuses the slot, and the evicted topic rebinds to a
    /// fresh column if it comes back — with no stale points either way.
    #[test]
    fn evicted_columns_are_recycled_and_rebind_cleanly() {
        let mut db = store_with("dead", &[(0, 1.0), (1, 2.0)]);
        db.evict_before(SimTime::from_secs(50));
        assert_eq!(db.series_count(), 0);

        // A different topic takes over the recycled column slot.
        let newcomer: Topic = "alive".parse().unwrap();
        db.insert(&newcomer, Payload::new(7.0, SimTime::from_secs(60)));
        assert_eq!(db.series_count(), 1);
        assert_eq!(
            db.query("alive", SimTime::ZERO, SimTime::from_secs(1000)),
            &[(SimTime::from_secs(60), 7.0)],
        );

        // The evicted topic returns: it must not see the newcomer's
        // points or its own evicted history.
        let revenant: Topic = "dead".parse().unwrap();
        db.insert(&revenant, Payload::new(9.0, SimTime::from_secs(70)));
        assert_eq!(db.series_count(), 2);
        assert_eq!(
            db.query("dead", SimTime::ZERO, SimTime::from_secs(1000)),
            &[(SimTime::from_secs(70), 9.0)],
        );
        assert_eq!(
            db.query("alive", SimTime::ZERO, SimTime::from_secs(1000)),
            &[(SimTime::from_secs(60), 7.0)],
        );
    }
}
