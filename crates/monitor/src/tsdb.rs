//! The time-series storage backend (ExaMon's KairosDB role).

use std::collections::BTreeMap;
use std::fmt;

use cimone_soc::units::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::broker::PublishedMessage;
use crate::payload::Payload;
use crate::topic::{Topic, TopicFilter};

/// One stored data point.
pub type Point = (SimTime, f64);

/// Aggregation functions for range queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Aggregation {
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sum.
    Sum,
    /// Point count.
    Count,
    /// Last value in the range.
    Last,
}

impl Aggregation {
    fn apply(self, points: &[Point]) -> Option<f64> {
        if points.is_empty() {
            return None;
        }
        let values = points.iter().map(|(_, v)| *v);
        Some(match self {
            Aggregation::Mean => values.sum::<f64>() / points.len() as f64,
            Aggregation::Min => values.fold(f64::INFINITY, f64::min),
            Aggregation::Max => values.fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Sum => values.sum(),
            Aggregation::Count => points.len() as f64,
            Aggregation::Last => points.last().map(|(_, v)| *v).expect("non-empty"),
        })
    }
}

impl fmt::Display for Aggregation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Aggregation::Mean => "mean",
            Aggregation::Min => "min",
            Aggregation::Max => "max",
            Aggregation::Sum => "sum",
            Aggregation::Count => "count",
            Aggregation::Last => "last",
        };
        f.write_str(s)
    }
}

/// An in-memory, per-topic time-series store.
///
/// Points are kept time-sorted per series; out-of-order inserts are placed
/// correctly.
///
/// # Examples
///
/// ```
/// use cimone_monitor::tsdb::{Aggregation, TimeSeriesStore};
/// use cimone_monitor::payload::Payload;
/// use cimone_soc::units::SimTime;
///
/// let mut db = TimeSeriesStore::new();
/// let topic = "sensors/temp".parse()?;
/// for i in 0..10u64 {
///     db.insert(&topic, Payload::new(i as f64, SimTime::from_secs(i)));
/// }
/// let mean = db
///     .aggregate("sensors/temp", SimTime::ZERO, SimTime::from_secs(100), Aggregation::Mean)
///     .unwrap();
/// assert_eq!(mean, 4.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeriesStore {
    series: BTreeMap<String, Vec<Point>>,
}

impl TimeSeriesStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TimeSeriesStore::default()
    }

    /// Inserts one sample under `topic`.
    pub fn insert(&mut self, topic: &Topic, payload: Payload) {
        let series = self.series.entry(topic.to_string()).or_default();
        let point = (payload.timestamp, payload.value);
        match series.last() {
            Some((last, _)) if *last > payload.timestamp => {
                // Out-of-order arrival: binary-search the slot.
                let idx = series.partition_point(|(t, _)| *t <= payload.timestamp);
                series.insert(idx, point);
            }
            _ => series.push(point),
        }
    }

    /// Inserts a broker message.
    pub fn insert_message(&mut self, message: &PublishedMessage) {
        self.insert(&message.topic, message.payload);
    }

    /// Series names, sorted.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total stored points.
    pub fn point_count(&self) -> usize {
        self.series.values().map(Vec::len).sum()
    }

    /// Whether the store has no data.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Points of `series` in `[from, to)`.
    pub fn query(&self, series: &str, from: SimTime, to: SimTime) -> &[Point] {
        match self.series.get(series) {
            None => &[],
            Some(points) => {
                let lo = points.partition_point(|(t, _)| *t < from);
                let hi = points.partition_point(|(t, _)| *t < to);
                &points[lo..hi]
            }
        }
    }

    /// The latest point of `series`.
    pub fn latest(&self, series: &str) -> Option<Point> {
        self.series.get(series).and_then(|p| p.last().copied())
    }

    /// Aggregates `series` over `[from, to)`.
    pub fn aggregate(
        &self,
        series: &str,
        from: SimTime,
        to: SimTime,
        aggregation: Aggregation,
    ) -> Option<f64> {
        aggregation.apply(self.query(series, from, to))
    }

    /// Downsamples `series` over `[from, to)` into fixed `bin`s, applying
    /// `aggregation` per bin. Empty bins are omitted.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn downsample(
        &self,
        series: &str,
        from: SimTime,
        to: SimTime,
        bin: SimDuration,
        aggregation: Aggregation,
    ) -> Vec<Point> {
        assert!(!bin.is_zero(), "bin width must be non-zero");
        let mut out = Vec::new();
        let mut bin_start = from;
        while bin_start < to {
            let bin_end = (bin_start + bin).min(to);
            if let Some(v) = self.aggregate(series, bin_start, bin_end, aggregation) {
                out.push((bin_start, v));
            }
            bin_start = bin_end;
        }
        out
    }

    /// Drops every point older than `cutoff` (retention policy: the
    /// paper's ODA deployments cap storage by age). Series left empty are
    /// removed entirely. Returns the number of points evicted.
    pub fn evict_before(&mut self, cutoff: SimTime) -> usize {
        let mut evicted = 0;
        self.series.retain(|_, points| {
            let keep_from = points.partition_point(|(t, _)| *t < cutoff);
            evicted += keep_from;
            points.drain(..keep_from);
            !points.is_empty()
        });
        evicted
    }

    /// Keeps only the trailing `window` of data relative to `now`.
    pub fn retain_window(&mut self, now: SimTime, window: SimDuration) -> usize {
        let cutoff = if now.as_micros() >= window.as_micros() {
            now - window
        } else {
            SimTime::ZERO
        };
        self.evict_before(cutoff)
    }

    /// All series whose name (as a topic) matches `filter`, with their
    /// points in `[from, to)`; series with no points in range are omitted.
    pub fn query_filter(
        &self,
        filter: &TopicFilter,
        from: SimTime,
        to: SimTime,
    ) -> BTreeMap<String, Vec<Point>> {
        let mut out = BTreeMap::new();
        for name in self.series.keys() {
            let Ok(topic) = name.parse::<Topic>() else {
                continue;
            };
            if filter.matches(&topic) {
                let points = self.query(name, from, to);
                if !points.is_empty() {
                    out.insert(name.clone(), points.to_vec());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(series: &str, points: &[(u64, f64)]) -> TimeSeriesStore {
        let mut db = TimeSeriesStore::new();
        let topic: Topic = series.parse().unwrap();
        for (t, v) in points {
            db.insert(&topic, Payload::new(*v, SimTime::from_secs(*t)));
        }
        db
    }

    #[test]
    fn range_queries_are_half_open() {
        let db = store_with("s", &[(0, 1.0), (5, 2.0), (10, 3.0)]);
        let pts = db.query("s", SimTime::from_secs(0), SimTime::from_secs(10));
        assert_eq!(pts.len(), 2);
        let all = db.query("s", SimTime::ZERO, SimTime::from_secs(11));
        assert_eq!(all.len(), 3);
        assert!(db
            .query("missing", SimTime::ZERO, SimTime::from_secs(1))
            .is_empty());
    }

    #[test]
    fn out_of_order_inserts_are_sorted() {
        let db = store_with("s", &[(10, 3.0), (0, 1.0), (5, 2.0)]);
        let pts = db.query("s", SimTime::ZERO, SimTime::from_secs(100));
        let times: Vec<u64> = pts.iter().map(|(t, _)| t.as_micros()).collect();
        assert_eq!(times, vec![0, 5_000_000, 10_000_000]);
    }

    #[test]
    fn aggregations() {
        let db = store_with("s", &[(0, 1.0), (1, 5.0), (2, 3.0)]);
        let range = (SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(
            db.aggregate("s", range.0, range.1, Aggregation::Mean),
            Some(3.0)
        );
        assert_eq!(
            db.aggregate("s", range.0, range.1, Aggregation::Min),
            Some(1.0)
        );
        assert_eq!(
            db.aggregate("s", range.0, range.1, Aggregation::Max),
            Some(5.0)
        );
        assert_eq!(
            db.aggregate("s", range.0, range.1, Aggregation::Sum),
            Some(9.0)
        );
        assert_eq!(
            db.aggregate("s", range.0, range.1, Aggregation::Count),
            Some(3.0)
        );
        assert_eq!(
            db.aggregate("s", range.0, range.1, Aggregation::Last),
            Some(3.0)
        );
        assert_eq!(db.aggregate("s", range.1, range.1, Aggregation::Mean), None);
    }

    #[test]
    fn downsampling_bins_correctly() {
        let db = store_with("s", &[(0, 2.0), (1, 4.0), (10, 10.0), (11, 20.0)]);
        let bins = db.downsample(
            "s",
            SimTime::ZERO,
            SimTime::from_secs(20),
            SimDuration::from_secs(10),
            Aggregation::Mean,
        );
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0], (SimTime::ZERO, 3.0));
        assert_eq!(bins[1], (SimTime::from_secs(10), 15.0));
    }

    #[test]
    fn filter_queries_group_series() {
        let mut db = TimeSeriesStore::new();
        for node in ["a", "b"] {
            let topic: Topic = format!("node/{node}/temp").parse().unwrap();
            db.insert(&topic, Payload::new(40.0, SimTime::from_secs(1)));
        }
        let other: Topic = "node/a/power".parse().unwrap();
        db.insert(&other, Payload::new(5.0, SimTime::from_secs(1)));
        let filter: TopicFilter = "node/+/temp".parse().unwrap();
        let grouped = db.query_filter(&filter, SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(grouped.len(), 2);
        assert!(grouped.contains_key("node/a/temp"));
        assert!(grouped.contains_key("node/b/temp"));
    }

    #[test]
    fn retention_evicts_old_points_and_empty_series() {
        let mut db = store_with("old", &[(0, 1.0), (5, 2.0)]);
        let topic: Topic = "fresh".parse().unwrap();
        db.insert(&topic, Payload::new(9.0, SimTime::from_secs(100)));
        let evicted = db.evict_before(SimTime::from_secs(50));
        assert_eq!(evicted, 2);
        assert_eq!(db.series_count(), 1, "empty series removed");
        assert!(db.latest("fresh").is_some());
        assert!(db
            .query("old", SimTime::ZERO, SimTime::from_secs(1000))
            .is_empty());
    }

    #[test]
    fn retain_window_keeps_the_trailing_span() {
        let mut db = store_with("s", &[(0, 1.0), (50, 2.0), (99, 3.0)]);
        db.retain_window(SimTime::from_secs(100), SimDuration::from_secs(60));
        let points = db.query("s", SimTime::ZERO, SimTime::from_secs(1000));
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].0, SimTime::from_secs(50));
        // A window larger than the history evicts nothing.
        assert_eq!(
            db.retain_window(SimTime::from_secs(100), SimDuration::from_secs(9999)),
            0
        );
    }

    #[test]
    fn latest_returns_newest_point() {
        let db = store_with("s", &[(3, 1.0), (7, 9.0)]);
        assert_eq!(db.latest("s"), Some((SimTime::from_secs(7), 9.0)));
        assert_eq!(db.latest("missing"), None);
    }
}
