//! A minimal hand-rolled JSON parser and serialiser for the REST-style
//! query interface ([`crate::query`]). The build environment is fully
//! offline, so the monitor carries its own JSON support instead of
//! depending on `serde_json`; the subset implemented (null, bool,
//! numbers, strings with `\uXXXX` escapes, arrays, objects) covers the
//! whole query API.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keyed by a sorted map so serialisation is canonical.
    Object(BTreeMap<String, JsonValue>),
}

/// Parse errors with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Fails on malformed input with the offending byte offset.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Looks up a key of an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (String, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().collect())
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(map) => {
                write!(f, "{{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::JsonValue;

    #[test]
    fn round_trips_nested_documents() {
        let text = r#"{"series":[{"name":"node/a/power","points":[[0,1.5],[1,2.5]]}],"ok":true,"gap":null}"#;
        let value = JsonValue::parse(text).unwrap();
        let reparsed = JsonValue::parse(&value.to_string()).unwrap();
        assert_eq!(value, reparsed);
        let series = value.get("series").unwrap().as_array().unwrap();
        assert_eq!(
            series[0].get("name").unwrap().as_str(),
            Some("node/a/power")
        );
        assert_eq!(
            series[0].get("points").unwrap().as_array().unwrap()[1]
                .as_array()
                .unwrap()[1]
                .as_f64(),
            Some(2.5)
        );
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let value = JsonValue::parse(r#"{"s":"a\"bé\n","n":-1.25e2}"#).unwrap();
        assert_eq!(value.get("s").unwrap().as_str(), Some("a\"bé\n"));
        assert_eq!(value.get("n").unwrap().as_f64(), Some(-125.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "not json", "{", "[1,]", "{\"a\":}", "1 2", "\"open", "{'a':1}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn integers_serialise_without_fraction() {
        assert_eq!(JsonValue::Number(3.0).to_string(), "3");
        assert_eq!(JsonValue::Number(3.5).to_string(), "3.5");
        assert_eq!(JsonValue::Null.to_string(), "null");
    }
}
