//! MQTT-style topics and wildcard filters, plus the ExaMon topic schema of
//! the paper's Table II.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::interner::{self, TopicData, TopicId};

/// A concrete (wildcard-free) topic such as
/// `org/unibo/cluster/cimone/node/mc-node-01/plugin/pmu_pub/chnl/data/core/2/instret`.
///
/// Topics are interned: the segment strings live in a process-wide
/// registry ([`crate::interner`]) whose records are never evicted, so a
/// topic is a plain `Copy` handle to a `&'static` record carrying a
/// stable small-integer [`TopicId`]. Cloning is free (a pointer copy, no
/// reference counting), equality/hashing are integer operations, and the
/// `Display`/parse round-trip is lossless (`/`-joined segments, exactly as
/// before interning), so the telemetry wire bytes are unchanged.
///
/// # Examples
///
/// ```
/// use cimone_monitor::topic::Topic;
///
/// let t: Topic = "a/b/c".parse()?;
/// assert_eq!(t.segments().len(), 3);
/// assert_eq!(Topic::from_id(t.id()), Some(t.clone()));
/// # Ok::<(), cimone_monitor::topic::TopicParseError>(())
/// ```
#[derive(Clone, Copy)]
pub struct Topic {
    data: &'static TopicData,
}

impl Topic {
    /// Builds a topic from segments, interning it (allocation-free when
    /// the topic is already registered apart from collecting `segments`).
    ///
    /// # Panics
    ///
    /// Panics if any segment is empty, contains `/`, or contains a
    /// wildcard character.
    pub fn new(segments: impl IntoIterator<Item = String>) -> Self {
        let segments: Vec<String> = segments.into_iter().collect();
        assert!(!segments.is_empty(), "topic needs at least one segment");
        for s in &segments {
            assert!(
                !s.is_empty() && !s.contains(['/', '+', '#']),
                "invalid topic segment {s:?}"
            );
        }
        Topic {
            data: interner::intern(segments),
        }
    }

    /// The segments.
    pub fn segments(&self) -> &[String] {
        &self.data.segments
    }

    /// The stable interned id.
    pub fn id(&self) -> TopicId {
        self.data.id
    }

    /// The rendered `/`-joined form, without allocating.
    pub fn as_str(&self) -> &str {
        &self.data.display
    }

    /// Resolves an id back to its topic; `None` if the id was never
    /// handed out by the interner.
    pub fn from_id(id: TopicId) -> Option<Self> {
        interner::get(id).map(|data| Topic { data })
    }
}

impl PartialEq for Topic {
    fn eq(&self, other: &Self) -> bool {
        // Interning makes ids bijective with segment vectors.
        self.data.id == other.data.id
    }
}

impl Eq for Topic {}

impl Hash for Topic {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.id.hash(state);
    }
}

impl PartialOrd for Topic {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Topic {
    fn cmp(&self, other: &Self) -> Ordering {
        // Segment-wise lexicographic order, exactly as the pre-interning
        // derive produced (id order is registration order, not name order).
        self.data.segments.cmp(&other.data.segments)
    }
}

impl fmt::Debug for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Topic")
            .field("segments", &self.data.segments)
            .finish()
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.data.display)
    }
}

/// A malformed topic or filter string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicParseError {
    input: String,
    reason: &'static str,
}

impl fmt::Display for TopicParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topic {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for TopicParseError {}

impl FromStr for Topic {
    type Err = TopicParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Already-interned topics parse without allocating: anything in
        // the registry passed validation when it was first registered.
        if let Some(data) = interner::lookup_display(s) {
            return Ok(Topic { data });
        }
        if s.is_empty() {
            return Err(TopicParseError {
                input: s.to_owned(),
                reason: "empty topic",
            });
        }
        let segments: Vec<String> = s.split('/').map(str::to_owned).collect();
        for seg in &segments {
            if seg.is_empty() {
                return Err(TopicParseError {
                    input: s.to_owned(),
                    reason: "empty segment",
                });
            }
            if seg.contains(['+', '#']) {
                return Err(TopicParseError {
                    input: s.to_owned(),
                    reason: "wildcards are only valid in filters",
                });
            }
        }
        Ok(Topic {
            data: interner::intern(segments),
        })
    }
}

/// A subscription filter with MQTT semantics: `+` matches one segment, `#`
/// (final segment only) matches any suffix.
///
/// # Examples
///
/// ```
/// use cimone_monitor::topic::{Topic, TopicFilter};
///
/// let f: TopicFilter = "org/+/cluster/+/node/#".parse()?;
/// let t: Topic = "org/unibo/cluster/cimone/node/mc-node-01/plugin/x".parse()?;
/// assert!(f.matches(&t));
/// # Ok::<(), cimone_monitor::topic::TopicParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TopicFilter {
    segments: Vec<FilterSegment>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum FilterSegment {
    Literal(String),
    SingleLevel,
    MultiLevel,
}

impl TopicFilter {
    /// Whether the filter matches `topic`.
    pub fn matches(&self, topic: &Topic) -> bool {
        let mut ti = 0;
        for (fi, seg) in self.segments.iter().enumerate() {
            match seg {
                FilterSegment::MultiLevel => {
                    // '#' must be last (enforced at parse); matches the rest
                    // including zero segments only if something remains per
                    // MQTT: '#' also matches the parent level; we adopt
                    // "zero or more remaining segments".
                    debug_assert_eq!(fi, self.segments.len() - 1);
                    return true;
                }
                FilterSegment::SingleLevel => {
                    if ti >= topic.segments().len() {
                        return false;
                    }
                    ti += 1;
                }
                FilterSegment::Literal(lit) => {
                    if topic.segments().get(ti) != Some(lit) {
                        return false;
                    }
                    ti += 1;
                }
            }
        }
        ti == topic.segments().len()
    }
}

impl fmt::Display for TopicFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<&str> = self
            .segments
            .iter()
            .map(|s| match s {
                FilterSegment::Literal(l) => l.as_str(),
                FilterSegment::SingleLevel => "+",
                FilterSegment::MultiLevel => "#",
            })
            .collect();
        f.write_str(&parts.join("/"))
    }
}

impl FromStr for TopicFilter {
    type Err = TopicParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(TopicParseError {
                input: s.to_owned(),
                reason: "empty filter",
            });
        }
        let raw: Vec<&str> = s.split('/').collect();
        let mut segments = Vec::with_capacity(raw.len());
        for (i, seg) in raw.iter().enumerate() {
            let parsed = match *seg {
                "" => {
                    return Err(TopicParseError {
                        input: s.to_owned(),
                        reason: "empty segment",
                    })
                }
                "+" => FilterSegment::SingleLevel,
                "#" => {
                    if i != raw.len() - 1 {
                        return Err(TopicParseError {
                            input: s.to_owned(),
                            reason: "'#' must be the final segment",
                        });
                    }
                    FilterSegment::MultiLevel
                }
                lit => {
                    if lit.contains(['+', '#']) {
                        return Err(TopicParseError {
                            input: s.to_owned(),
                            reason: "wildcards must occupy a whole segment",
                        });
                    }
                    FilterSegment::Literal(lit.to_owned())
                }
            };
            segments.push(parsed);
        }
        Ok(TopicFilter { segments })
    }
}

/// The ExaMon topic schema (paper Table II).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExamonSchema {
    /// Organisation segment value.
    pub org: String,
    /// Cluster segment value.
    pub cluster: String,
}

impl ExamonSchema {
    /// The schema for the Monte Cimone deployment.
    pub fn monte_cimone() -> Self {
        ExamonSchema {
            org: "unibo".to_owned(),
            cluster: "cimone".to_owned(),
        }
    }

    /// Table II, row 1: pmu_pub per-core metric topic:
    /// `org/<org>/cluster/<cluster>/node/<hostname>/plugin/pmu_pub/chnl/data/core/<id>/<metric>`.
    pub fn pmu_topic(&self, hostname: &str, core: usize, metric: &str) -> Topic {
        Topic::new(
            [
                "org",
                &self.org,
                "cluster",
                &self.cluster,
                "node",
                hostname,
                "plugin",
                "pmu_pub",
                "chnl",
                "data",
                "core",
                &core.to_string(),
                metric,
            ]
            .map(str::to_owned),
        )
    }

    /// Table II, row 2: stats_pub node metric topic (the plugin publishes
    /// under the `dstat_pub` name, exactly as in the paper):
    /// `org/<org>/cluster/<cluster>/node/<hostname>/plugin/dstat_pub/chnl/data/<metric>`.
    ///
    /// Dotted metric names (`load_avg.1m`) stay one segment.
    pub fn stats_topic(&self, hostname: &str, metric: &str) -> Topic {
        Topic::new(
            [
                "org",
                &self.org,
                "cluster",
                &self.cluster,
                "node",
                hostname,
                "plugin",
                "dstat_pub",
                "chnl",
                "data",
                metric,
            ]
            .map(str::to_owned),
        )
    }

    /// A filter matching every metric of one node.
    pub fn node_filter(&self, hostname: &str) -> TopicFilter {
        format!(
            "org/{}/cluster/{}/node/{hostname}/#",
            self.org, self.cluster
        )
        .parse()
        .expect("schema filters are well-formed")
    }

    /// A filter matching one pmu metric across all nodes and cores.
    pub fn pmu_metric_filter(&self, metric: &str) -> TopicFilter {
        format!(
            "org/{}/cluster/{}/node/+/plugin/pmu_pub/chnl/data/core/+/{metric}",
            self.org, self.cluster
        )
        .parse()
        .expect("schema filters are well-formed")
    }

    /// A filter matching one stats metric across all nodes.
    pub fn stats_metric_filter(&self, metric: &str) -> TopicFilter {
        format!(
            "org/{}/cluster/{}/node/+/plugin/dstat_pub/chnl/data/{metric}",
            self.org, self.cluster
        )
        .parse()
        .expect("schema filters are well-formed")
    }

    /// Extracts the hostname segment from a schema-conforming topic.
    pub fn hostname_of(topic: &Topic) -> Option<&str> {
        let segs = topic.segments();
        segs.iter()
            .position(|s| s == "node")
            .and_then(|i| segs.get(i + 1))
            .map(String::as_str)
    }

    /// Extracts the trailing metric name.
    pub fn metric_of(topic: &Topic) -> Option<&str> {
        topic.segments().last().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmu_topic_matches_table_ii_shape() {
        let schema = ExamonSchema::monte_cimone();
        let t = schema.pmu_topic("mc-node-01", 2, "instret");
        assert_eq!(
            t.to_string(),
            "org/unibo/cluster/cimone/node/mc-node-01/plugin/pmu_pub/chnl/data/core/2/instret"
        );
    }

    #[test]
    fn stats_topic_uses_dstat_pub_plugin_segment() {
        let schema = ExamonSchema::monte_cimone();
        let t = schema.stats_topic("mc-node-05", "load_avg.1m");
        assert_eq!(
            t.to_string(),
            "org/unibo/cluster/cimone/node/mc-node-05/plugin/dstat_pub/chnl/data/load_avg.1m"
        );
    }

    #[test]
    fn single_level_wildcard_matches_exactly_one_segment() {
        let f: TopicFilter = "a/+/c".parse().unwrap();
        assert!(f.matches(&"a/b/c".parse().unwrap()));
        assert!(!f.matches(&"a/b/b/c".parse().unwrap()));
        assert!(!f.matches(&"a/b".parse().unwrap()));
    }

    #[test]
    fn multi_level_wildcard_matches_any_suffix() {
        let f: TopicFilter = "a/#".parse().unwrap();
        assert!(f.matches(&"a/b".parse().unwrap()));
        assert!(f.matches(&"a/b/c/d".parse().unwrap()));
        assert!(f.matches(&"a".parse().unwrap()));
        assert!(!f.matches(&"b/a".parse().unwrap()));
    }

    #[test]
    fn literal_filters_require_equality() {
        let f: TopicFilter = "a/b".parse().unwrap();
        assert!(f.matches(&"a/b".parse().unwrap()));
        assert!(!f.matches(&"a/c".parse().unwrap()));
    }

    #[test]
    fn schema_filters_route_correctly() {
        let schema = ExamonSchema::monte_cimone();
        let pmu = schema.pmu_topic("mc-node-03", 1, "cycles");
        let stats = schema.stats_topic("mc-node-03", "temperature.cpu_temp");
        assert!(schema.node_filter("mc-node-03").matches(&pmu));
        assert!(schema.node_filter("mc-node-03").matches(&stats));
        assert!(!schema.node_filter("mc-node-04").matches(&pmu));
        assert!(schema.pmu_metric_filter("cycles").matches(&pmu));
        assert!(!schema.pmu_metric_filter("instret").matches(&pmu));
        assert!(schema
            .stats_metric_filter("temperature.cpu_temp")
            .matches(&stats));
    }

    #[test]
    fn hostname_and_metric_extraction() {
        let schema = ExamonSchema::monte_cimone();
        let t = schema.pmu_topic("mc-node-07", 0, "instret");
        assert_eq!(ExamonSchema::hostname_of(&t), Some("mc-node-07"));
        assert_eq!(ExamonSchema::metric_of(&t), Some("instret"));
    }

    #[test]
    fn invalid_filters_are_rejected() {
        assert!("a/#/b".parse::<TopicFilter>().is_err());
        assert!("a//b".parse::<TopicFilter>().is_err());
        assert!("a/b+".parse::<TopicFilter>().is_err());
        assert!("a/+b".parse::<TopicFilter>().is_err());
    }

    #[test]
    fn topics_reject_wildcards() {
        assert!("a/+/c".parse::<Topic>().is_err());
        assert!("a/#".parse::<Topic>().is_err());
    }

    #[test]
    fn interned_topics_share_one_id() {
        let a: Topic = "topic/intern/shared".parse().unwrap();
        let b = Topic::new(["topic", "intern", "shared"].map(str::to_owned));
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
        let c: Topic = "topic/intern/other".parse().unwrap();
        assert_ne!(a.id(), c.id());
        assert_ne!(a, c);
    }

    #[test]
    fn id_round_trip_is_lossless() {
        let t: Topic = "topic/roundtrip/a.b/42".parse().unwrap();
        let back = Topic::from_id(t.id()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.segments(), t.segments());
        assert_eq!(back.to_string(), "topic/roundtrip/a.b/42");
        assert_eq!(back.as_str(), "topic/roundtrip/a.b/42");
    }

    #[test]
    fn topic_ordering_follows_segments_not_ids() {
        // Register in reverse name order so id order and name order differ.
        let z: Topic = "topic/order/z".parse().unwrap();
        let a: Topic = "topic/order/a".parse().unwrap();
        assert!(a < z, "ordering must stay segment-lexicographic");
        // "a/b" vs "a-c": segment-wise, ["a","b"] < ["a-c"].
        let ab = Topic::new(["a", "b"].map(str::to_owned));
        let ac = Topic::new(["a-c".to_owned()]);
        assert!(ab < ac);
    }
}
