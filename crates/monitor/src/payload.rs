//! The ExaMon wire payload: `<value>;<timestamp>` (paper Table II).

use std::fmt;
use std::str::FromStr;

use bytes::Bytes;
use cimone_soc::units::SimTime;
use serde::{Deserialize, Serialize};

/// One sample as carried on the MQTT transport.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Payload {
    /// The metric value.
    pub value: f64,
    /// The sample timestamp.
    pub timestamp: SimTime,
}

impl Payload {
    /// Creates a payload.
    pub fn new(value: f64, timestamp: SimTime) -> Self {
        Payload { value, timestamp }
    }

    /// Encodes to the `<value>;<timestamp>` wire form. Timestamps are in
    /// seconds with microsecond resolution, as ExaMon publishes epoch
    /// seconds with fractional part.
    pub fn encode(&self) -> Bytes {
        Bytes::from(self.to_string().into_bytes())
    }

    /// Decodes the wire form.
    ///
    /// # Errors
    ///
    /// Fails on anything but `float;float-seconds`.
    pub fn decode(raw: &[u8]) -> Result<Self, PayloadError> {
        let text = std::str::from_utf8(raw).map_err(|_| PayloadError::NotUtf8)?;
        text.parse()
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{};{:.6}", self.value, self.timestamp.as_secs_f64())
    }
}

/// A malformed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadError {
    /// Payload bytes are not UTF-8.
    NotUtf8,
    /// Payload text is not `value;timestamp`.
    BadFormat,
}

impl fmt::Display for PayloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadError::NotUtf8 => write!(f, "payload is not valid UTF-8"),
            PayloadError::BadFormat => write!(f, "payload is not in value;timestamp form"),
        }
    }
}

impl std::error::Error for PayloadError {}

impl FromStr for Payload {
    type Err = PayloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (value, ts) = s.split_once(';').ok_or(PayloadError::BadFormat)?;
        let value: f64 = value.trim().parse().map_err(|_| PayloadError::BadFormat)?;
        let secs: f64 = ts.trim().parse().map_err(|_| PayloadError::BadFormat)?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(PayloadError::BadFormat);
        }
        Ok(Payload {
            value,
            timestamp: SimTime::from_micros((secs * 1e6).round() as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        let p = Payload::new(42.5, SimTime::from_millis(1_500));
        let wire = p.encode();
        assert_eq!(std::str::from_utf8(&wire).unwrap(), "42.5;1.500000");
        let back = Payload::decode(&wire).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn decode_tolerates_whitespace() {
        let p: Payload = " 3.25 ; 10.0 ".parse().unwrap();
        assert_eq!(p.value, 3.25);
        assert_eq!(p.timestamp, SimTime::from_secs(10));
    }

    #[test]
    fn malformed_payloads_error() {
        assert_eq!("42".parse::<Payload>(), Err(PayloadError::BadFormat));
        assert_eq!("a;b".parse::<Payload>(), Err(PayloadError::BadFormat));
        assert_eq!("1;-5".parse::<Payload>(), Err(PayloadError::BadFormat));
        assert_eq!(Payload::decode(&[0xff, 0xfe]), Err(PayloadError::NotUtf8));
    }
}
