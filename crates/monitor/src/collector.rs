//! The broker→store collector (ExaMon's ingestion path).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::broker::{Broker, Subscription};
use crate::topic::TopicFilter;
use crate::tsdb::TimeSeriesStore;

/// Subscribes to a broker and drains matching messages into a store.
///
/// `pump` is deterministic and used by the simulation loop; `spawn` runs a
/// real ingestion thread for the threaded integration tests.
///
/// # Examples
///
/// ```
/// use cimone_monitor::broker::Broker;
/// use cimone_monitor::collector::Collector;
/// use cimone_monitor::payload::Payload;
/// use cimone_monitor::tsdb::TimeSeriesStore;
/// use cimone_soc::units::SimTime;
///
/// let broker = Broker::new();
/// let mut collector = Collector::attach(&broker, "#".parse()?);
/// broker.publish(&"a/b".parse()?, Payload::new(1.0, SimTime::ZERO));
/// let mut db = TimeSeriesStore::new();
/// assert_eq!(collector.pump(&mut db), 1);
/// assert_eq!(db.point_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Collector {
    subscription: Subscription,
}

impl Collector {
    /// Subscribes `filter` on `broker`.
    pub fn attach(broker: &Broker, filter: TopicFilter) -> Self {
        Collector {
            subscription: broker.subscribe(filter),
        }
    }

    /// Drains everything queued into `store`; returns the points ingested.
    pub fn pump(&mut self, store: &mut TimeSeriesStore) -> usize {
        let mut n = 0;
        while let Some(msg) = self.subscription.try_recv() {
            store.insert_message(&msg);
            n += 1;
        }
        n
    }

    /// Spawns an ingestion thread feeding a shared store. The thread exits
    /// when the broker drops the subscription's sender side (i.e. when the
    /// broker itself is dropped) — or, in practice, when the process ends.
    pub fn spawn(self, store: Arc<Mutex<TimeSeriesStore>>) -> std::thread::JoinHandle<usize> {
        std::thread::spawn(move || {
            let mut ingested = 0;
            while let Some(msg) = self.subscription.recv() {
                store.lock().insert_message(&msg);
                ingested += 1;
            }
            ingested
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;
    use cimone_soc::units::SimTime;

    #[test]
    fn pump_ingests_only_matching_topics() {
        let broker = Broker::new();
        let mut collector = Collector::attach(&broker, "temp/#".parse().unwrap());
        broker.publish(&"temp/a".parse().unwrap(), Payload::new(1.0, SimTime::ZERO));
        broker.publish(&"power/a".parse().unwrap(), Payload::new(2.0, SimTime::ZERO));
        let mut db = TimeSeriesStore::new();
        assert_eq!(collector.pump(&mut db), 1);
        assert_eq!(db.series_count(), 1);
        assert!(db.latest("temp/a").is_some());
    }

    #[test]
    fn pump_is_incremental() {
        let broker = Broker::new();
        let mut collector = Collector::attach(&broker, "#".parse().unwrap());
        let mut db = TimeSeriesStore::new();
        broker.publish(&"x".parse().unwrap(), Payload::new(1.0, SimTime::ZERO));
        assert_eq!(collector.pump(&mut db), 1);
        assert_eq!(collector.pump(&mut db), 0);
        broker.publish(&"x".parse().unwrap(), Payload::new(2.0, SimTime::from_secs(1)));
        assert_eq!(collector.pump(&mut db), 1);
        assert_eq!(db.point_count(), 2);
    }

    #[test]
    fn threaded_collector_ingests_until_disconnect() {
        let broker = Broker::new();
        let collector = Collector::attach(&broker, "#".parse().unwrap());
        let store = Arc::new(Mutex::new(TimeSeriesStore::new()));
        let handle = collector.spawn(store.clone());
        for i in 0..100u64 {
            broker.publish(
                &"series".parse().unwrap(),
                Payload::new(i as f64, SimTime::from_secs(i)),
            );
        }
        drop(broker); // closes the subscription channel
        let ingested = handle.join().unwrap();
        assert_eq!(ingested, 100);
        assert_eq!(store.lock().point_count(), 100);
    }
}
