//! The broker→store collector (ExaMon's ingestion path).

use std::sync::Arc;

use cimone_soc::units::{SimDuration, SimTime};
use parking_lot::Mutex;

use crate::broker::{Broker, PublishedMessage, Subscription};
use crate::payload::Payload;
use crate::scrub::ScrubPolicy;
use crate::topic::{Topic, TopicFilter};
use crate::tsdb::{Point, TimeSeriesStore};

/// A detected hole in a series: consecutive samples arrived further apart
/// than the collector's expected interval tolerates.
#[derive(Debug, Clone, PartialEq)]
pub struct Gap {
    /// The affected series.
    pub series: String,
    /// Timestamp of the last sample before the hole.
    pub from: SimTime,
    /// Timestamp of the first sample after the hole.
    pub to: SimTime,
    /// Samples that should have arrived in between.
    pub missing: usize,
}

/// Subscribes to a broker and drains matching messages into a store.
///
/// `pump` is deterministic and used by the simulation loop; `spawn` runs a
/// real ingestion thread for the threaded integration tests.
///
/// # Examples
///
/// ```
/// use cimone_monitor::broker::Broker;
/// use cimone_monitor::collector::Collector;
/// use cimone_monitor::payload::Payload;
/// use cimone_monitor::tsdb::TimeSeriesStore;
/// use cimone_soc::units::SimTime;
///
/// let broker = Broker::new();
/// let mut collector = Collector::attach(&broker, "#".parse()?);
/// broker.publish(&"a/b".parse()?, Payload::new(1.0, SimTime::ZERO));
/// let mut db = TimeSeriesStore::new();
/// assert_eq!(collector.pump(&mut db), 1);
/// assert_eq!(db.point_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Collector {
    subscription: Subscription,
    /// Sampling interval the sources are expected to hold; enables gap
    /// detection when set.
    expected_interval: Option<SimDuration>,
    /// Whether detected gaps are filled with sample-and-hold points.
    backfill: bool,
    /// Last ingested `(timestamp, value)` per series, indexed densely by
    /// interned topic id — no string rendering and no hashing on the
    /// per-sample path.
    last_seen: Vec<Option<(SimTime, f64)>>,
    gaps: Vec<Gap>,
    backfilled: usize,
    /// Per-topic staging runs for the columnar pump, indexed densely by
    /// interned topic id; capacities are recycled across pumps.
    buckets: Vec<Bucket>,
    /// Indices of buckets holding points from the current drain.
    active: Vec<usize>,
    /// Plausibility scrubbing: when set, implausible samples are diverted
    /// to [`Collector::take_quarantined`] instead of ingested.
    scrub: Option<ScrubPolicy>,
    /// Samples the scrub refused, in arrival order, awaiting the engine's
    /// drain.
    quarantine: Vec<(Topic, Payload)>,
}

/// One series' staged points within a single pump.
#[derive(Debug, Default)]
struct Bucket {
    topic: Option<Topic>,
    points: Vec<Point>,
}

impl Collector {
    /// Subscribes `filter` on `broker`.
    pub fn attach(broker: &Broker, filter: TopicFilter) -> Self {
        Collector {
            subscription: broker.subscribe(filter),
            expected_interval: None,
            backfill: false,
            last_seen: Vec::new(),
            gaps: Vec::new(),
            backfilled: 0,
            buckets: Vec::new(),
            active: Vec::new(),
            scrub: None,
            quarantine: Vec::new(),
        }
    }

    /// Like [`Collector::attach`], but with a bounded subscriber queue:
    /// bursts beyond `capacity` are dropped (and accounted) at the broker
    /// instead of growing the queue without limit.
    pub fn attach_bounded(broker: &Broker, filter: TopicFilter, capacity: usize) -> Self {
        Collector {
            subscription: broker.subscribe_bounded(filter, capacity),
            expected_interval: None,
            backfill: false,
            last_seen: Vec::new(),
            gaps: Vec::new(),
            backfilled: 0,
            buckets: Vec::new(),
            active: Vec::new(),
            scrub: None,
            quarantine: Vec::new(),
        }
    }

    /// Enables gap detection: consecutive samples of one series arriving
    /// more than 1.5 × `interval` apart are recorded as a [`Gap`].
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero.
    #[must_use]
    pub fn with_expected_interval(mut self, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "expected interval must be non-zero");
        self.expected_interval = Some(interval);
        self
    }

    /// Additionally fills detected gaps with sample-and-hold points (the
    /// last observed value repeated at the expected cadence), so range
    /// aggregates stay dense across sensor dropouts.
    ///
    /// # Panics
    ///
    /// Panics if gap detection was not enabled first.
    #[must_use]
    pub fn with_backfill(mut self) -> Self {
        assert!(
            self.expected_interval.is_some(),
            "backfill requires with_expected_interval"
        );
        self.backfill = true;
        self
    }

    /// Installs a plausibility scrub: samples `policy` rejects are held in
    /// quarantine (see [`Collector::take_quarantined`]) instead of being
    /// written to the store.
    #[must_use]
    pub fn with_scrub(mut self, policy: ScrubPolicy) -> Self {
        self.scrub = Some(policy);
        self
    }

    /// Drains the samples the scrub refused since the last call, in
    /// arrival order.
    pub fn take_quarantined(&mut self) -> Vec<(Topic, Payload)> {
        std::mem::take(&mut self.quarantine)
    }

    /// Gaps detected so far, in detection order.
    pub fn gaps(&self) -> &[Gap] {
        &self.gaps
    }

    /// Points synthesised by backfill so far.
    pub fn backfilled(&self) -> usize {
        self.backfilled
    }

    /// The underlying subscription (drop/overflow accounting lives there).
    pub fn subscription(&self) -> &Subscription {
        &self.subscription
    }

    /// Drains everything queued into `store`; returns the points ingested
    /// (backfilled points are not counted — see [`Collector::backfilled`]).
    ///
    /// Without gap detection this is the columnar fast path: one pass
    /// under the queue lock stages each sample into a per-topic bucket
    /// (dense interned-id index, recycled capacity), then each touched
    /// series is bulk-appended to its column in a single
    /// [`TimeSeriesStore::extend_series`] call. Per-topic arrival order is
    /// preserved, so the stored columns are identical to per-message
    /// inserts. Steady state (pre-registered topics, warm capacities) the
    /// path performs zero heap allocations per sample.
    ///
    /// With an expected interval set, samples go through per-message gap
    /// detection/backfill instead, in arrival order.
    pub fn pump(&mut self, store: &mut TimeSeriesStore) -> usize {
        let Collector {
            subscription,
            expected_interval,
            backfill,
            last_seen,
            gaps,
            backfilled,
            buckets,
            active,
            scrub,
            quarantine,
        } = self;
        if expected_interval.is_none() {
            let drained = subscription.drain_each(|msg| {
                if let Some(policy) = scrub {
                    if !policy.is_plausible(&msg.topic, &msg.payload) {
                        quarantine.push((msg.topic, msg.payload));
                        return;
                    }
                }
                let idx = msg.topic.id().index();
                if buckets.len() <= idx {
                    buckets.resize_with(idx + 1, Bucket::default);
                }
                let bucket = &mut buckets[idx];
                if bucket.points.is_empty() {
                    bucket.topic = Some(msg.topic);
                    active.push(idx);
                }
                bucket
                    .points
                    .push((msg.payload.timestamp, msg.payload.value));
            });
            for &idx in active.iter() {
                let bucket = &mut buckets[idx];
                let topic = bucket.topic.expect("active bucket has a topic");
                store.extend_series(&topic, &bucket.points);
                bucket.points.clear();
            }
            active.clear();
            return drained;
        }
        subscription.drain_each(|msg| {
            if let Some(policy) = scrub {
                if !policy.is_plausible(&msg.topic, &msg.payload) {
                    // A quarantined sample leaves no trace in the gap
                    // bookkeeping either: the series genuinely has a hole
                    // where the corrupt reading was.
                    quarantine.push((msg.topic, msg.payload));
                    return;
                }
            }
            observe_meta(
                *expected_interval,
                *backfill,
                last_seen,
                gaps,
                backfilled,
                store,
                &msg,
            );
            store.insert_message(&msg);
        })
    }

    /// Ingests one message: gap bookkeeping plus the insert (the threaded
    /// [`Collector::spawn`] path, which has no batch to amortise).
    fn observe(&mut self, store: &mut TimeSeriesStore, msg: &PublishedMessage) {
        if let Some(policy) = &self.scrub {
            if !policy.is_plausible(&msg.topic, &msg.payload) {
                self.quarantine.push((msg.topic, msg.payload));
                return;
            }
        }
        observe_meta(
            self.expected_interval,
            self.backfill,
            &mut self.last_seen,
            &mut self.gaps,
            &mut self.backfilled,
            store,
            msg,
        );
        store.insert_message(msg);
    }

    /// Spawns an ingestion thread feeding a shared store. The thread exits
    /// when the broker drops the subscription's sender side (i.e. when the
    /// broker itself is dropped) — or, in practice, when the process ends.
    pub fn spawn(mut self, store: Arc<Mutex<TimeSeriesStore>>) -> std::thread::JoinHandle<usize> {
        std::thread::spawn(move || {
            let mut ingested = 0;
            while let Some(msg) = self.subscription.recv() {
                self.observe(&mut store.lock(), &msg);
                ingested += 1;
            }
            ingested
        })
    }
}

/// Gap bookkeeping for one message: detect (and optionally backfill) a
/// hole, remember the sample. Does not insert the message itself. A free
/// function over the collector's split-out fields so [`Collector::pump`]
/// can call it from inside the queue-drain closure.
#[allow(clippy::too_many_arguments)]
fn observe_meta(
    expected_interval: Option<SimDuration>,
    backfill: bool,
    last_seen: &mut Vec<Option<(SimTime, f64)>>,
    gaps: &mut Vec<Gap>,
    backfilled: &mut usize,
    store: &mut TimeSeriesStore,
    msg: &PublishedMessage,
) {
    let Some(interval) = expected_interval else {
        return;
    };
    let index = msg.topic.id().index();
    if last_seen.len() <= index {
        last_seen.resize(index + 1, None);
    }
    if let Some((last_t, last_v)) = last_seen[index] {
        let delta = msg.payload.timestamp.saturating_since(last_t);
        // Tolerate jitter up to half an interval.
        if delta.as_micros() * 2 > interval.as_micros() * 3 {
            let missing = (delta.as_micros() / interval.as_micros()).saturating_sub(1) as usize;
            gaps.push(Gap {
                series: msg.topic.to_string(),
                from: last_t,
                to: msg.payload.timestamp,
                missing,
            });
            if backfill {
                for k in 1..=missing as u64 {
                    let at = last_t + interval * k;
                    store.insert(&msg.topic, Payload::new(last_v, at));
                    *backfilled += 1;
                }
            }
        }
    }
    last_seen[index] = Some((msg.payload.timestamp, msg.payload.value));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;
    use cimone_soc::units::SimTime;

    #[test]
    fn pump_ingests_only_matching_topics() {
        let broker = Broker::new();
        let mut collector = Collector::attach(&broker, "temp/#".parse().unwrap());
        broker.publish(&"temp/a".parse().unwrap(), Payload::new(1.0, SimTime::ZERO));
        broker.publish(
            &"power/a".parse().unwrap(),
            Payload::new(2.0, SimTime::ZERO),
        );
        let mut db = TimeSeriesStore::new();
        assert_eq!(collector.pump(&mut db), 1);
        assert_eq!(db.series_count(), 1);
        assert!(db.latest("temp/a").is_some());
    }

    #[test]
    fn pump_is_incremental() {
        let broker = Broker::new();
        let mut collector = Collector::attach(&broker, "#".parse().unwrap());
        let mut db = TimeSeriesStore::new();
        broker.publish(&"x".parse().unwrap(), Payload::new(1.0, SimTime::ZERO));
        assert_eq!(collector.pump(&mut db), 1);
        assert_eq!(collector.pump(&mut db), 0);
        broker.publish(
            &"x".parse().unwrap(),
            Payload::new(2.0, SimTime::from_secs(1)),
        );
        assert_eq!(collector.pump(&mut db), 1);
        assert_eq!(db.point_count(), 2);
    }

    #[test]
    fn gap_detection_flags_sensor_dropouts() {
        let broker = Broker::new();
        let mut collector = Collector::attach(&broker, "#".parse().unwrap())
            .with_expected_interval(SimDuration::from_secs(5));
        let topic = "node/temp".parse().unwrap();
        // Samples at 0, 5, then nothing until 25: a 3-sample hole.
        for t in [0u64, 5, 25] {
            broker.publish(&topic, Payload::new(t as f64, SimTime::from_secs(t)));
        }
        let mut db = TimeSeriesStore::new();
        assert_eq!(collector.pump(&mut db), 3);
        assert_eq!(collector.gaps().len(), 1);
        let gap = &collector.gaps()[0];
        assert_eq!(gap.series, "node/temp");
        assert_eq!(gap.from, SimTime::from_secs(5));
        assert_eq!(gap.to, SimTime::from_secs(25));
        assert_eq!(gap.missing, 3);
        // No backfill requested: the store holds only real samples.
        assert_eq!(db.point_count(), 3);
    }

    #[test]
    fn jitter_within_tolerance_is_not_a_gap() {
        let broker = Broker::new();
        let mut collector = Collector::attach(&broker, "#".parse().unwrap())
            .with_expected_interval(SimDuration::from_secs(10));
        let topic = "node/temp".parse().unwrap();
        // 14 s spacing on a 10 s cadence: inside the 1.5x tolerance.
        for t in [0u64, 14, 28] {
            broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(t)));
        }
        let mut db = TimeSeriesStore::new();
        collector.pump(&mut db);
        assert!(collector.gaps().is_empty());
    }

    #[test]
    fn backfill_densifies_the_series_with_held_values() {
        let broker = Broker::new();
        let mut collector = Collector::attach(&broker, "#".parse().unwrap())
            .with_expected_interval(SimDuration::from_secs(5))
            .with_backfill();
        let topic: crate::topic::Topic = "node/power".parse().unwrap();
        broker.publish(&topic, Payload::new(30.0, SimTime::ZERO));
        broker.publish(&topic, Payload::new(40.0, SimTime::from_secs(20)));
        let mut db = TimeSeriesStore::new();
        assert_eq!(collector.pump(&mut db), 2);
        assert_eq!(collector.backfilled(), 3);
        // 2 real + 3 held points at 5, 10, 15 carrying the last value.
        assert_eq!(db.point_count(), 5);
        let points = db.query("node/power", SimTime::ZERO, SimTime::from_secs(100));
        assert_eq!(points[1], (SimTime::from_secs(5), 30.0));
        assert_eq!(points[3], (SimTime::from_secs(15), 30.0));
        assert_eq!(points[4], (SimTime::from_secs(20), 40.0));
    }

    #[test]
    fn scrub_quarantines_implausible_samples_on_both_paths() {
        let power: Topic =
            "org/unibo/cluster/cimone/node/mc-node-00/plugin/pwr_pub/chnl/data/total_power"
                .parse()
                .unwrap();
        // Columnar fast path (no expected interval).
        let broker = Broker::new();
        let mut collector = Collector::attach(&broker, "#".parse().unwrap())
            .with_scrub(crate::scrub::ScrubPolicy::monte_cimone());
        broker.publish(&power, Payload::new(5.5, SimTime::ZERO));
        broker.publish(&power, Payload::new(-5.5, SimTime::from_secs(1)));
        broker.publish(&power, Payload::new(6.0, SimTime::from_secs(2)));
        let mut db = TimeSeriesStore::new();
        collector.pump(&mut db);
        assert_eq!(db.point_count(), 2, "the corrupt sample never landed");
        let held = collector.take_quarantined();
        assert_eq!(held.len(), 1);
        assert_eq!(held[0].0, power);
        assert_eq!(held[0].1.value, -5.5);
        assert!(collector.take_quarantined().is_empty(), "drain is one-shot");

        // Per-message path (gap detection on): the quarantined sample
        // leaves a genuine hole, not a phantom gap endpoint.
        let broker = Broker::new();
        let mut collector = Collector::attach(&broker, "#".parse().unwrap())
            .with_expected_interval(SimDuration::from_secs(1))
            .with_scrub(crate::scrub::ScrubPolicy::monte_cimone());
        for (t, v) in [(0u64, 5.0), (1, f64::NAN), (2, 5.2)] {
            broker.publish(&power, Payload::new(v, SimTime::from_secs(t)));
        }
        let mut db = TimeSeriesStore::new();
        collector.pump(&mut db);
        assert_eq!(db.point_count(), 2);
        assert_eq!(collector.take_quarantined().len(), 1);
        assert_eq!(collector.gaps().len(), 1, "the hole is a real gap");
    }

    #[test]
    fn bounded_collector_reports_overflow_via_subscription() {
        let broker = Broker::new();
        let mut collector = Collector::attach_bounded(&broker, "#".parse().unwrap(), 2);
        for i in 0..5 {
            broker.publish(&"x".parse().unwrap(), Payload::new(i as f64, SimTime::ZERO));
        }
        let mut db = TimeSeriesStore::new();
        assert_eq!(collector.pump(&mut db), 2);
        assert_eq!(collector.subscription().dropped(), 3);
    }

    #[test]
    fn threaded_collector_ingests_until_disconnect() {
        let broker = Broker::new();
        let collector = Collector::attach(&broker, "#".parse().unwrap());
        let store = Arc::new(Mutex::new(TimeSeriesStore::new()));
        let handle = collector.spawn(store.clone());
        for i in 0..100u64 {
            broker.publish(
                &"series".parse().unwrap(),
                Payload::new(i as f64, SimTime::from_secs(i)),
            );
        }
        drop(broker); // closes the subscription channel
        let ingested = handle.join().unwrap();
        assert_eq!(ingested, 100);
        assert_eq!(store.lock().point_count(), 100);
    }
}
