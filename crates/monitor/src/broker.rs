//! The MQTT-style broker at the heart of the ExaMon transport layer.
//!
//! Thread-safe topic-tree pub/sub: plugins publish from sampling threads,
//! collectors drain subscriptions into the time-series store. QoS 0
//! (fire-and-forget) semantics, matching ExaMon's MQTT usage.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::RwLock;

use crate::payload::Payload;
use crate::topic::{Topic, TopicFilter};

/// A message as delivered to subscribers.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishedMessage {
    /// The concrete topic it was published under.
    pub topic: Topic,
    /// The decoded payload.
    pub payload: Payload,
}

/// Identifies a subscription for unsubscribe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(u64);

/// A live subscription handle; drop it (or unsubscribe) to stop receiving.
#[derive(Debug)]
pub struct Subscription {
    id: SubscriptionId,
    filter: TopicFilter,
    rx: Receiver<PublishedMessage>,
}

impl Subscription {
    /// The subscription id.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// The filter subscribed to.
    pub fn filter(&self) -> &TopicFilter {
        &self.filter
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<PublishedMessage> {
        match self.rx.try_recv() {
            Ok(msg) => Some(msg),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<PublishedMessage> {
        let mut out = Vec::new();
        while let Some(m) = self.try_recv() {
            out.push(m);
        }
        out
    }

    /// Blocking receive (used by collector threads).
    pub fn recv(&self) -> Option<PublishedMessage> {
        self.rx.recv().ok()
    }
}

#[derive(Debug)]
struct SubEntry {
    id: SubscriptionId,
    filter: TopicFilter,
    tx: Sender<PublishedMessage>,
}

/// Broker counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrokerStats {
    /// Messages published.
    pub published: u64,
    /// Deliveries fanned out (one per matching subscriber).
    pub delivered: u64,
}

/// The broker.
///
/// # Examples
///
/// ```
/// use cimone_monitor::broker::Broker;
/// use cimone_monitor::payload::Payload;
/// use cimone_soc::units::SimTime;
///
/// let broker = Broker::new();
/// let sub = broker.subscribe("sensors/#".parse()?);
/// broker.publish(&"sensors/temp".parse()?, Payload::new(48.0, SimTime::ZERO));
/// assert_eq!(sub.try_recv().unwrap().payload.value, 48.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Broker {
    subs: RwLock<Vec<SubEntry>>,
    next_id: AtomicU64,
    published: AtomicU64,
    delivered: AtomicU64,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Broker::default()
    }

    /// Subscribes to `filter`.
    pub fn subscribe(&self, filter: TopicFilter) -> Subscription {
        let id = SubscriptionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = unbounded();
        self.subs.write().push(SubEntry {
            id,
            filter: filter.clone(),
            tx,
        });
        Subscription { id, filter, rx }
    }

    /// Removes a subscription; returns whether it existed.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let mut subs = self.subs.write();
        let before = subs.len();
        subs.retain(|s| s.id != id);
        subs.len() != before
    }

    /// Publishes `payload` under `topic`; returns the number of
    /// subscribers it reached. Dead subscriptions (dropped receivers) are
    /// pruned lazily.
    pub fn publish(&self, topic: &Topic, payload: Payload) -> usize {
        self.published.fetch_add(1, Ordering::Relaxed);
        let mut reached = 0;
        let mut dead = Vec::new();
        {
            let subs = self.subs.read();
            for sub in subs.iter() {
                if sub.filter.matches(topic) {
                    let msg = PublishedMessage {
                        topic: topic.clone(),
                        payload,
                    };
                    if sub.tx.send(msg).is_ok() {
                        reached += 1;
                    } else {
                        dead.push(sub.id);
                    }
                }
            }
        }
        if !dead.is_empty() {
            self.subs.write().retain(|s| !dead.contains(&s.id));
        }
        self.delivered.fetch_add(reached as u64, Ordering::Relaxed);
        reached
    }

    /// Current counters.
    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            published: self.published.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
        }
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subs.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimone_soc::units::SimTime;

    fn t(s: &str) -> Topic {
        s.parse().unwrap()
    }

    fn f(s: &str) -> TopicFilter {
        s.parse().unwrap()
    }

    #[test]
    fn routing_respects_filters() {
        let broker = Broker::new();
        let all = broker.subscribe(f("#"));
        let temps = broker.subscribe(f("node/+/temp"));
        broker.publish(&t("node/a/temp"), Payload::new(1.0, SimTime::ZERO));
        broker.publish(&t("node/a/power"), Payload::new(2.0, SimTime::ZERO));
        assert_eq!(all.drain().len(), 2);
        let got = temps.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload.value, 1.0);
    }

    #[test]
    fn publish_reports_reach() {
        let broker = Broker::new();
        let _a = broker.subscribe(f("x/#"));
        let _b = broker.subscribe(f("x/y"));
        let reach = broker.publish(&t("x/y"), Payload::new(0.0, SimTime::ZERO));
        assert_eq!(reach, 2);
        assert_eq!(broker.publish(&t("z"), Payload::new(0.0, SimTime::ZERO)), 0);
        let stats = broker.stats();
        assert_eq!(stats.published, 2);
        assert_eq!(stats.delivered, 2);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let broker = Broker::new();
        let sub = broker.subscribe(f("#"));
        assert!(broker.unsubscribe(sub.id()));
        assert!(!broker.unsubscribe(sub.id()));
        broker.publish(&t("a"), Payload::new(0.0, SimTime::ZERO));
        assert!(sub.try_recv().is_none());
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn dropped_subscribers_are_pruned_on_publish() {
        let broker = Broker::new();
        let sub = broker.subscribe(f("#"));
        drop(sub);
        assert_eq!(broker.subscription_count(), 1);
        broker.publish(&t("a"), Payload::new(0.0, SimTime::ZERO));
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn concurrent_publishers_do_not_lose_messages() {
        let broker = std::sync::Arc::new(Broker::new());
        let sub = broker.subscribe(f("#"));
        let mut handles = Vec::new();
        for thread in 0..4 {
            let b = broker.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    b.publish(
                        &format!("t/{thread}/{i}").parse().unwrap(),
                        Payload::new(i as f64, SimTime::ZERO),
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sub.drain().len(), 1000);
        assert_eq!(broker.stats().published, 1000);
    }
}
