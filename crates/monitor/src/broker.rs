//! The MQTT-style broker at the heart of the ExaMon transport layer.
//!
//! Thread-safe topic-tree pub/sub: plugins publish from sampling threads,
//! collectors drain subscriptions into the time-series store. QoS 0
//! (fire-and-forget) semantics, matching ExaMon's MQTT usage.
//!
//! Routing is precompiled: the wildcard filter match for each
//! `(TopicId, SubscriptionId)` pair is computed once and cached as a
//! per-topic subscriber list, invalidated whenever the subscription set
//! changes (subscribe, unsubscribe, dead-subscriber pruning). On the
//! steady-state path a publish is a route-table hit plus one `VecDeque`
//! push per matched subscriber — no string matching, no topic deep-clone,
//! and (for pre-registered topics) no heap allocation at all.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::{Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::payload::Payload;
use crate::topic::{Topic, TopicFilter};

/// A message as delivered to subscribers.
///
/// `Topic` is an interned handle, so the message is two words of payload
/// plus a reference-count bump — no per-delivery string cloning.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishedMessage {
    /// The concrete topic it was published under.
    pub topic: Topic,
    /// The decoded payload.
    pub payload: Payload,
}

/// Identifies a subscription for unsubscribe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(u64);

/// Shared queue state between the broker's send side and a subscription.
#[derive(Debug)]
struct QueueState {
    buf: VecDeque<PublishedMessage>,
    /// Messages lost to bounded-queue overflow.
    dropped: u64,
    /// Set when the broker side goes away (unsubscribe, prune, broker
    /// drop): `recv` returns `None` once the buffer is drained.
    closed: bool,
    /// Set when the `Subscription` handle is dropped: subsequent sends
    /// count as drops and the entry is pruned.
    receiver_gone: bool,
    /// Receivers blocked in `recv`. Senders skip the condvar notify (a
    /// futex syscall even with nobody waiting) unless this is non-zero —
    /// the simulation's poll-style consumers never block, so the
    /// steady-state send path stays entirely in user space.
    waiters: u32,
}

/// A subscription's message queue. A plain locked ring buffer: the deque
/// keeps its capacity across pushes and pops, so steady-state delivery
/// allocates nothing (unlike a segmented channel).
#[derive(Debug)]
struct SubQueue {
    // std primitives rather than the parking_lot shim: blocking `recv`
    // needs a condvar, which the shim does not provide.
    state: StdMutex<QueueState>,
    ready: Condvar,
}

enum SendOutcome {
    Delivered,
    Full,
    Dead,
}

impl SubQueue {
    fn new() -> Arc<SubQueue> {
        Arc::new(SubQueue {
            state: StdMutex::new(QueueState {
                buf: VecDeque::new(),
                dropped: 0,
                closed: false,
                receiver_gone: false,
                waiters: 0,
            }),
            ready: Condvar::new(),
        })
    }

    fn lock(&self) -> StdMutexGuard<'_, QueueState> {
        self.state.lock().expect("subscription queue poisoned")
    }

    fn send(&self, msg: PublishedMessage, capacity: Option<usize>) -> SendOutcome {
        let mut state = self.lock();
        if state.receiver_gone {
            return SendOutcome::Dead;
        }
        if let Some(cap) = capacity {
            if state.buf.len() >= cap {
                state.dropped += 1;
                return SendOutcome::Full;
            }
        }
        state.buf.push_back(msg);
        let waiting = state.waiters > 0;
        drop(state);
        if waiting {
            self.ready.notify_one();
        }
        SendOutcome::Delivered
    }

    fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        let waiting = state.waiters > 0;
        drop(state);
        if waiting {
            self.ready.notify_all();
        }
    }
}

/// A live subscription handle; drop it (or unsubscribe) to stop receiving.
#[derive(Debug)]
pub struct Subscription {
    id: SubscriptionId,
    filter: TopicFilter,
    queue: Arc<SubQueue>,
}

impl Subscription {
    /// The subscription id.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// The filter subscribed to.
    pub fn filter(&self) -> &TopicFilter {
        &self.filter
    }

    /// Messages currently queued and not yet received.
    pub fn queued(&self) -> usize {
        self.queue.lock().buf.len()
    }

    /// Messages this subscription lost because its bounded queue was full
    /// when the broker tried to deliver. Always zero for unbounded
    /// subscriptions.
    pub fn dropped(&self) -> u64 {
        self.queue.lock().dropped
    }

    /// Non-blocking receive. Already-queued messages remain receivable
    /// after the broker side closes.
    pub fn try_recv(&self) -> Option<PublishedMessage> {
        self.queue.lock().buf.pop_front()
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<PublishedMessage> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Drains everything currently queued into `out` under a single lock
    /// acquisition (one mutex round-trip per batch instead of one per
    /// message); returns how many messages were appended. The queue keeps
    /// its capacity, so a warm steady-state drain allocates nothing.
    pub fn drain_into(&self, out: &mut Vec<PublishedMessage>) -> usize {
        let mut state = self.queue.lock();
        let n = state.buf.len();
        out.extend(state.buf.drain(..));
        n
    }

    /// Drains everything currently queued, calling `f` on each message,
    /// under a single lock acquisition — the copy-free variant of
    /// [`drain_into`](Subscription::drain_into) for consumers that ingest
    /// in place. `f` must not publish to or (un)subscribe from the broker
    /// (the queue lock is held across the calls). Returns how many
    /// messages were consumed.
    pub fn drain_each(&self, mut f: impl FnMut(PublishedMessage)) -> usize {
        let mut state = self.queue.lock();
        let n = state.buf.len();
        for msg in state.buf.drain(..) {
            f(msg);
        }
        n
    }

    /// Blocking receive (used by collector threads); `None` once the
    /// broker side is gone and the queue is drained.
    pub fn recv(&self) -> Option<PublishedMessage> {
        let mut state = self.queue.lock();
        loop {
            if let Some(msg) = state.buf.pop_front() {
                return Some(msg);
            }
            if state.closed {
                return None;
            }
            state.waiters += 1;
            state = self
                .queue
                .ready
                .wait(state)
                .expect("subscription queue poisoned");
            state.waiters -= 1;
        }
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        let mut state = self.queue.lock();
        state.receiver_gone = true;
        state.buf.clear();
    }
}

#[derive(Debug)]
struct SubEntry {
    id: SubscriptionId,
    filter: TopicFilter,
    queue: Arc<SubQueue>,
    /// Queue bound; `None` means unbounded (the seed behaviour).
    capacity: Option<usize>,
}

impl Drop for SubEntry {
    fn drop(&mut self) {
        // Covers unsubscribe, dead-subscriber pruning and broker drop:
        // a blocked `recv` wakes up and observes the closed queue.
        self.queue.close();
    }
}

/// Broker counters.
///
/// For every `publish`, each matching subscriber accounts for exactly one
/// of `delivered` or `dropped` — the books stay balanced even when
/// subscribers disconnect mid-burst or bounded queues overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrokerStats {
    /// Messages published.
    pub published: u64,
    /// Deliveries fanned out (one per matching subscriber).
    pub delivered: u64,
    /// Matched deliveries that were not made: the subscriber's bounded
    /// queue was full, or the subscriber disconnected between matching
    /// and delivery.
    pub dropped: u64,
    /// Whole publishes suppressed by injected message loss
    /// ([`Broker::set_loss`]) before any fan-out.
    pub suppressed: u64,
}

/// Seeded wire-loss injection state.
#[derive(Debug)]
struct LossInjection {
    rate: f64,
    rng: StdRng,
}

/// The subscription set and its compiled routing table, guarded together
/// so a cached route can never outlive the subscription list it indexes.
#[derive(Debug, Default)]
struct SubTable {
    subs: Vec<SubEntry>,
    /// Indexed directly by `TopicId` value (interned ids are small and
    /// dense, so this is a flat array rather than a hash map — a route
    /// hit is one bounds check and a pointer load, no hashing). Each
    /// present entry is the ascending indices into `subs` of matching
    /// subscriptions. Cleared wholesale on any subscription-set change;
    /// recompiled lazily per topic on the next publish.
    routes: Vec<Option<Vec<u32>>>,
}

impl SubTable {
    fn compute_route(&self, topic: &Topic) -> Vec<u32> {
        self.subs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.filter.matches(topic))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn route_get(&self, tid: u32) -> Option<&Vec<u32>> {
        self.routes.get(tid as usize).and_then(Option::as_ref)
    }

    fn route_has(&self, tid: u32) -> bool {
        self.route_get(tid).is_some()
    }

    fn route_insert(&mut self, tid: u32, route: Vec<u32>) {
        let idx = tid as usize;
        if idx >= self.routes.len() {
            self.routes.resize_with(idx + 1, || None);
        }
        self.routes[idx] = Some(route);
    }

    fn routes_compiled(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }
}

/// The broker.
///
/// # Examples
///
/// ```
/// use cimone_monitor::broker::Broker;
/// use cimone_monitor::payload::Payload;
/// use cimone_soc::units::SimTime;
///
/// let broker = Broker::new();
/// let sub = broker.subscribe("sensors/#".parse()?);
/// broker.publish(&"sensors/temp".parse()?, Payload::new(48.0, SimTime::ZERO));
/// assert_eq!(sub.try_recv().unwrap().payload.value, 48.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Broker {
    table: RwLock<SubTable>,
    next_id: AtomicU64,
    published: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    suppressed: AtomicU64,
    loss: Mutex<Option<LossInjection>>,
    /// Recycled touched-lane scratch for [`Broker::publish_batch_serial`]
    /// — keeps the steady-state batch publish allocation-free.
    touched_scratch: Mutex<Vec<u32>>,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Broker::default()
    }

    /// Subscribes to `filter` with an unbounded queue.
    pub fn subscribe(&self, filter: TopicFilter) -> Subscription {
        self.subscribe_inner(filter, None)
    }

    /// Subscribes to `filter` with a queue bounded to `capacity` messages:
    /// deliveries while the queue is full are counted as drops (on the
    /// subscription and in [`BrokerStats::dropped`]) instead of growing
    /// memory without bound — the fate of a slow ExaMon consumer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn subscribe_bounded(&self, filter: TopicFilter, capacity: usize) -> Subscription {
        assert!(capacity > 0, "a bounded subscription needs capacity >= 1");
        self.subscribe_inner(filter, Some(capacity))
    }

    fn subscribe_inner(&self, filter: TopicFilter, capacity: Option<usize>) -> Subscription {
        let id = SubscriptionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let queue = SubQueue::new();
        let mut table = self.table.write();
        table.subs.push(SubEntry {
            id,
            filter: filter.clone(),
            queue: queue.clone(),
            capacity,
        });
        table.routes.clear();
        drop(table);
        Subscription { id, filter, queue }
    }

    /// Removes a subscription; returns whether it existed.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let mut table = self.table.write();
        let before = table.subs.len();
        table.subs.retain(|s| s.id != id);
        let removed = table.subs.len() != before;
        if removed {
            table.routes.clear();
        }
        removed
    }

    /// Publishes `payload` under `topic`; returns the number of
    /// subscribers it reached. Dead subscriptions (dropped receivers) are
    /// pruned lazily; a matched-but-undelivered message — bounded queue
    /// full, or receiver gone — counts as a drop, so
    /// `delivered + dropped` covers every matched subscriber.
    pub fn publish(&self, topic: &Topic, payload: Payload) -> usize {
        self.published.fetch_add(1, Ordering::Relaxed);
        {
            let mut loss = self.loss.lock();
            if let Some(inj) = loss.as_mut() {
                let rate = inj.rate;
                if rate > 0.0 && inj.rng.gen_bool(rate) {
                    self.suppressed.fetch_add(1, Ordering::Relaxed);
                    return 0;
                }
            }
        }
        let tid = topic.id().as_u32();
        let mut reached = 0;
        let mut dropped = 0u64;
        let mut dead: Vec<SubscriptionId> = Vec::new();
        {
            let table = self.table.read();
            if let Some(route) = table.route_get(tid) {
                deliver(
                    &table.subs,
                    route,
                    topic,
                    payload,
                    &mut reached,
                    &mut dropped,
                    &mut dead,
                );
            } else {
                drop(table);
                // First sight of this topic since the last subscription
                // change: compile its route under the write lock.
                let mut table = self.table.write();
                let route = table.compute_route(topic);
                deliver(
                    &table.subs,
                    &route,
                    topic,
                    payload,
                    &mut reached,
                    &mut dropped,
                    &mut dead,
                );
                table.route_insert(tid, route);
            }
        }
        if !dead.is_empty() {
            self.prune(&mut dead);
        }
        self.delivered.fetch_add(reached as u64, Ordering::Relaxed);
        self.dropped.fetch_add(dropped, Ordering::Relaxed);
        reached
    }

    /// Publishes a batch of messages serially, with observable semantics
    /// identical to calling [`publish`](Broker::publish) once per message
    /// in order: the same loss-RNG draw sequence, the same per-queue
    /// delivery order, and the same accounting — including the lazy prune
    /// after a dead subscriber's first hit (later messages in the batch
    /// skip it, exactly as the one-by-one sequence would after pruning).
    /// The broker locks are amortised over the whole batch, and `messages`
    /// is drained so the caller's buffer can be reused allocation-free.
    /// Returns the total number of deliveries made.
    pub fn publish_batch_serial(&self, messages: &mut Vec<(Topic, Payload)>) -> usize {
        if messages.is_empty() {
            return 0;
        }
        self.published
            .fetch_add(messages.len() as u64, Ordering::Relaxed);
        {
            let mut loss = self.loss.lock();
            if let Some(inj) = loss.as_mut() {
                if inj.rate > 0.0 {
                    let rate = inj.rate;
                    let mut suppressed = 0u64;
                    // In-place retain keeps the draws in message order.
                    messages.retain(|_| {
                        if inj.rng.gen_bool(rate) {
                            suppressed += 1;
                            false
                        } else {
                            true
                        }
                    });
                    self.suppressed.fetch_add(suppressed, Ordering::Relaxed);
                }
            }
        }
        if messages.is_empty() {
            return 0;
        }
        let mut reached = 0usize;
        let mut dropped = 0u64;
        let mut dead: Vec<SubscriptionId> = Vec::new();
        // Sub indices found dead during this batch: the one-by-one
        // sequence would have pruned them, so later messages skip them.
        let mut dead_idx: Vec<u32> = Vec::new();
        // The touched-lane scratch is recycled across calls so the
        // steady-state batch publish never allocates.
        let mut touched = std::mem::take(&mut *self.touched_scratch.lock());
        {
            // One walk over the batch collects the sorted set of touched
            // subscriber indices and detects uncompiled routes at the same
            // time (returns false on the first miss).
            fn collect_touched(
                table: &SubTable,
                messages: &[(Topic, Payload)],
                touched: &mut Vec<u32>,
            ) -> bool {
                touched.clear();
                for (topic, _) in messages {
                    match table.route_get(topic.id().as_u32()) {
                        Some(route) => {
                            for &i in route {
                                if let Err(pos) = touched.binary_search(&i) {
                                    touched.insert(pos, i);
                                }
                            }
                        }
                        None => return false,
                    }
                }
                true
            }
            let mut table = self.table.read();
            let mut all_cached = collect_touched(&table, messages, &mut touched);
            if !all_cached {
                // First sight of at least one topic since the last
                // subscription change: compile the missing routes under
                // the write lock, then retry the single collection walk.
                drop(table);
                {
                    let mut table = self.table.write();
                    for (topic, _) in messages.iter() {
                        let tid = topic.id().as_u32();
                        if !table.route_has(tid) {
                            let route = table.compute_route(topic);
                            table.route_insert(tid, route);
                        }
                    }
                }
                table = self.table.read();
                all_cached = collect_touched(&table, messages, &mut touched);
            }
            if all_cached {
                // Fast path: every route is cached, so the destination
                // queues are known up front. Lock each queue once for
                // the whole batch: one mutex round-trip per queue
                // instead of one per delivery.
                struct Lane<'a> {
                    sub: &'a SubEntry,
                    state: StdMutexGuard<'a, QueueState>,
                    pushed: usize,
                }
                /// The generic per-message walk: dead-subscriber and
                /// capacity checks per delivery, lanes addressed through
                /// the sorted touched set.
                #[allow(clippy::too_many_arguments)]
                fn deliver_batch(
                    table: &SubTable,
                    touched: &[u32],
                    messages: &mut Vec<(Topic, Payload)>,
                    lanes: &mut [Lane<'_>],
                    reached: &mut usize,
                    dropped: &mut u64,
                    dead: &mut Vec<SubscriptionId>,
                    dead_idx: &mut Vec<u32>,
                ) {
                    for (topic, payload) in messages.drain(..) {
                        let route = table.route_get(topic.id().as_u32()).expect("checked above");
                        for &i in route {
                            if dead_idx.contains(&i) {
                                continue;
                            }
                            let lane = &mut lanes
                                [touched.binary_search(&i).expect("touched covers routes")];
                            if lane.state.receiver_gone {
                                *dropped += 1;
                                dead.push(lane.sub.id);
                                dead_idx.push(i);
                                continue;
                            }
                            if let Some(cap) = lane.sub.capacity {
                                if lane.state.buf.len() >= cap {
                                    lane.state.dropped += 1;
                                    *dropped += 1;
                                    continue;
                                }
                            }
                            lane.state
                                .buf
                                .push_back(PublishedMessage { topic, payload });
                            lane.pushed += 1;
                            *reached += 1;
                        }
                    }
                }
                fn finish(lane: Lane<'_>) {
                    let waiting = lane.pushed > 0 && lane.state.waiters > 0;
                    drop(lane.state);
                    if waiting {
                        lane.sub.queue.ready.notify_all();
                    }
                }
                if let [only] = touched.as_slice() {
                    // One destination queue: hold its lane on the stack —
                    // no per-batch lane vector to allocate.
                    let sub = &table.subs[*only as usize];
                    let mut lane = Lane {
                        sub,
                        state: sub.queue.lock(),
                        pushed: 0,
                    };
                    if lane.sub.capacity.is_none() && !lane.state.receiver_gone {
                        // Single live unbounded destination — the engine's
                        // steady state, where one collector subscribes to
                        // everything. Each route is either empty or exactly
                        // this lane, so the per-delivery dead/capacity
                        // checks hoist out of the loop entirely.
                        for (topic, payload) in messages.drain(..) {
                            let route =
                                table.route_get(topic.id().as_u32()).expect("checked above");
                            if route.is_empty() {
                                continue;
                            }
                            lane.state
                                .buf
                                .push_back(PublishedMessage { topic, payload });
                            lane.pushed += 1;
                            reached += 1;
                        }
                    } else {
                        deliver_batch(
                            &table,
                            &touched,
                            messages,
                            std::slice::from_mut(&mut lane),
                            &mut reached,
                            &mut dropped,
                            &mut dead,
                            &mut dead_idx,
                        );
                    }
                    finish(lane);
                } else {
                    let mut lanes: Vec<Lane<'_>> = touched
                        .iter()
                        .map(|&i| {
                            let sub = &table.subs[i as usize];
                            Lane {
                                sub,
                                state: sub.queue.lock(),
                                pushed: 0,
                            }
                        })
                        .collect();
                    deliver_batch(
                        &table,
                        &touched,
                        messages,
                        &mut lanes,
                        &mut reached,
                        &mut dropped,
                        &mut dead,
                        &mut dead_idx,
                    );
                    for lane in lanes {
                        finish(lane);
                    }
                }
            } else {
                // Cache cleared by a concurrent (un)subscribe between the
                // compile pass and here: fall back to per-message sends
                // with on-the-fly route computation.
                let mut fallback: Vec<u32>;
                for (topic, payload) in messages.iter() {
                    let route: &[u32] = match table.route_get(topic.id().as_u32()) {
                        Some(route) => route,
                        None => {
                            fallback = table.compute_route(topic);
                            &fallback
                        }
                    };
                    for &i in route {
                        if dead_idx.contains(&i) {
                            continue;
                        }
                        let sub = &table.subs[i as usize];
                        let msg = PublishedMessage {
                            topic: *topic,
                            payload: *payload,
                        };
                        match sub.queue.send(msg, sub.capacity) {
                            SendOutcome::Delivered => reached += 1,
                            SendOutcome::Full => dropped += 1,
                            SendOutcome::Dead => {
                                dropped += 1;
                                dead.push(sub.id);
                                dead_idx.push(i);
                            }
                        }
                    }
                }
            }
        }
        touched.clear();
        *self.touched_scratch.lock() = touched;
        if !dead.is_empty() {
            self.prune(&mut dead);
        }
        self.delivered.fetch_add(reached as u64, Ordering::Relaxed);
        self.dropped.fetch_add(dropped, Ordering::Relaxed);
        messages.clear();
        reached
    }

    /// Publishes a batch of messages with the subscriber fan-out spread
    /// over `pool`, preserving [`publish`](Broker::publish) semantics
    /// exactly: loss-injection RNG draws happen serially in message order
    /// (the RNG stream is identical to publishing one by one), each
    /// subscription is owned by exactly one task which walks the
    /// surviving messages in order (per-subscription delivery order is
    /// preserved), and dead subscriptions are pruned after the barrier.
    /// Returns the total number of deliveries made.
    pub fn publish_batch(
        &self,
        messages: Vec<(Topic, Payload)>,
        pool: &cimone_kernels::pool::WorkerPool,
    ) -> usize {
        if messages.is_empty() {
            return 0;
        }
        self.published
            .fetch_add(messages.len() as u64, Ordering::Relaxed);
        // Serial loss draws, in message order — one RNG consumption per
        // message, exactly as a sequence of `publish` calls would make.
        let survivors: Vec<(Topic, Payload)> = {
            let mut loss = self.loss.lock();
            match loss.as_mut() {
                Some(inj) if inj.rate > 0.0 => {
                    let rate = inj.rate;
                    let mut kept = Vec::with_capacity(messages.len());
                    let mut suppressed = 0u64;
                    for msg in messages {
                        if inj.rng.gen_bool(rate) {
                            suppressed += 1;
                        } else {
                            kept.push(msg);
                        }
                    }
                    self.suppressed.fetch_add(suppressed, Ordering::Relaxed);
                    kept
                }
                _ => messages,
            }
        };
        if survivors.is_empty() {
            return 0;
        }
        let mut reached_total = 0usize;
        let mut dropped_total = 0u64;
        let mut dead: Vec<SubscriptionId> = Vec::new();
        {
            // Compile any missing routes up front under a short write
            // lock, then fan out under the read lock. A concurrent
            // (un)subscribe between the two can clear the cache again;
            // tiles fall back to an uncached local route in that case.
            let missing = {
                let table = self.table.read();
                survivors
                    .iter()
                    .any(|(topic, _)| !table.route_has(topic.id().as_u32()))
            };
            if missing {
                let mut table = self.table.write();
                for (topic, _) in &survivors {
                    let tid = topic.id().as_u32();
                    if !table.route_has(tid) {
                        let route = table.compute_route(topic);
                        table.route_insert(tid, route);
                    }
                }
            }
            let table = self.table.read();
            let table: &SubTable = &table;
            let subs = &table.subs[..];
            let survivors = &survivors[..];
            let tiles = pool.even_chunks(subs.len());
            let mut results: Vec<(usize, u64, Vec<SubscriptionId>)> =
                vec![Default::default(); tiles.len()];
            pool.scope(|scope| {
                for (&(s0, s1), result) in tiles.iter().zip(results.iter_mut()) {
                    scope.spawn(move || {
                        let (reached, dropped, dead) = result;
                        let mut fallback: Vec<u32>;
                        // Sub indices (within this tile) found dead during
                        // the batch: the one-by-one publish sequence would
                        // have pruned them, so later messages skip them.
                        let mut tile_dead: Vec<u32> = Vec::new();
                        for (topic, payload) in survivors {
                            let route: &[u32] = match table.route_get(topic.id().as_u32()) {
                                Some(route) => route,
                                None => {
                                    // Cache cleared by a concurrent
                                    // (un)subscribe after compilation.
                                    fallback = table.compute_route(topic);
                                    &fallback
                                }
                            };
                            // This task owns subs[s0..s1]; walk the slice
                            // of the (ascending) route inside the tile.
                            let lo = route.partition_point(|&i| (i as usize) < s0);
                            for &i in &route[lo..] {
                                if (i as usize) >= s1 {
                                    break;
                                }
                                if tile_dead.contains(&i) {
                                    continue;
                                }
                                let sub = &subs[i as usize];
                                let msg = PublishedMessage {
                                    topic: *topic,
                                    payload: *payload,
                                };
                                match sub.queue.send(msg, sub.capacity) {
                                    SendOutcome::Delivered => *reached += 1,
                                    SendOutcome::Full => *dropped += 1,
                                    SendOutcome::Dead => {
                                        *dropped += 1;
                                        dead.push(sub.id);
                                        tile_dead.push(i);
                                    }
                                }
                            }
                        }
                    });
                }
            });
            for (reached, dropped, mut tile_dead) in results {
                reached_total += reached;
                dropped_total += dropped;
                dead.append(&mut tile_dead);
            }
        }
        if !dead.is_empty() {
            self.prune(&mut dead);
        }
        self.delivered
            .fetch_add(reached_total as u64, Ordering::Relaxed);
        self.dropped.fetch_add(dropped_total, Ordering::Relaxed);
        reached_total
    }

    /// Removes dead subscriptions in one pass: sort + dedup the ids and
    /// binary-search during the retain, so pruning costs
    /// O((dead log dead) + subs log dead) instead of O(dead × subs).
    fn prune(&self, dead: &mut Vec<SubscriptionId>) {
        dead.sort_unstable();
        dead.dedup();
        let mut table = self.table.write();
        let before = table.subs.len();
        table.subs.retain(|s| dead.binary_search(&s.id).is_err());
        if table.subs.len() != before {
            table.routes.clear();
        }
    }

    /// Configures deterministic wire loss: each subsequent publish is
    /// suppressed with probability `rate`, driven by a RNG seeded with
    /// `seed` (identical seeds and traffic give identical loss patterns).
    /// A rate of `0.0` disables injection.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn set_loss(&self, rate: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&rate), "loss rate must be in [0, 1]");
        *self.loss.lock() = (rate > 0.0).then(|| LossInjection {
            rate,
            rng: StdRng::seed_from_u64(seed),
        });
    }

    /// Current counters.
    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            published: self.published.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            suppressed: self.suppressed.load(Ordering::Relaxed),
        }
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.table.read().subs.len()
    }

    /// Number of topics with a compiled route in the cache. Diagnostic:
    /// steady-state traffic over pre-registered topics holds this constant
    /// while every publish hits the cache.
    pub fn compiled_routes(&self) -> usize {
        self.table.read().routes_compiled()
    }
}

/// Delivers one message along a compiled route, updating the accounting
/// exactly as the legacy per-publish filter walk did.
fn deliver(
    subs: &[SubEntry],
    route: &[u32],
    topic: &Topic,
    payload: Payload,
    reached: &mut usize,
    dropped: &mut u64,
    dead: &mut Vec<SubscriptionId>,
) {
    for &i in route {
        let sub = &subs[i as usize];
        let msg = PublishedMessage {
            topic: *topic,
            payload,
        };
        match sub.queue.send(msg, sub.capacity) {
            SendOutcome::Delivered => *reached += 1,
            SendOutcome::Full => *dropped += 1,
            SendOutcome::Dead => {
                *dropped += 1;
                if !dead.contains(&sub.id) {
                    dead.push(sub.id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimone_soc::units::SimTime;

    fn t(s: &str) -> Topic {
        s.parse().unwrap()
    }

    fn f(s: &str) -> TopicFilter {
        s.parse().unwrap()
    }

    #[test]
    fn routing_respects_filters() {
        let broker = Broker::new();
        let all = broker.subscribe(f("#"));
        let temps = broker.subscribe(f("node/+/temp"));
        broker.publish(&t("node/a/temp"), Payload::new(1.0, SimTime::ZERO));
        broker.publish(&t("node/a/power"), Payload::new(2.0, SimTime::ZERO));
        assert_eq!(all.drain().len(), 2);
        let got = temps.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload.value, 1.0);
    }

    #[test]
    fn publish_reports_reach() {
        let broker = Broker::new();
        let _a = broker.subscribe(f("x/#"));
        let _b = broker.subscribe(f("x/y"));
        let reach = broker.publish(&t("x/y"), Payload::new(0.0, SimTime::ZERO));
        assert_eq!(reach, 2);
        assert_eq!(broker.publish(&t("z"), Payload::new(0.0, SimTime::ZERO)), 0);
        let stats = broker.stats();
        assert_eq!(stats.published, 2);
        assert_eq!(stats.delivered, 2);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let broker = Broker::new();
        let sub = broker.subscribe(f("#"));
        assert!(broker.unsubscribe(sub.id()));
        assert!(!broker.unsubscribe(sub.id()));
        broker.publish(&t("a"), Payload::new(0.0, SimTime::ZERO));
        assert!(sub.try_recv().is_none());
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn dropped_subscribers_are_pruned_on_publish() {
        let broker = Broker::new();
        let sub = broker.subscribe(f("#"));
        drop(sub);
        assert_eq!(broker.subscription_count(), 1);
        broker.publish(&t("a"), Payload::new(0.0, SimTime::ZERO));
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn route_cache_compiles_once_and_invalidates_on_change() {
        let broker = Broker::new();
        let _all = broker.subscribe(f("route/#"));
        assert_eq!(broker.compiled_routes(), 0);
        for i in 0..10 {
            broker.publish(&t("route/x"), Payload::new(i as f64, SimTime::ZERO));
        }
        assert_eq!(broker.compiled_routes(), 1, "one topic, one compile");
        broker.publish(&t("route/y"), Payload::new(0.0, SimTime::ZERO));
        assert_eq!(broker.compiled_routes(), 2);
        // A new subscription changes what existing topics should match:
        // the whole cache is invalidated, then recompiled per topic.
        let narrow = broker.subscribe(f("route/y"));
        assert_eq!(broker.compiled_routes(), 0);
        broker.publish(&t("route/y"), Payload::new(1.0, SimTime::ZERO));
        assert_eq!(narrow.drain().len(), 1);
        assert_eq!(broker.compiled_routes(), 1);
        // Unsubscribe invalidates too.
        broker.unsubscribe(narrow.id());
        assert_eq!(broker.compiled_routes(), 0);
        broker.publish(&t("route/y"), Payload::new(2.0, SimTime::ZERO));
        assert_eq!(broker.compiled_routes(), 1);
    }

    #[test]
    fn many_dead_subscribers_are_pruned_in_one_publish() {
        // Regression test for the O(dead × subs) prune: a large batch of
        // dropped receivers must be pruned in one pass with balanced
        // accounting.
        let broker = Broker::new();
        let keeper = broker.subscribe(f("#"));
        let quitters: Vec<Subscription> = (0..500).map(|_| broker.subscribe(f("#"))).collect();
        drop(quitters);
        assert_eq!(broker.subscription_count(), 501);
        let reached = broker.publish(&t("a"), Payload::new(1.0, SimTime::ZERO));
        assert_eq!(reached, 1);
        assert_eq!(broker.subscription_count(), 1);
        let stats = broker.stats();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.dropped, 500, "each dead subscriber counts once");
        assert_eq!(keeper.drain().len(), 1);
        // The next publish walks only the surviving subscription.
        broker.publish(&t("a"), Payload::new(2.0, SimTime::ZERO));
        assert_eq!(broker.stats().dropped, 500);
    }

    #[test]
    fn injected_loss_is_seeded_and_counted() {
        let run = |seed: u64| {
            let broker = Broker::new();
            let sub = broker.subscribe(f("#"));
            broker.set_loss(0.4, seed);
            for i in 0..100 {
                broker.publish(&t("x"), Payload::new(i as f64, SimTime::ZERO));
            }
            (sub.drain().len(), broker.stats())
        };
        let (got_a, stats_a) = run(5);
        let (got_b, stats_b) = run(5);
        assert_eq!(got_a, got_b, "same seed, same loss pattern");
        assert_eq!(stats_a, stats_b);
        assert_eq!(stats_a.published, 100);
        assert_eq!(stats_a.suppressed + got_a as u64, 100);
        assert!(stats_a.suppressed > 10);
        // Disabling restores full delivery.
        let broker = Broker::new();
        let sub = broker.subscribe(f("#"));
        broker.set_loss(1.0, 1);
        broker.set_loss(0.0, 1);
        broker.publish(&t("x"), Payload::new(0.0, SimTime::ZERO));
        assert_eq!(sub.drain().len(), 1);
    }

    #[test]
    fn bounded_subscription_drops_overflow_and_accounts_for_it() {
        let broker = Broker::new();
        let sub = broker.subscribe_bounded(f("#"), 3);
        for i in 0..5 {
            broker.publish(&t("x"), Payload::new(i as f64, SimTime::ZERO));
        }
        assert_eq!(sub.queued(), 3);
        assert_eq!(sub.dropped(), 2);
        let stats = broker.stats();
        assert_eq!(stats.published, 5);
        assert_eq!(stats.delivered, 3);
        assert_eq!(stats.dropped, 2);
        // Draining frees capacity for new deliveries.
        assert_eq!(sub.drain().len(), 3);
        assert_eq!(sub.queued(), 0);
        broker.publish(&t("x"), Payload::new(9.0, SimTime::ZERO));
        assert_eq!(sub.try_recv().unwrap().payload.value, 9.0);
    }

    #[test]
    fn delivery_accounting_balances_under_disconnect() {
        let broker = Broker::new();
        let keeper = broker.subscribe(f("#"));
        let quitter = broker.subscribe(f("#"));
        broker.publish(&t("a"), Payload::new(1.0, SimTime::ZERO));
        drop(quitter);
        // The dropped receiver is detected on the next publish: that
        // delivery is accounted as dropped, not silently lost.
        broker.publish(&t("b"), Payload::new(2.0, SimTime::ZERO));
        broker.publish(&t("c"), Payload::new(3.0, SimTime::ZERO));
        let stats = broker.stats();
        assert_eq!(stats.published, 3);
        assert_eq!(stats.delivered, 4); // keeper x3 + quitter x1
        assert_eq!(stats.dropped, 1); // quitter's missed second message
        assert_eq!(keeper.drain().len(), 3);
        assert_eq!(broker.subscription_count(), 1);
    }

    #[test]
    fn publish_batch_matches_sequential_publishes_exactly() {
        use cimone_kernels::pool::WorkerPool;
        let pool = WorkerPool::new(4);
        let messages: Vec<(Topic, Payload)> = (0..200)
            .map(|i| {
                (
                    t(&format!("node/{}/temp", i % 7)),
                    Payload::new(i as f64, SimTime::from_secs(i)),
                )
            })
            .collect();
        let run_seq = || {
            let broker = Broker::new();
            let all = broker.subscribe(f("#"));
            let some = broker.subscribe(f("node/3/+"));
            let bounded = broker.subscribe_bounded(f("#"), 10);
            broker.set_loss(0.3, 99);
            for (topic, payload) in &messages {
                broker.publish(topic, *payload);
            }
            (all.drain(), some.drain(), bounded.drain(), broker.stats())
        };
        let run_batch = || {
            let broker = Broker::new();
            let all = broker.subscribe(f("#"));
            let some = broker.subscribe(f("node/3/+"));
            let bounded = broker.subscribe_bounded(f("#"), 10);
            broker.set_loss(0.3, 99);
            broker.publish_batch(messages.clone(), &pool);
            (all.drain(), some.drain(), bounded.drain(), broker.stats())
        };
        let (sa, ss, sb, sst) = run_seq();
        let (ba, bs, bb, bst) = run_batch();
        assert_eq!(sa, ba, "wildcard subscriber sees identical stream");
        assert_eq!(ss, bs, "filtered subscriber sees identical stream");
        assert_eq!(sb, bb, "bounded subscriber drops identically");
        assert_eq!(sst, bst, "stats balance identically");
    }

    #[test]
    fn publish_batch_prunes_dead_subscribers() {
        use cimone_kernels::pool::WorkerPool;
        let pool = WorkerPool::new(2);
        let broker = Broker::new();
        let keeper = broker.subscribe(f("#"));
        let quitter = broker.subscribe(f("#"));
        drop(quitter);
        let batch: Vec<(Topic, Payload)> = (0..5)
            .map(|i| (t("x"), Payload::new(i as f64, SimTime::ZERO)))
            .collect();
        let reached = broker.publish_batch(batch, &pool);
        assert_eq!(reached, 5);
        assert_eq!(keeper.drain().len(), 5);
        assert_eq!(broker.subscription_count(), 1);
        let stats = broker.stats();
        assert_eq!(stats.published, 5);
        assert_eq!(stats.delivered, 5);
        // Sequence-exact accounting: the first message finds the quitter
        // dead (one drop); the one-by-one publish sequence would prune it
        // there, so the remaining four skip it — same books as a loop of
        // `publish` calls.
        assert_eq!(stats.dropped, 1);
    }

    #[test]
    fn concurrent_publishers_do_not_lose_messages() {
        let broker = std::sync::Arc::new(Broker::new());
        let sub = broker.subscribe(f("#"));
        let mut handles = Vec::new();
        for thread in 0..4 {
            let b = broker.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    b.publish(
                        &format!("t/{thread}/{i}").parse().unwrap(),
                        Payload::new(i as f64, SimTime::ZERO),
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sub.drain().len(), 1000);
        assert_eq!(broker.stats().published, 1000);
    }
}
