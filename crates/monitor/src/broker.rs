//! The MQTT-style broker at the heart of the ExaMon transport layer.
//!
//! Thread-safe topic-tree pub/sub: plugins publish from sampling threads,
//! collectors drain subscriptions into the time-series store. QoS 0
//! (fire-and-forget) semantics, matching ExaMon's MQTT usage.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::payload::Payload;
use crate::topic::{Topic, TopicFilter};

/// A message as delivered to subscribers.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishedMessage {
    /// The concrete topic it was published under.
    pub topic: Topic,
    /// The decoded payload.
    pub payload: Payload,
}

/// Identifies a subscription for unsubscribe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(u64);

/// A live subscription handle; drop it (or unsubscribe) to stop receiving.
#[derive(Debug)]
pub struct Subscription {
    id: SubscriptionId,
    filter: TopicFilter,
    rx: Receiver<PublishedMessage>,
    /// Messages currently queued (shared with the broker's send side so
    /// bounded subscriptions can enforce their capacity).
    depth: Arc<AtomicUsize>,
    /// Messages this subscription lost to queue overflow.
    dropped: Arc<AtomicU64>,
}

impl Subscription {
    /// The subscription id.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// The filter subscribed to.
    pub fn filter(&self) -> &TopicFilter {
        &self.filter
    }

    /// Messages currently queued and not yet received.
    pub fn queued(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Messages this subscription lost because its bounded queue was full
    /// when the broker tried to deliver. Always zero for unbounded
    /// subscriptions.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<PublishedMessage> {
        match self.rx.try_recv() {
            Ok(msg) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Some(msg)
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<PublishedMessage> {
        let mut out = Vec::new();
        while let Some(m) = self.try_recv() {
            out.push(m);
        }
        out
    }

    /// Blocking receive (used by collector threads).
    pub fn recv(&self) -> Option<PublishedMessage> {
        let msg = self.rx.recv().ok()?;
        self.depth.fetch_sub(1, Ordering::Relaxed);
        Some(msg)
    }
}

#[derive(Debug)]
struct SubEntry {
    id: SubscriptionId,
    filter: TopicFilter,
    tx: Sender<PublishedMessage>,
    /// Queue bound; `None` means unbounded (the seed behaviour).
    capacity: Option<usize>,
    depth: Arc<AtomicUsize>,
    dropped: Arc<AtomicU64>,
}

/// Broker counters.
///
/// For every `publish`, each matching subscriber accounts for exactly one
/// of `delivered` or `dropped` — the books stay balanced even when
/// subscribers disconnect mid-burst or bounded queues overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrokerStats {
    /// Messages published.
    pub published: u64,
    /// Deliveries fanned out (one per matching subscriber).
    pub delivered: u64,
    /// Matched deliveries that were not made: the subscriber's bounded
    /// queue was full, or the subscriber disconnected between matching
    /// and delivery.
    pub dropped: u64,
    /// Whole publishes suppressed by injected message loss
    /// ([`Broker::set_loss`]) before any fan-out.
    pub suppressed: u64,
}

/// Seeded wire-loss injection state.
#[derive(Debug)]
struct LossInjection {
    rate: f64,
    rng: StdRng,
}

/// The broker.
///
/// # Examples
///
/// ```
/// use cimone_monitor::broker::Broker;
/// use cimone_monitor::payload::Payload;
/// use cimone_soc::units::SimTime;
///
/// let broker = Broker::new();
/// let sub = broker.subscribe("sensors/#".parse()?);
/// broker.publish(&"sensors/temp".parse()?, Payload::new(48.0, SimTime::ZERO));
/// assert_eq!(sub.try_recv().unwrap().payload.value, 48.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Broker {
    subs: RwLock<Vec<SubEntry>>,
    next_id: AtomicU64,
    published: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    suppressed: AtomicU64,
    loss: Mutex<Option<LossInjection>>,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Broker::default()
    }

    /// Subscribes to `filter` with an unbounded queue.
    pub fn subscribe(&self, filter: TopicFilter) -> Subscription {
        self.subscribe_inner(filter, None)
    }

    /// Subscribes to `filter` with a queue bounded to `capacity` messages:
    /// deliveries while the queue is full are counted as drops (on the
    /// subscription and in [`BrokerStats::dropped`]) instead of growing
    /// memory without bound — the fate of a slow ExaMon consumer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn subscribe_bounded(&self, filter: TopicFilter, capacity: usize) -> Subscription {
        assert!(capacity > 0, "a bounded subscription needs capacity >= 1");
        self.subscribe_inner(filter, Some(capacity))
    }

    fn subscribe_inner(&self, filter: TopicFilter, capacity: Option<usize>) -> Subscription {
        let id = SubscriptionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = unbounded();
        let depth = Arc::new(AtomicUsize::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        self.subs.write().push(SubEntry {
            id,
            filter: filter.clone(),
            tx,
            capacity,
            depth: depth.clone(),
            dropped: dropped.clone(),
        });
        Subscription {
            id,
            filter,
            rx,
            depth,
            dropped,
        }
    }

    /// Removes a subscription; returns whether it existed.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let mut subs = self.subs.write();
        let before = subs.len();
        subs.retain(|s| s.id != id);
        subs.len() != before
    }

    /// Publishes `payload` under `topic`; returns the number of
    /// subscribers it reached. Dead subscriptions (dropped receivers) are
    /// pruned lazily; a matched-but-undelivered message — bounded queue
    /// full, or receiver gone — counts as a drop, so
    /// `delivered + dropped` covers every matched subscriber.
    pub fn publish(&self, topic: &Topic, payload: Payload) -> usize {
        self.published.fetch_add(1, Ordering::Relaxed);
        {
            let mut loss = self.loss.lock();
            if let Some(inj) = loss.as_mut() {
                let rate = inj.rate;
                if rate > 0.0 && inj.rng.gen_bool(rate) {
                    self.suppressed.fetch_add(1, Ordering::Relaxed);
                    return 0;
                }
            }
        }
        let mut reached = 0;
        let mut dropped = 0u64;
        let mut dead = Vec::new();
        {
            let subs = self.subs.read();
            for sub in subs.iter() {
                if !sub.filter.matches(topic) {
                    continue;
                }
                if !reserve_slot(&sub.depth, sub.capacity) {
                    sub.dropped.fetch_add(1, Ordering::Relaxed);
                    dropped += 1;
                    continue;
                }
                let msg = PublishedMessage {
                    topic: topic.clone(),
                    payload,
                };
                if sub.tx.send(msg).is_ok() {
                    reached += 1;
                } else {
                    sub.depth.fetch_sub(1, Ordering::Relaxed);
                    dead.push(sub.id);
                    dropped += 1;
                }
            }
        }
        if !dead.is_empty() {
            self.subs.write().retain(|s| !dead.contains(&s.id));
        }
        self.delivered.fetch_add(reached as u64, Ordering::Relaxed);
        self.dropped.fetch_add(dropped, Ordering::Relaxed);
        reached
    }

    /// Publishes a batch of messages with the subscriber fan-out spread
    /// over `pool`, preserving [`publish`](Broker::publish) semantics
    /// exactly: loss-injection RNG draws happen serially in message order
    /// (the RNG stream is identical to publishing one by one), each
    /// subscription is owned by exactly one task which walks the
    /// surviving messages in order (per-subscription delivery order is
    /// preserved), and dead subscriptions are pruned after the barrier.
    /// Returns the total number of deliveries made.
    pub fn publish_batch(
        &self,
        messages: Vec<(Topic, Payload)>,
        pool: &cimone_kernels::pool::WorkerPool,
    ) -> usize {
        if messages.is_empty() {
            return 0;
        }
        self.published
            .fetch_add(messages.len() as u64, Ordering::Relaxed);
        // Serial loss draws, in message order — one RNG consumption per
        // message, exactly as a sequence of `publish` calls would make.
        let survivors: Vec<(Topic, Payload)> = {
            let mut loss = self.loss.lock();
            match loss.as_mut() {
                Some(inj) if inj.rate > 0.0 => {
                    let rate = inj.rate;
                    let mut kept = Vec::with_capacity(messages.len());
                    let mut suppressed = 0u64;
                    for msg in messages {
                        if inj.rng.gen_bool(rate) {
                            suppressed += 1;
                        } else {
                            kept.push(msg);
                        }
                    }
                    self.suppressed.fetch_add(suppressed, Ordering::Relaxed);
                    kept
                }
                _ => messages,
            }
        };
        if survivors.is_empty() {
            return 0;
        }
        let mut reached_total = 0usize;
        let mut dropped_total = 0u64;
        let mut dead = Vec::new();
        {
            let subs = self.subs.read();
            let survivors = &survivors[..];
            let tiles = pool.even_chunks(subs.len());
            let mut results: Vec<(usize, u64, Vec<SubscriptionId>)> =
                vec![Default::default(); tiles.len()];
            pool.scope(|scope| {
                for (&(s0, s1), result) in tiles.iter().zip(results.iter_mut()) {
                    let subs = &subs[s0..s1];
                    scope.spawn(move || {
                        let (reached, dropped, dead) = result;
                        for (topic, payload) in survivors {
                            for sub in subs {
                                if !sub.filter.matches(topic) {
                                    continue;
                                }
                                if !reserve_slot(&sub.depth, sub.capacity) {
                                    sub.dropped.fetch_add(1, Ordering::Relaxed);
                                    *dropped += 1;
                                    continue;
                                }
                                let msg = PublishedMessage {
                                    topic: topic.clone(),
                                    payload: *payload,
                                };
                                if sub.tx.send(msg).is_ok() {
                                    *reached += 1;
                                } else {
                                    sub.depth.fetch_sub(1, Ordering::Relaxed);
                                    *dropped += 1;
                                    if !dead.contains(&sub.id) {
                                        dead.push(sub.id);
                                    }
                                }
                            }
                        }
                    });
                }
            });
            for (reached, dropped, mut tile_dead) in results {
                reached_total += reached;
                dropped_total += dropped;
                dead.append(&mut tile_dead);
            }
        }
        if !dead.is_empty() {
            self.subs.write().retain(|s| !dead.contains(&s.id));
        }
        self.delivered
            .fetch_add(reached_total as u64, Ordering::Relaxed);
        self.dropped.fetch_add(dropped_total, Ordering::Relaxed);
        reached_total
    }

    /// Configures deterministic wire loss: each subsequent publish is
    /// suppressed with probability `rate`, driven by a RNG seeded with
    /// `seed` (identical seeds and traffic give identical loss patterns).
    /// A rate of `0.0` disables injection.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn set_loss(&self, rate: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&rate), "loss rate must be in [0, 1]");
        *self.loss.lock() = (rate > 0.0).then(|| LossInjection {
            rate,
            rng: StdRng::seed_from_u64(seed),
        });
    }

    /// Current counters.
    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            published: self.published.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            suppressed: self.suppressed.load(Ordering::Relaxed),
        }
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subs.read().len()
    }
}

/// Atomically claims a queue slot against an optional capacity; returns
/// whether the claim succeeded. The compare-and-swap loop keeps the bound
/// exact under concurrent publishers.
fn reserve_slot(depth: &AtomicUsize, capacity: Option<usize>) -> bool {
    match capacity {
        None => {
            depth.fetch_add(1, Ordering::Relaxed);
            true
        }
        Some(cap) => depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                (d < cap).then_some(d + 1)
            })
            .is_ok(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimone_soc::units::SimTime;

    fn t(s: &str) -> Topic {
        s.parse().unwrap()
    }

    fn f(s: &str) -> TopicFilter {
        s.parse().unwrap()
    }

    #[test]
    fn routing_respects_filters() {
        let broker = Broker::new();
        let all = broker.subscribe(f("#"));
        let temps = broker.subscribe(f("node/+/temp"));
        broker.publish(&t("node/a/temp"), Payload::new(1.0, SimTime::ZERO));
        broker.publish(&t("node/a/power"), Payload::new(2.0, SimTime::ZERO));
        assert_eq!(all.drain().len(), 2);
        let got = temps.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload.value, 1.0);
    }

    #[test]
    fn publish_reports_reach() {
        let broker = Broker::new();
        let _a = broker.subscribe(f("x/#"));
        let _b = broker.subscribe(f("x/y"));
        let reach = broker.publish(&t("x/y"), Payload::new(0.0, SimTime::ZERO));
        assert_eq!(reach, 2);
        assert_eq!(broker.publish(&t("z"), Payload::new(0.0, SimTime::ZERO)), 0);
        let stats = broker.stats();
        assert_eq!(stats.published, 2);
        assert_eq!(stats.delivered, 2);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let broker = Broker::new();
        let sub = broker.subscribe(f("#"));
        assert!(broker.unsubscribe(sub.id()));
        assert!(!broker.unsubscribe(sub.id()));
        broker.publish(&t("a"), Payload::new(0.0, SimTime::ZERO));
        assert!(sub.try_recv().is_none());
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn dropped_subscribers_are_pruned_on_publish() {
        let broker = Broker::new();
        let sub = broker.subscribe(f("#"));
        drop(sub);
        assert_eq!(broker.subscription_count(), 1);
        broker.publish(&t("a"), Payload::new(0.0, SimTime::ZERO));
        assert_eq!(broker.subscription_count(), 0);
    }

    #[test]
    fn injected_loss_is_seeded_and_counted() {
        let run = |seed: u64| {
            let broker = Broker::new();
            let sub = broker.subscribe(f("#"));
            broker.set_loss(0.4, seed);
            for i in 0..100 {
                broker.publish(&t("x"), Payload::new(i as f64, SimTime::ZERO));
            }
            (sub.drain().len(), broker.stats())
        };
        let (got_a, stats_a) = run(5);
        let (got_b, stats_b) = run(5);
        assert_eq!(got_a, got_b, "same seed, same loss pattern");
        assert_eq!(stats_a, stats_b);
        assert_eq!(stats_a.published, 100);
        assert_eq!(stats_a.suppressed + got_a as u64, 100);
        assert!(stats_a.suppressed > 10);
        // Disabling restores full delivery.
        let broker = Broker::new();
        let sub = broker.subscribe(f("#"));
        broker.set_loss(1.0, 1);
        broker.set_loss(0.0, 1);
        broker.publish(&t("x"), Payload::new(0.0, SimTime::ZERO));
        assert_eq!(sub.drain().len(), 1);
    }

    #[test]
    fn bounded_subscription_drops_overflow_and_accounts_for_it() {
        let broker = Broker::new();
        let sub = broker.subscribe_bounded(f("#"), 3);
        for i in 0..5 {
            broker.publish(&t("x"), Payload::new(i as f64, SimTime::ZERO));
        }
        assert_eq!(sub.queued(), 3);
        assert_eq!(sub.dropped(), 2);
        let stats = broker.stats();
        assert_eq!(stats.published, 5);
        assert_eq!(stats.delivered, 3);
        assert_eq!(stats.dropped, 2);
        // Draining frees capacity for new deliveries.
        assert_eq!(sub.drain().len(), 3);
        assert_eq!(sub.queued(), 0);
        broker.publish(&t("x"), Payload::new(9.0, SimTime::ZERO));
        assert_eq!(sub.try_recv().unwrap().payload.value, 9.0);
    }

    #[test]
    fn delivery_accounting_balances_under_disconnect() {
        let broker = Broker::new();
        let keeper = broker.subscribe(f("#"));
        let quitter = broker.subscribe(f("#"));
        broker.publish(&t("a"), Payload::new(1.0, SimTime::ZERO));
        drop(quitter);
        // The dropped receiver is detected on the next publish: that
        // delivery is accounted as dropped, not silently lost.
        broker.publish(&t("b"), Payload::new(2.0, SimTime::ZERO));
        broker.publish(&t("c"), Payload::new(3.0, SimTime::ZERO));
        let stats = broker.stats();
        assert_eq!(stats.published, 3);
        assert_eq!(stats.delivered, 4); // keeper x3 + quitter x1
        assert_eq!(stats.dropped, 1); // quitter's missed second message
        assert_eq!(keeper.drain().len(), 3);
        assert_eq!(broker.subscription_count(), 1);
    }

    #[test]
    fn publish_batch_matches_sequential_publishes_exactly() {
        use cimone_kernels::pool::WorkerPool;
        let pool = WorkerPool::new(4);
        let messages: Vec<(Topic, Payload)> = (0..200)
            .map(|i| {
                (
                    t(&format!("node/{}/temp", i % 7)),
                    Payload::new(i as f64, SimTime::from_secs(i)),
                )
            })
            .collect();
        let run_seq = || {
            let broker = Broker::new();
            let all = broker.subscribe(f("#"));
            let some = broker.subscribe(f("node/3/+"));
            let bounded = broker.subscribe_bounded(f("#"), 10);
            broker.set_loss(0.3, 99);
            for (topic, payload) in &messages {
                broker.publish(topic, *payload);
            }
            (all.drain(), some.drain(), bounded.drain(), broker.stats())
        };
        let run_batch = || {
            let broker = Broker::new();
            let all = broker.subscribe(f("#"));
            let some = broker.subscribe(f("node/3/+"));
            let bounded = broker.subscribe_bounded(f("#"), 10);
            broker.set_loss(0.3, 99);
            broker.publish_batch(messages.clone(), &pool);
            (all.drain(), some.drain(), bounded.drain(), broker.stats())
        };
        let (sa, ss, sb, sst) = run_seq();
        let (ba, bs, bb, bst) = run_batch();
        assert_eq!(sa, ba, "wildcard subscriber sees identical stream");
        assert_eq!(ss, bs, "filtered subscriber sees identical stream");
        assert_eq!(sb, bb, "bounded subscriber drops identically");
        assert_eq!(sst, bst, "stats balance identically");
    }

    #[test]
    fn publish_batch_prunes_dead_subscribers() {
        use cimone_kernels::pool::WorkerPool;
        let pool = WorkerPool::new(2);
        let broker = Broker::new();
        let keeper = broker.subscribe(f("#"));
        let quitter = broker.subscribe(f("#"));
        drop(quitter);
        let batch: Vec<(Topic, Payload)> = (0..5)
            .map(|i| (t("x"), Payload::new(i as f64, SimTime::ZERO)))
            .collect();
        let reached = broker.publish_batch(batch, &pool);
        assert_eq!(reached, 5);
        assert_eq!(keeper.drain().len(), 5);
        assert_eq!(broker.subscription_count(), 1);
        let stats = broker.stats();
        assert_eq!(stats.published, 5);
        assert_eq!(stats.delivered, 5);
        assert_eq!(stats.dropped, 5); // quitter's five missed messages
    }

    #[test]
    fn concurrent_publishers_do_not_lose_messages() {
        let broker = std::sync::Arc::new(Broker::new());
        let sub = broker.subscribe(f("#"));
        let mut handles = Vec::new();
        for thread in 0..4 {
            let b = broker.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    b.publish(
                        &format!("t/{thread}/{i}").parse().unwrap(),
                        Payload::new(i as f64, SimTime::ZERO),
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sub.drain().len(), 1000);
        assert_eq!(broker.stats().published, 1000);
    }
}
