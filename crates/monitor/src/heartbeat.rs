//! Heartbeat tracking and phi-accrual failure detection.
//!
//! Monte Cimone's engine previously learned of node crashes by oracle; in a
//! real cluster the only signal is the *absence* of telemetry. Each node
//! publishes a periodic heartbeat through the ExaMon broker, and a
//! [`PhiAccrualDetector`] (Hayashibara et al., "The φ accrual failure
//! detector", SRDS 2004 — the detector used by Akka and Cassandra) converts
//! the time since the last arrival into a continuous suspicion level:
//!
//! ```text
//! phi(t_now) = -log10( P_later(t_now - t_last) )
//! ```
//!
//! where `P_later` is the probability that a heartbeat arrives later than
//! the elapsed silence, under a normal distribution fitted to the observed
//! inter-arrival window. `phi = 8` means the detector would be wrong about
//! one suspicion in 10⁸ — crossing a configured threshold trades detection
//! latency against false positives, and broker message loss or partitions
//! (which starve the stream) can push phi over the line for a healthy node.

use std::collections::{BTreeMap, VecDeque};

use cimone_soc::units::{SimDuration, SimTime};

use crate::broker::{Broker, Subscription};
use crate::topic::TopicFilter;

/// Default suspicion threshold (Akka's default is 8.0: a false positive
/// about once per 10⁸ evaluations under the fitted distribution).
pub const DEFAULT_PHI_THRESHOLD: f64 = 8.0;

/// Default bound on the inter-arrival window the distribution is fitted to.
pub const DEFAULT_WINDOW: usize = 128;

/// Inter-arrival intervals required before the detector reports a nonzero
/// phi (guards against suspecting nodes during start-up).
pub const MIN_SAMPLES: usize = 3;

/// Upper clamp on reported phi (beyond this the distinction is meaningless
/// and the arithmetic underflows).
pub const PHI_CEILING: f64 = 100.0;

/// Complementary error function with fractional error below `1.2e-7`
/// everywhere (Numerical Recipes' `erfcc` Chebyshev fit). The error is
/// *relative*, so deep-tail probabilities — exactly what phi measures —
/// stay meaningful.
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Per-node phi-accrual state: a sliding window of heartbeat inter-arrival
/// times and the time of the last arrival.
///
/// # Examples
///
/// ```
/// use cimone_monitor::heartbeat::PhiAccrualDetector;
/// use cimone_soc::units::SimTime;
///
/// let mut det = PhiAccrualDetector::new(128);
/// for s in (0..50).step_by(5) {
///     det.record(SimTime::from_secs(s));
/// }
/// // On cadence: barely suspicious. After 20 s of silence: very.
/// assert!(det.phi(SimTime::from_secs(50)) < 1.0);
/// assert!(det.phi(SimTime::from_secs(65)) > 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct PhiAccrualDetector {
    window: usize,
    intervals: VecDeque<f64>,
    last_arrival: Option<SimTime>,
    /// How much slower than nominal this node is *expected* to beat (1.0 =
    /// nominal). A DVFS-capped node's health daemon runs at the capped
    /// clock, so its silence must be judged against the scaled cadence;
    /// without this, graceful degradation reads as a crash.
    expected_scale: f64,
    /// When a heartbeat *actually* arrived last (unlike `last_arrival`,
    /// never moved by [`PhiAccrualDetector::rebaseline`]) — the freshness
    /// signal a partition-aware control plane compares peers against.
    last_heard: Option<SimTime>,
    /// Set by a rebaseline: the next recorded interval would span the
    /// deferred silence, not a real cadence gap, so it is dropped instead
    /// of polluting the fitted window.
    skip_next_sample: bool,
}

impl PhiAccrualDetector {
    /// A detector fitting at most `window` recent inter-arrival intervals.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2` (a distribution needs at least two samples).
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "phi window needs at least two intervals");
        PhiAccrualDetector {
            window,
            intervals: VecDeque::new(),
            last_arrival: None,
            expected_scale: 1.0,
            last_heard: None,
            skip_next_sample: false,
        }
    }

    /// Declares that the node is expected to beat `scale`× slower than
    /// nominal (DVFS cap or throttle; 1.0 restores nominal). Both recorded
    /// intervals and elapsed silence are normalised by the scale, so the
    /// fitted distribution stays on the nominal-cadence axis and a capped
    /// node accrues no spurious suspicion.
    ///
    /// # Panics
    ///
    /// Panics unless the scale is finite and positive.
    pub fn set_expected_scale(&mut self, scale: f64) {
        assert!(
            scale.is_finite() && scale > 0.0,
            "expected scale must be finite and positive"
        );
        self.expected_scale = scale;
    }

    /// The declared cadence scale (1.0 = nominal).
    pub fn expected_scale(&self) -> f64 {
        self.expected_scale
    }

    /// Records a heartbeat arrival. Out-of-order or duplicate timestamps
    /// (possible after broker replays) are ignored.
    pub fn record(&mut self, at: SimTime) {
        if let Some(last) = self.last_arrival {
            if at <= last {
                return;
            }
            if self.skip_next_sample {
                // The gap spans a deferred-silence rebaseline, not a real
                // cadence interval: advance the clock, drop the sample.
                self.skip_next_sample = false;
            } else {
                if self.intervals.len() == self.window {
                    self.intervals.pop_front();
                }
                self.intervals
                    .push_back(at.saturating_since(last).as_secs_f64() / self.expected_scale);
            }
        }
        self.last_arrival = Some(at);
        self.last_heard = Some(at);
    }

    /// Moves the silence reference to `at` without recording an arrival:
    /// phi re-accrues from `at`, the fitted window is untouched, and the
    /// next real arrival's interval (which would span the deferred
    /// silence) is dropped. This is how a partition-aware control plane
    /// *defers* suspicion across a correlated outage instead of letting
    /// the whole outage count as per-node silence. Backwards moves are
    /// ignored.
    pub fn rebaseline(&mut self, at: SimTime) {
        if self.last_arrival.is_none_or(|last| at > last) {
            self.last_arrival = Some(at);
            self.skip_next_sample = true;
        }
    }

    /// When the last heartbeat arrived (or the silence reference was last
    /// moved by [`PhiAccrualDetector::rebaseline`]), if ever.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.last_arrival
    }

    /// When a heartbeat last *actually* arrived — never moved by
    /// [`PhiAccrualDetector::rebaseline`].
    pub fn last_heard(&self) -> Option<SimTime> {
        self.last_heard
    }

    /// Heartbeat arrivals observed (intervals + 1), zero if none.
    pub fn samples(&self) -> usize {
        match self.last_arrival {
            Some(_) => self.intervals.len() + 1,
            None => 0,
        }
    }

    /// Mean of the windowed inter-arrival intervals, seconds.
    pub fn mean_interval(&self) -> Option<f64> {
        if self.intervals.is_empty() {
            return None;
        }
        Some(self.intervals.iter().sum::<f64>() / self.intervals.len() as f64)
    }

    /// The suspicion level at `now`: `-log10 P(heartbeat arrives later)`.
    ///
    /// Returns `0.0` until [`MIN_SAMPLES`] intervals are observed. The
    /// fitted standard deviation is floored at a quarter of the mean
    /// interval so a metronomic stream (σ → 0) does not make a single
    /// lost heartbeat look like a crash: with the floor, one missed beat
    /// reaches phi ≈ 4.5 and two missed beats ≈ 15, bracketing the
    /// default threshold of 8.
    pub fn phi(&self, now: SimTime) -> f64 {
        let Some(last) = self.last_arrival else {
            return 0.0;
        };
        if self.intervals.len() < MIN_SAMPLES {
            return 0.0;
        }
        let mean = self.mean_interval().expect("window is non-empty");
        let var = self
            .intervals
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / self.intervals.len() as f64;
        let sigma = var.sqrt().max(0.25 * mean).max(1e-6);
        let elapsed = now.saturating_since(last).as_secs_f64() / self.expected_scale;
        let z = (elapsed - mean) / sigma;
        // P(X > elapsed) for X ~ N(mean, sigma²).
        let p_later = 0.5 * erfc(z / std::f64::consts::SQRT_2);
        if p_later <= 0.0 {
            return PHI_CEILING;
        }
        (-p_later.log10()).clamp(0.0, PHI_CEILING)
    }

    /// The first grid tick at which phi reaches `threshold`, assuming no
    /// further arrivals: scans the ticks `from + k·step` for `k ≥ 0` up to
    /// and including the last one ≤ `to`, and returns the smallest whose
    /// phi is ≥ `threshold` (`None` if none crosses within the horizon).
    ///
    /// With the detector state frozen, `phi` is monotone non-decreasing in
    /// `now` (longer silence is never less suspicious), so a binary search
    /// over the grid finds the exact tick a fixed-dt loop would flag —
    /// this is what lets a due-time clock treat suspicion as an event
    /// instead of re-evaluating phi every tick.
    pub fn first_crossing(
        &self,
        threshold: f64,
        from: SimTime,
        to: SimTime,
        step: SimDuration,
    ) -> Option<SimTime> {
        if step.is_zero() || to < from {
            return None;
        }
        if self.phi(from) >= threshold {
            return Some(from);
        }
        let span = to.saturating_since(from).as_micros();
        let k_max = span / step.as_micros();
        if k_max == 0 || self.phi(from + step * k_max) < threshold {
            return None;
        }
        // Invariant: phi(from + step·lo) < threshold ≤ phi(from + step·hi).
        let (mut lo, mut hi) = (0u64, k_max);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.phi(from + step * mid) >= threshold {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(from + step * hi)
    }
}

impl Default for PhiAccrualDetector {
    fn default() -> Self {
        PhiAccrualDetector::new(DEFAULT_WINDOW)
    }
}

/// Drains heartbeat topics from the broker and maintains one
/// [`PhiAccrualDetector`] per node.
///
/// The node name is taken from the topic segment following `node` (the
/// ExaMon schema of Table II); topics without one are keyed by their full
/// path. Detection is purely message-driven — the monitor has no oracle
/// knowledge of node health, so lost heartbeats (broker loss, partitions,
/// crashes) are indistinguishable until phi accrues.
///
/// # Examples
///
/// ```
/// use cimone_monitor::broker::Broker;
/// use cimone_monitor::heartbeat::HeartbeatMonitor;
/// use cimone_monitor::payload::Payload;
/// use cimone_soc::units::SimTime;
///
/// let broker = Broker::new();
/// let mut hb = HeartbeatMonitor::attach(&broker, "node/+/heartbeat".parse()?, 8.0);
/// let topic = "node/mc-node-01/heartbeat".parse()?;
/// for s in (0..60).step_by(5) {
///     broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(s)));
/// }
/// hb.pump();
/// assert!(hb.suspects(SimTime::from_secs(60)).is_empty());
/// assert_eq!(hb.suspects(SimTime::from_secs(120)), vec!["mc-node-01".to_string()]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct HeartbeatMonitor {
    subscription: Subscription,
    detectors: BTreeMap<String, PhiAccrualDetector>,
    threshold: f64,
    window: usize,
}

impl HeartbeatMonitor {
    /// Subscribes `filter` on `broker` with suspicion threshold
    /// `threshold` (see [`DEFAULT_PHI_THRESHOLD`]).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not positive.
    pub fn attach(broker: &Broker, filter: TopicFilter, threshold: f64) -> Self {
        assert!(threshold > 0.0, "phi threshold must be positive");
        HeartbeatMonitor {
            subscription: broker.subscribe(filter),
            detectors: BTreeMap::new(),
            threshold,
            window: DEFAULT_WINDOW,
        }
    }

    /// The configured suspicion threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Drains queued heartbeat messages into the per-node detectors;
    /// returns how many were ingested.
    pub fn pump(&mut self) -> usize {
        let mut n = 0;
        while let Some(msg) = self.subscription.try_recv() {
            match node_segment(msg.topic.segments()) {
                Some(node) => self.observe(node, msg.payload.timestamp),
                None => {
                    let node = msg.topic.to_string();
                    self.observe(&node, msg.payload.timestamp);
                }
            }
            n += 1;
        }
        n
    }

    /// Records a heartbeat for `node` directly (the pump calls this; tests
    /// may too).
    pub fn observe(&mut self, node: &str, at: SimTime) {
        if let Some(det) = self.detectors.get_mut(node) {
            det.record(at);
        } else {
            let mut det = PhiAccrualDetector::new(self.window);
            det.record(at);
            self.detectors.insert(node.to_string(), det);
        }
    }

    /// The suspicion level for `node` at `now` (`0.0` for unknown nodes).
    pub fn phi(&self, node: &str, now: SimTime) -> f64 {
        self.detectors.get(node).map_or(0.0, |d| d.phi(now))
    }

    /// Whether `node`'s phi exceeds the threshold at `now`.
    pub fn is_suspect(&self, node: &str, now: SimTime) -> bool {
        self.phi(node, now) >= self.threshold
    }

    /// All nodes whose phi exceeds the threshold at `now`, sorted.
    pub fn suspects(&self, now: SimTime) -> Vec<String> {
        self.detectors
            .iter()
            .filter(|(_, d)| d.phi(now) >= self.threshold)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// All nodes ever heard from, sorted.
    pub fn nodes(&self) -> Vec<String> {
        self.detectors.keys().cloned().collect()
    }

    /// The detector for `node`, if it has been heard from.
    pub fn detector(&self, node: &str) -> Option<&PhiAccrualDetector> {
        self.detectors.get(node)
    }

    /// Declares `node`'s expected heartbeat cadence scale (see
    /// [`PhiAccrualDetector::set_expected_scale`]). Creates the detector
    /// if the node has not been heard from yet, so the scale applies from
    /// its first arrival.
    pub fn set_expected_scale(&mut self, node: &str, scale: f64) {
        let window = self.window;
        self.detectors
            .entry(node.to_string())
            .or_insert_with(|| PhiAccrualDetector::new(window))
            .set_expected_scale(scale);
    }

    /// Moves `node`'s silence reference to `at` without recording an
    /// arrival (see [`PhiAccrualDetector::rebaseline`]). A no-op for nodes
    /// never heard from — they carry no suspicion to defer.
    pub fn rebaseline(&mut self, node: &str, at: SimTime) {
        if let Some(det) = self.detectors.get_mut(node) {
            det.rebaseline(at);
        }
    }

    /// When `node` last *actually* heartbeat, if ever (see
    /// [`PhiAccrualDetector::last_heard`]).
    pub fn last_heard(&self, node: &str) -> Option<SimTime> {
        self.detectors.get(node).and_then(|d| d.last_heard())
    }

    /// The first grid tick in `[from, to]` (stepping by `step`) at which
    /// `node` would cross the suspicion threshold, assuming no further
    /// heartbeats arrive; `None` for unknown nodes or when the crossing
    /// lies beyond `to`. See [`PhiAccrualDetector::first_crossing`].
    pub fn next_suspicion_due(
        &self,
        node: &str,
        from: SimTime,
        to: SimTime,
        step: SimDuration,
    ) -> Option<SimTime> {
        self.detectors
            .get(node)
            .and_then(|d| d.first_crossing(self.threshold, from, to, step))
    }
}

/// Extracts the node name from an ExaMon topic's segments: the segment
/// after `node`, or `None` when the schema marker is absent (callers fall
/// back to the whole topic string).
fn node_segment(segments: &[String]) -> Option<&str> {
    let mut iter = segments.iter();
    while let Some(seg) = iter.next() {
        if seg == "node" {
            if let Some(name) = iter.next() {
                return Some(name.as_str());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    fn steady(det: &mut PhiAccrualDetector, beats: u64, period: u64) {
        for i in 0..beats {
            det.record(SimTime::from_secs(i * period));
        }
    }

    #[test]
    fn erfc_matches_known_values() {
        // erfc(0) = 1, erfc(1) ≈ 0.15729920705, erfc(-1) ≈ 1.8427007929.
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_207_05).abs() < 1e-7);
        assert!((erfc(-1.0) - 1.842_700_792_9).abs() < 1e-7);
        // Tail stays relatively accurate: erfc(4) ≈ 1.541726e-8.
        assert!((erfc(4.0) / 1.541_725_8e-8 - 1.0).abs() < 1e-4);
    }

    #[test]
    fn phi_is_zero_during_warmup() {
        let mut det = PhiAccrualDetector::new(16);
        det.record(SimTime::ZERO);
        det.record(SimTime::from_secs(5));
        det.record(SimTime::from_secs(10));
        // Only two intervals: below MIN_SAMPLES.
        assert_eq!(det.phi(SimTime::from_secs(1000)), 0.0);
    }

    #[test]
    fn one_missed_beat_stays_below_the_default_threshold() {
        let mut det = PhiAccrualDetector::default();
        steady(&mut det, 20, 5);
        let last = SimTime::from_secs(19 * 5);
        let one_missed = det.phi(last + cimone_soc::units::SimDuration::from_secs(10));
        assert!(one_missed < DEFAULT_PHI_THRESHOLD, "phi {one_missed}");
        let two_missed = det.phi(last + cimone_soc::units::SimDuration::from_secs(15));
        assert!(two_missed > DEFAULT_PHI_THRESHOLD, "phi {two_missed}");
    }

    #[test]
    fn phi_grows_monotonically_with_silence() {
        let mut det = PhiAccrualDetector::default();
        steady(&mut det, 10, 5);
        let last = SimTime::from_secs(9 * 5);
        let mut prev = 0.0;
        for extra in 1..30u64 {
            let phi = det.phi(last + cimone_soc::units::SimDuration::from_secs(extra));
            assert!(phi >= prev, "phi not monotone at +{extra}s");
            prev = phi;
        }
        assert!(prev <= PHI_CEILING);
    }

    #[test]
    fn first_crossing_matches_the_tick_by_tick_scan() {
        let step = cimone_soc::units::SimDuration::from_millis(500);
        for period in [3u64, 5, 8] {
            let mut det = PhiAccrualDetector::default();
            steady(&mut det, 12, period);
            let from = SimTime::from_secs(11 * period);
            let to = from + cimone_soc::units::SimDuration::from_secs(20 * period);
            // Reference: walk every grid tick like the fixed-dt loop does.
            let mut expected = None;
            let mut t = from;
            while t <= to {
                if det.phi(t) >= DEFAULT_PHI_THRESHOLD {
                    expected = Some(t);
                    break;
                }
                t += step;
            }
            assert_eq!(
                det.first_crossing(DEFAULT_PHI_THRESHOLD, from, to, step),
                expected,
                "period {period}s"
            );
        }
        // A horizon that ends before the crossing reports none.
        let mut det = PhiAccrualDetector::default();
        steady(&mut det, 12, 5);
        let from = SimTime::from_secs(55);
        let near = from + cimone_soc::units::SimDuration::from_secs(2);
        assert_eq!(
            det.first_crossing(DEFAULT_PHI_THRESHOLD, from, near, step),
            None
        );
    }

    #[test]
    fn expected_scale_suppresses_false_suspicion_of_slow_nodes() {
        use cimone_soc::units::SimDuration;
        // Fit on a nominal 5 s cadence, then the node is capped to a third
        // of its clock: beats arrive every 15 s.
        let mut capped = PhiAccrualDetector::default();
        let mut naive = PhiAccrualDetector::default();
        steady(&mut capped, 12, 5);
        steady(&mut naive, 12, 5);
        let last = SimTime::from_secs(11 * 5);
        capped.set_expected_scale(3.0);
        // 15 s of silence: exactly one scaled beat late — not suspicious
        // when the scale is declared, far over threshold when it is not.
        let at = last + SimDuration::from_secs(15);
        assert!(capped.phi(at) < 1.0, "phi {}", capped.phi(at));
        assert!(naive.phi(at) > DEFAULT_PHI_THRESHOLD);
        // Scaled beats keep the fitted window on the nominal axis...
        capped.record(at);
        assert!((capped.mean_interval().unwrap() - 5.0).abs() < 0.1);
        // ...and a *real* crash still accrues suspicion on the scaled
        // cadence: four straight missed (scaled) beats cross the line.
        assert!(capped.phi(at + SimDuration::from_secs(60)) > DEFAULT_PHI_THRESHOLD);
    }

    #[test]
    fn monitor_applies_scales_even_before_first_arrival() {
        let broker = Broker::new();
        let mut hb = HeartbeatMonitor::attach(&broker, "#".parse().unwrap(), DEFAULT_PHI_THRESHOLD);
        hb.set_expected_scale("mc-node-05", 3.0);
        assert_eq!(
            hb.detector("mc-node-05").unwrap().expected_scale(),
            3.0,
            "scale must stick on the pre-created detector"
        );
        hb.observe("mc-node-05", SimTime::from_secs(0));
        hb.set_expected_scale("mc-node-05", 1.0);
        assert_eq!(hb.detector("mc-node-05").unwrap().expected_scale(), 1.0);
    }

    #[test]
    fn rebaseline_defers_suspicion_without_polluting_the_window() {
        use cimone_soc::units::SimDuration;
        let mut det = PhiAccrualDetector::default();
        steady(&mut det, 12, 5);
        let last = SimTime::from_secs(11 * 5);
        let mean_before = det.mean_interval().unwrap();
        // 40 s of silence would be far over threshold...
        assert!(det.phi(last + SimDuration::from_secs(40)) > DEFAULT_PHI_THRESHOLD);
        // ...but a rebaseline at +30 s restarts the silence clock there.
        det.rebaseline(last + SimDuration::from_secs(30));
        assert!(det.phi(last + SimDuration::from_secs(40)) < DEFAULT_PHI_THRESHOLD);
        // The true-arrival clock is not fooled.
        assert_eq!(det.last_heard(), Some(last));
        assert_eq!(det.last_arrival(), Some(last + SimDuration::from_secs(30)));
        // The first real arrival after the rebaseline updates the clocks
        // but drops the outage-spanning interval from the fitted window.
        let resumed = last + SimDuration::from_secs(60);
        det.record(resumed);
        assert_eq!(det.last_heard(), Some(resumed));
        assert!((det.mean_interval().unwrap() - mean_before).abs() < 1e-12);
        // The next interval after that is a real one and is recorded.
        det.record(resumed + SimDuration::from_secs(5));
        assert!((det.mean_interval().unwrap() - mean_before).abs() < 0.1);
        // Backwards rebaselines are ignored.
        let reference = det.last_arrival();
        det.rebaseline(SimTime::from_secs(1));
        assert_eq!(det.last_arrival(), reference);
    }

    #[test]
    fn monitor_rebaseline_only_touches_known_nodes() {
        let broker = Broker::new();
        let mut hb = HeartbeatMonitor::attach(&broker, "#".parse().unwrap(), DEFAULT_PHI_THRESHOLD);
        hb.rebaseline("ghost", SimTime::from_secs(10));
        assert!(hb.detector("ghost").is_none(), "no detector conjured");
        hb.observe("mc-node-01", SimTime::from_secs(0));
        hb.rebaseline("mc-node-01", SimTime::from_secs(10));
        assert_eq!(
            hb.detector("mc-node-01").unwrap().last_arrival(),
            Some(SimTime::from_secs(10))
        );
        assert_eq!(hb.last_heard("mc-node-01"), Some(SimTime::ZERO));
    }

    #[test]
    fn duplicate_and_stale_arrivals_are_ignored() {
        let mut det = PhiAccrualDetector::new(8);
        steady(&mut det, 6, 5);
        let before = det.samples();
        det.record(SimTime::from_secs(10)); // stale
        det.record(SimTime::from_secs(25)); // duplicate of the last
        assert_eq!(det.samples(), before);
    }

    #[test]
    fn monitor_keys_detectors_by_node_segment() {
        let broker = Broker::new();
        let mut hb = HeartbeatMonitor::attach(
            &broker,
            "org/+/node/+/heartbeat".parse().unwrap(),
            DEFAULT_PHI_THRESHOLD,
        );
        let t1 = "org/x/node/mc-node-03/heartbeat".parse().unwrap();
        for s in (0..40).step_by(4) {
            broker.publish(&t1, Payload::new(1.0, SimTime::from_secs(s)));
        }
        assert_eq!(hb.pump(), 10);
        assert_eq!(hb.nodes(), vec!["mc-node-03".to_string()]);
        assert!(hb.phi("mc-node-03", SimTime::from_secs(40)) < 1.0);
        assert_eq!(hb.phi("mc-node-99", SimTime::from_secs(40)), 0.0);
    }

    #[test]
    fn starved_stream_becomes_suspect_and_recovers() {
        let broker = Broker::new();
        let mut hb = HeartbeatMonitor::attach(&broker, "#".parse().unwrap(), DEFAULT_PHI_THRESHOLD);
        let topic = "node/mc-node-01/hb".parse().unwrap();
        for s in (0..50).step_by(5) {
            broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(s)));
        }
        hb.pump();
        assert!(!hb.is_suspect("mc-node-01", SimTime::from_secs(50)));
        assert!(hb.is_suspect("mc-node-01", SimTime::from_secs(80)));
        // The stream resumes: suspicion clears on the next arrival.
        broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(85)));
        hb.pump();
        assert!(!hb.is_suspect("mc-node-01", SimTime::from_secs(86)));
    }

    #[test]
    fn node_segment_handles_schema_and_fallback() {
        let segs = |s: &str| -> Vec<String> { s.split('/').map(str::to_string).collect() };
        assert_eq!(
            node_segment(&segs("a/b/node/mc-node-02/c")),
            Some("mc-node-02")
        );
        assert_eq!(node_segment(&segs("no/marker/here")), None);
        assert_eq!(node_segment(&segs("ends/with/node")), None);
    }
}
