//! Text dashboards (the Grafana role): heatmaps over nodes × time, and
//! sparkline strips for single series. Fig. 5 of the paper is a heatmap of
//! instructions/s, network traffic and memory usage across the eight nodes
//! during an HPL run — [`Heatmap`] renders exactly that from the store.

use cimone_soc::units::{SimDuration, SimTime};

use crate::topic::TopicFilter;
use crate::tsdb::{Aggregation, TimeSeriesStore};

/// Shade ramp used for heat cells, low to high.
const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];

/// A rendered heatmap: one labelled row per series, binned over time.
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    /// Dashboard title.
    pub title: String,
    /// Row labels (e.g. hostnames).
    pub rows: Vec<String>,
    /// Cell values: `values[row][bin]`, `None` for empty bins.
    pub values: Vec<Vec<Option<f64>>>,
    /// Bin width.
    pub bin: SimDuration,
    /// Start of the rendered range.
    pub from: SimTime,
}

impl Heatmap {
    /// Builds a heatmap from every series matching `filter`, labelling rows
    /// with `label_of(series_name)` and merging series that map to the same
    /// label (e.g. per-core series summed per node).
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or the range is empty.
    #[allow(clippy::too_many_arguments)]
    pub fn from_store(
        title: impl Into<String>,
        store: &TimeSeriesStore,
        filter: &TopicFilter,
        from: SimTime,
        to: SimTime,
        bins: usize,
        aggregation: Aggregation,
        label_of: impl Fn(&str) -> String,
    ) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(to > from, "empty time range");
        let bin = (to - from) / bins as u64;
        let bin = if bin.is_zero() {
            SimDuration::from_micros(1)
        } else {
            bin
        };

        let grouped = store.query_filter(filter, from, to);
        let mut rows: Vec<String> = Vec::new();
        let mut values: Vec<Vec<Option<f64>>> = Vec::new();
        for name in grouped.keys() {
            let label = label_of(name);
            let row_idx = match rows.iter().position(|r| *r == label) {
                Some(i) => i,
                None => {
                    rows.push(label);
                    values.push(vec![None; bins]);
                    rows.len() - 1
                }
            };
            for (b, slot) in values[row_idx].iter_mut().enumerate() {
                let bin_start = from + bin * b as u64;
                let bin_end = bin_start + bin;
                if let Some(v) = store.aggregate(name, bin_start, bin_end, aggregation) {
                    *slot = Some(slot.unwrap_or(0.0) + v);
                }
            }
        }
        Heatmap {
            title: title.into(),
            rows,
            values,
            bin,
            from,
        }
    }

    /// Number of time bins.
    pub fn bins(&self) -> usize {
        self.values.first().map_or(0, Vec::len)
    }

    /// Renders to a shaded text block.
    pub fn render(&self) -> String {
        let max = self
            .values
            .iter()
            .flatten()
            .flatten()
            .fold(f64::MIN_POSITIVE, |a, &b| a.max(b));
        let label_width = self.rows.iter().map(String::len).max().unwrap_or(4).max(4);
        let mut out = format!("== {} ==\n", self.title);
        for (label, row) in self.rows.iter().zip(&self.values) {
            out.push_str(&format!("{label:>label_width$} |"));
            for cell in row {
                let ch = match cell {
                    None => SHADES[0],
                    Some(v) => {
                        let idx = ((v / max) * (SHADES.len() - 1) as f64).round() as usize;
                        SHADES[idx.min(SHADES.len() - 1)]
                    }
                };
                out.push(ch);
            }
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "{:>label_width$} +{}+ ({} per cell)\n",
            "",
            "-".repeat(self.bins()),
            self.bin
        ));
        out
    }
}

/// Renders a single series as a one-line unicode sparkline.
pub fn sparkline(
    store: &TimeSeriesStore,
    series: &str,
    from: SimTime,
    to: SimTime,
    bins: usize,
) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    assert!(bins > 0, "need at least one bin");
    assert!(to > from, "empty time range");
    let bin = (to - from) / bins as u64;
    let bin = if bin.is_zero() {
        SimDuration::from_micros(1)
    } else {
        bin
    };
    let points = store.downsample(series, from, to, bin, Aggregation::Mean);
    if points.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, v) in &points {
        lo = lo.min(*v);
        hi = hi.max(*v);
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    points
        .iter()
        .map(|(_, v)| {
            let idx = ((v - lo) / span * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;
    use crate::topic::Topic;

    fn store() -> TimeSeriesStore {
        let mut db = TimeSeriesStore::new();
        for node in 1..=3u64 {
            let topic: Topic = format!("node/mc-{node:02}/instret").parse().unwrap();
            for t in 0..30u64 {
                // Node 3 works three times as hard.
                let v = node as f64 * (t as f64 + 1.0);
                db.insert(&topic, Payload::new(v, SimTime::from_secs(t)));
            }
        }
        db
    }

    #[test]
    fn heatmap_shapes_follow_the_query() {
        let db = store();
        let hm = Heatmap::from_store(
            "Instructions/s",
            &db,
            &"node/+/instret".parse().unwrap(),
            SimTime::ZERO,
            SimTime::from_secs(30),
            10,
            Aggregation::Mean,
            |name| name.split('/').nth(1).unwrap_or("?").to_owned(),
        );
        assert_eq!(hm.rows, vec!["mc-01", "mc-02", "mc-03"]);
        assert_eq!(hm.bins(), 10);
        assert!(hm.values[2][9] > hm.values[0][9], "node 3 should be hotter");
    }

    #[test]
    fn render_produces_one_line_per_row_plus_frame() {
        let db = store();
        let hm = Heatmap::from_store(
            "test",
            &db,
            &"node/+/instret".parse().unwrap(),
            SimTime::ZERO,
            SimTime::from_secs(30),
            8,
            Aggregation::Mean,
            |n| n.to_owned(),
        );
        let text = hm.render();
        assert_eq!(text.lines().count(), 1 + 3 + 1);
        assert!(text.contains('█'), "max cell should be full shade:\n{text}");
    }

    #[test]
    fn merged_labels_sum_series() {
        let mut db = TimeSeriesStore::new();
        for core in 0..2 {
            let topic: Topic = format!("n/a/core/{core}/instret").parse().unwrap();
            db.insert(&topic, Payload::new(10.0, SimTime::from_secs(1)));
        }
        let hm = Heatmap::from_store(
            "merged",
            &db,
            &"n/+/core/+/instret".parse().unwrap(),
            SimTime::ZERO,
            SimTime::from_secs(2),
            1,
            Aggregation::Mean,
            |_| "node-a".to_owned(),
        );
        assert_eq!(hm.rows, vec!["node-a"]);
        assert_eq!(hm.values[0][0], Some(20.0));
    }

    #[test]
    fn sparkline_reflects_the_trend() {
        let db = store();
        let line = sparkline(
            &db,
            "node/mc-01/instret",
            SimTime::ZERO,
            SimTime::from_secs(30),
            10,
        );
        assert_eq!(line.chars().count(), 10);
        assert_eq!(line.chars().next(), Some('▁'));
        assert_eq!(line.chars().last(), Some('█'));
    }

    #[test]
    fn sparkline_of_missing_series_is_empty() {
        let db = TimeSeriesStore::new();
        assert!(sparkline(&db, "nope", SimTime::ZERO, SimTime::from_secs(1), 5).is_empty());
    }
}
