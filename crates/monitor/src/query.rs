//! The RESTful-style query interface (ExaMon exposes its store over HTTP
//! with JSON; batch analysis scripts consume it). Requests and responses
//! are JSON-serialisable structures evaluated directly against the store.

use serde::{Deserialize, Serialize};

use cimone_soc::units::{SimDuration, SimTime};

use crate::json::JsonValue;
use crate::topic::TopicFilter;
use crate::tsdb::{Aggregation, TimeSeriesStore};

/// A query over the store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Topic filter selecting series (MQTT wildcard syntax).
    pub filter: String,
    /// Range start, seconds.
    pub from_secs: f64,
    /// Range end (exclusive), seconds.
    pub to_secs: f64,
    /// Optional downsampling bin, seconds.
    pub bin_secs: Option<f64>,
    /// Aggregation for downsampling (default mean).
    pub aggregation: Option<Aggregation>,
}

/// One series in a response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesData {
    /// Series (topic) name.
    pub name: String,
    /// `[seconds, value]` pairs.
    pub points: Vec<(f64, f64)>,
}

/// A query response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResponse {
    /// Matched series.
    pub series: Vec<SeriesData>,
}

/// Query evaluation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The filter string failed to parse.
    BadFilter(String),
    /// `to <= from` or a non-finite bound.
    BadRange,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::BadFilter(s) => write!(f, "bad filter: {s}"),
            QueryError::BadRange => write!(f, "range must be finite with to > from >= 0"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Evaluates `request` against `store`.
///
/// # Errors
///
/// Fails for malformed filters or ranges.
///
/// # Examples
///
/// ```
/// use cimone_monitor::payload::Payload;
/// use cimone_monitor::query::{evaluate, QueryRequest};
/// use cimone_monitor::tsdb::TimeSeriesStore;
/// use cimone_soc::units::SimTime;
///
/// let mut db = TimeSeriesStore::new();
/// db.insert(&"a/b".parse()?, Payload::new(7.0, SimTime::from_secs(3)));
/// let resp = evaluate(
///     &db,
///     &QueryRequest {
///         filter: "a/#".to_owned(),
///         from_secs: 0.0,
///         to_secs: 10.0,
///         bin_secs: None,
///         aggregation: None,
///     },
/// )?;
/// assert_eq!(resp.series[0].points, vec![(3.0, 7.0)]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate(
    store: &TimeSeriesStore,
    request: &QueryRequest,
) -> Result<QueryResponse, QueryError> {
    let filter: TopicFilter = request
        .filter
        .parse()
        .map_err(|e| QueryError::BadFilter(format!("{e}")))?;
    if !request.from_secs.is_finite()
        || !request.to_secs.is_finite()
        || request.from_secs < 0.0
        || request.to_secs <= request.from_secs
    {
        return Err(QueryError::BadRange);
    }
    let from = SimTime::from_micros((request.from_secs * 1e6) as u64);
    let to = SimTime::from_micros((request.to_secs * 1e6) as u64);
    let aggregation = request.aggregation.unwrap_or(Aggregation::Mean);

    let mut series = Vec::new();
    for (name, points) in store.query_filter(&filter, from, to) {
        let points: Vec<(f64, f64)> = match request.bin_secs {
            Some(bin_secs) if bin_secs > 0.0 => store
                .downsample(
                    &name,
                    from,
                    to,
                    SimDuration::from_secs_f64(bin_secs),
                    aggregation,
                )
                .into_iter()
                .map(|(t, v)| (t.as_secs_f64(), v))
                .collect(),
            _ => points
                .into_iter()
                .map(|(t, v)| (t.as_secs_f64(), v))
                .collect(),
        };
        series.push(SeriesData { name, points });
    }
    Ok(QueryResponse { series })
}

fn aggregation_name(aggregation: Aggregation) -> &'static str {
    match aggregation {
        Aggregation::Mean => "Mean",
        Aggregation::Min => "Min",
        Aggregation::Max => "Max",
        Aggregation::Sum => "Sum",
        Aggregation::Count => "Count",
        Aggregation::Last => "Last",
    }
}

fn aggregation_from_name(name: &str) -> Option<Aggregation> {
    match name {
        "Mean" => Some(Aggregation::Mean),
        "Min" => Some(Aggregation::Min),
        "Max" => Some(Aggregation::Max),
        "Sum" => Some(Aggregation::Sum),
        "Count" => Some(Aggregation::Count),
        "Last" => Some(Aggregation::Last),
        _ => None,
    }
}

impl QueryRequest {
    /// Serialises the request to its wire (JSON) form.
    pub fn to_json(&self) -> String {
        JsonValue::object([
            ("filter".to_owned(), JsonValue::String(self.filter.clone())),
            ("from_secs".to_owned(), JsonValue::Number(self.from_secs)),
            ("to_secs".to_owned(), JsonValue::Number(self.to_secs)),
            (
                "bin_secs".to_owned(),
                self.bin_secs.map_or(JsonValue::Null, JsonValue::Number),
            ),
            (
                "aggregation".to_owned(),
                self.aggregation.map_or(JsonValue::Null, |a| {
                    JsonValue::String(aggregation_name(a).to_owned())
                }),
            ),
        ])
        .to_string()
    }

    /// Parses a request from its wire (JSON) form.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, missing required fields, or unknown
    /// aggregation names.
    pub fn from_json(json: &str) -> Result<QueryRequest, String> {
        let value = JsonValue::parse(json).map_err(|e| e.to_string())?;
        let filter = value
            .get("filter")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field 'filter'")?
            .to_owned();
        let from_secs = value
            .get("from_secs")
            .and_then(JsonValue::as_f64)
            .ok_or("missing number field 'from_secs'")?;
        let to_secs = value
            .get("to_secs")
            .and_then(JsonValue::as_f64)
            .ok_or("missing number field 'to_secs'")?;
        let bin_secs = match value.get("bin_secs") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => Some(v.as_f64().ok_or("field 'bin_secs' must be a number")?),
        };
        let aggregation = match value.get("aggregation") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => {
                let name = v.as_str().ok_or("field 'aggregation' must be a string")?;
                Some(
                    aggregation_from_name(name)
                        .ok_or_else(|| format!("unknown aggregation '{name}'"))?,
                )
            }
        };
        Ok(QueryRequest {
            filter,
            from_secs,
            to_secs,
            bin_secs,
            aggregation,
        })
    }
}

impl QueryResponse {
    /// Serialises the response to its wire (JSON) form.
    pub fn to_json(&self) -> String {
        JsonValue::object([(
            "series".to_owned(),
            JsonValue::Array(
                self.series
                    .iter()
                    .map(|s| {
                        JsonValue::object([
                            ("name".to_owned(), JsonValue::String(s.name.clone())),
                            (
                                "points".to_owned(),
                                JsonValue::Array(
                                    s.points
                                        .iter()
                                        .map(|&(t, v)| {
                                            JsonValue::Array(vec![
                                                JsonValue::Number(t),
                                                JsonValue::Number(v),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )])
        .to_string()
    }

    /// Parses a response from its wire (JSON) form.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a structure that does not match
    /// [`QueryResponse::to_json`].
    pub fn from_json(json: &str) -> Result<QueryResponse, String> {
        let value = JsonValue::parse(json).map_err(|e| e.to_string())?;
        let mut series = Vec::new();
        for item in value
            .get("series")
            .and_then(JsonValue::as_array)
            .ok_or("missing array field 'series'")?
        {
            let name = item
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("series missing string field 'name'")?
                .to_owned();
            let mut points = Vec::new();
            for pair in item
                .get("points")
                .and_then(JsonValue::as_array)
                .ok_or("series missing array field 'points'")?
            {
                let pair = pair.as_array().ok_or("point must be a [t, v] pair")?;
                if pair.len() != 2 {
                    return Err("point must be a [t, v] pair".to_owned());
                }
                let t = pair[0].as_f64().ok_or("point time must be a number")?;
                let v = pair[1].as_f64().ok_or("point value must be a number")?;
                points.push((t, v));
            }
            series.push(SeriesData { name, points });
        }
        Ok(QueryResponse { series })
    }
}

/// Evaluates a JSON request and returns a JSON response — the full
/// REST-over-HTTP round trip minus the socket.
///
/// # Errors
///
/// Returns a JSON error object string for malformed input.
pub fn evaluate_json(store: &TimeSeriesStore, request_json: &str) -> Result<String, String> {
    let request =
        QueryRequest::from_json(request_json).map_err(|e| format!("{{\"error\":\"{e}\"}}"))?;
    match evaluate(store, &request) {
        Ok(resp) => Ok(resp.to_json()),
        Err(e) => Err(format!("{{\"error\":\"{e}\"}}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;

    fn db() -> TimeSeriesStore {
        let mut db = TimeSeriesStore::new();
        for t in 0..10u64 {
            db.insert(
                &"node/a/power".parse().unwrap(),
                Payload::new(t as f64, SimTime::from_secs(t)),
            );
        }
        db
    }

    #[test]
    fn raw_queries_return_points_in_range() {
        let resp = evaluate(
            &db(),
            &QueryRequest {
                filter: "node/+/power".to_owned(),
                from_secs: 2.0,
                to_secs: 5.0,
                bin_secs: None,
                aggregation: None,
            },
        )
        .unwrap();
        assert_eq!(resp.series.len(), 1);
        assert_eq!(resp.series[0].points.len(), 3);
    }

    #[test]
    fn binned_queries_downsample() {
        let resp = evaluate(
            &db(),
            &QueryRequest {
                filter: "node/a/power".to_owned(),
                from_secs: 0.0,
                to_secs: 10.0,
                bin_secs: Some(5.0),
                aggregation: Some(Aggregation::Max),
            },
        )
        .unwrap();
        assert_eq!(resp.series[0].points, vec![(0.0, 4.0), (5.0, 9.0)]);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let store = db();
        assert!(matches!(
            evaluate(
                &store,
                &QueryRequest {
                    filter: "a//b".to_owned(),
                    from_secs: 0.0,
                    to_secs: 1.0,
                    bin_secs: None,
                    aggregation: None,
                }
            ),
            Err(QueryError::BadFilter(_))
        ));
        assert!(matches!(
            evaluate(
                &store,
                &QueryRequest {
                    filter: "#".to_owned(),
                    from_secs: 5.0,
                    to_secs: 5.0,
                    bin_secs: None,
                    aggregation: None,
                }
            ),
            Err(QueryError::BadRange)
        ));
    }

    #[test]
    fn json_round_trip() {
        let json = r#"{"filter":"node/a/power","from_secs":0,"to_secs":3,"bin_secs":null,"aggregation":null}"#;
        let out = evaluate_json(&db(), json).unwrap();
        let parsed = QueryResponse::from_json(&out).unwrap();
        assert_eq!(parsed.series[0].points.len(), 3);
        assert!(evaluate_json(&db(), "not json").is_err());
    }

    #[test]
    fn request_json_round_trip_preserves_fields() {
        let request = QueryRequest {
            filter: "node/+/power".to_owned(),
            from_secs: 1.5,
            to_secs: 9.0,
            bin_secs: Some(2.0),
            aggregation: Some(Aggregation::Max),
        };
        let parsed = QueryRequest::from_json(&request.to_json()).unwrap();
        assert_eq!(parsed, request);
        assert!(QueryRequest::from_json(r#"{"filter":"a"}"#).is_err());
        assert!(QueryRequest::from_json(
            r#"{"filter":"a","from_secs":0,"to_secs":1,"aggregation":"Median"}"#
        )
        .is_err());
    }
}
