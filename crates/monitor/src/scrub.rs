//! Telemetry plausibility scrubbing: the ingestion-side defence against
//! silent data corruption.
//!
//! A flipped bit in a sensor reading does not announce itself — it arrives
//! as a perfectly well-formed sample carrying an impossible value (a
//! negative board power, a 10⁳⁰⁰ °C silicon temperature). Without a
//! plausibility check the corrupted point lands in the TSDB and poisons
//! every downstream aggregate: MTTF dashboards, the thermal-anomaly
//! detector, energy accounting. A [`ScrubPolicy`] installed on the
//! [`crate::collector::Collector`] range-checks each payload *before* it
//! is staged for the store; implausible samples are quarantined (held for
//! the engine to turn into an `SdcSuspected` event) instead of ingested.
//!
//! The policy is deliberately coarse: ranges are chosen to enclose every
//! value the simulated machine can legitimately produce, so a scrubbing
//! collector is byte-identical to an unscrubbed one on a corruption-free
//! run. Metrics the policy does not know (load averages, counters, network
//! byte rates) always pass.

use crate::payload::Payload;
use crate::topic::Topic;

/// Plugin segment of the fine-grain power publisher's topics.
const POWER_PLUGIN: &str = "pwr_pub";

/// Metric-name prefix of the stats plugin's thermal series.
const TEMPERATURE_PREFIX: &str = "temperature.";

/// Range limits for the metrics a [`ScrubPolicy`] understands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrubPolicy {
    /// Admissible board power, watts (inclusive).
    pub power_watts: (f64, f64),
    /// Admissible component temperature, °C (inclusive).
    pub temperature_celsius: (f64, f64),
}

impl ScrubPolicy {
    /// The Monte Cimone envelope: a node draws single-digit watts idle and
    /// tens under HPL, so `[0, 10 kW]` bounds any legitimate sample with
    /// orders of magnitude to spare; component temperatures live between
    /// commercial-silicon storage limits `[-55, 150] °C`. Both ranges are
    /// far outside anything the simulation produces — the scrub only ever
    /// fires on genuinely corrupted payloads.
    pub fn monte_cimone() -> Self {
        ScrubPolicy {
            power_watts: (0.0, 10_000.0),
            temperature_celsius: (-55.0, 150.0),
        }
    }

    /// Whether `payload` on `topic` is plausible. Non-finite values on a
    /// known metric are never plausible; metrics the policy does not
    /// recognise always pass.
    pub fn is_plausible(&self, topic: &Topic, payload: &Payload) -> bool {
        let v = payload.value;
        let segments = topic.segments();
        if segments.iter().any(|s| s == POWER_PLUGIN) {
            let (lo, hi) = self.power_watts;
            return v.is_finite() && (lo..=hi).contains(&v);
        }
        if segments
            .last()
            .is_some_and(|s| s.starts_with(TEMPERATURE_PREFIX))
        {
            let (lo, hi) = self.temperature_celsius;
            return v.is_finite() && (lo..=hi).contains(&v);
        }
        true
    }
}

impl Default for ScrubPolicy {
    fn default() -> Self {
        ScrubPolicy::monte_cimone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimone_soc::units::SimTime;

    fn pay(v: f64) -> Payload {
        Payload::new(v, SimTime::ZERO)
    }

    #[test]
    fn power_samples_are_range_checked() {
        let policy = ScrubPolicy::monte_cimone();
        let topic: Topic =
            "org/unibo/cluster/cimone/node/mc-node-00/plugin/pwr_pub/chnl/data/total_power"
                .parse()
                .unwrap();
        assert!(policy.is_plausible(&topic, &pay(5.9)));
        assert!(policy.is_plausible(&topic, &pay(0.0)));
        assert!(!policy.is_plausible(&topic, &pay(-5.9)), "negative watts");
        assert!(!policy.is_plausible(&topic, &pay(1.0e12)));
        assert!(!policy.is_plausible(&topic, &pay(f64::NAN)));
        assert!(!policy.is_plausible(&topic, &pay(f64::INFINITY)));
    }

    #[test]
    fn temperature_metrics_are_range_checked() {
        let policy = ScrubPolicy::monte_cimone();
        let topic: Topic =
            "org/unibo/cluster/cimone/node/mc-node-01/plugin/stats/chnl/data/temperature.cpu_temp"
                .parse()
                .unwrap();
        assert!(policy.is_plausible(&topic, &pay(47.0)));
        assert!(policy.is_plausible(&topic, &pay(-10.0)));
        assert!(!policy.is_plausible(&topic, &pay(1.0e307)));
        assert!(!policy.is_plausible(&topic, &pay(-273.0)));
        assert!(!policy.is_plausible(&topic, &pay(f64::NAN)));
    }

    #[test]
    fn unknown_metrics_always_pass() {
        let policy = ScrubPolicy::monte_cimone();
        let topic: Topic =
            "org/unibo/cluster/cimone/node/mc-node-02/plugin/stats/chnl/data/load.load1m"
                .parse()
                .unwrap();
        // Even absurd values pass on metrics without a configured range —
        // the scrub must never quarantine what it cannot judge.
        assert!(policy.is_plausible(&topic, &pay(-1.0e300)));
        assert!(policy.is_plausible(&topic, &pay(f64::NAN)));
    }
}
