//! The process-wide topic interner.
//!
//! Every distinct [`Topic`](crate::topic::Topic) is registered here exactly
//! once and handed out as a `&'static`-shared record carrying a stable
//! small-integer [`TopicId`]. The registry is process-lifetime (entries
//! are never evicted), so records are leaked on registration and handles
//! are plain `Copy` references: cloning a topic costs nothing — not even
//! a reference-count bump — comparing it is an integer compare, and
//! brokers/stores can key routing tables and series columns by `TopicId`
//! instead of re-hashing strings per sample.
//!
//! Ids are assigned in registration order and never reused; the registry
//! grows monotonically for the process lifetime (bounded by the number of
//! distinct topics, a few hundred for a cluster of this size). The
//! `Display`/parse round-trip is lossless — the rendered form is exactly
//! the `/`-joined segments, so the `<value>;<timestamp>` wire format and
//! every event/telemetry byte are unchanged by interning.

use std::collections::HashMap;
use std::sync::LazyLock;

use parking_lot::RwLock;

/// A stable small-integer handle for an interned topic.
///
/// Ids are dense (assigned from 0 in registration order), which lets hot
/// consumers index plain vectors by [`TopicId::index`] instead of hashing.
/// Ordering follows registration order, not topic-name order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopicId(pub(crate) u32);

impl TopicId {
    /// The raw id.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// The id as a dense vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The shared, immutable record behind one interned topic.
#[derive(Debug)]
pub(crate) struct TopicData {
    pub(crate) id: TopicId,
    pub(crate) segments: Vec<String>,
    pub(crate) display: String,
}

#[derive(Default)]
struct Interner {
    by_display: HashMap<String, u32>,
    entries: Vec<&'static TopicData>,
    /// Deep registrations performed (cache misses). Steady-state hot
    /// paths must keep this flat — the zero-allocation probe asserts it.
    registrations: u64,
}

static INTERNER: LazyLock<RwLock<Interner>> = LazyLock::new(|| RwLock::new(Interner::default()));

/// Looks up an already-interned topic by its rendered form without
/// allocating. Returns `None` if the topic has never been registered.
pub(crate) fn lookup_display(display: &str) -> Option<&'static TopicData> {
    let interner = INTERNER.read();
    interner
        .by_display
        .get(display)
        .map(|&i| interner.entries[i as usize])
}

/// Resolves an id back to its record.
pub(crate) fn get(id: TopicId) -> Option<&'static TopicData> {
    INTERNER.read().entries.get(id.index()).copied()
}

/// Interns validated segments, returning the shared record (registering it
/// on first sight). `segments` must already satisfy the topic grammar.
pub(crate) fn intern(segments: Vec<String>) -> &'static TopicData {
    let display = segments.join("/");
    if let Some(found) = lookup_display(&display) {
        return found;
    }
    let mut interner = INTERNER.write();
    if let Some(&i) = interner.by_display.get(&display) {
        return interner.entries[i as usize];
    }
    let id = TopicId(
        u32::try_from(interner.entries.len()).expect("topic interner overflow (2^32 topics)"),
    );
    // Leaked deliberately: the registry never evicts, so every record
    // lives for the process lifetime regardless — leaking makes that
    // explicit and lets handles be refcount-free `Copy` references.
    let data: &'static TopicData = Box::leak(Box::new(TopicData {
        id,
        segments,
        display: display.clone(),
    }));
    interner.by_display.insert(display, id.0);
    interner.entries.push(data);
    interner.registrations += 1;
    data
}

/// Number of distinct topics interned so far.
pub fn interned_count() -> usize {
    INTERNER.read().entries.len()
}

/// Total deep registrations performed (monotonic). A steady-state
/// telemetry loop over pre-registered topics must not move this counter;
/// the zero-allocation tests assert exactly that.
pub fn registration_count() -> u64 {
    INTERNER.read().registrations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_shared() {
        let a = intern(vec!["interner".into(), "stable".into(), "x".into()]);
        let b = intern(vec!["interner".into(), "stable".into(), "x".into()]);
        assert_eq!(a.id, b.id);
        assert!(std::ptr::eq(a, b));
        let c = intern(vec!["interner".into(), "stable".into(), "y".into()]);
        assert_ne!(a.id, c.id);
        assert_eq!(get(a.id).unwrap().display, "interner/stable/x");
    }

    #[test]
    fn repeat_interning_does_not_register_again() {
        intern(vec!["interner".into(), "idem".into()]);
        let before = registration_count();
        for _ in 0..10 {
            intern(vec!["interner".into(), "idem".into()]);
            assert!(lookup_display("interner/idem").is_some());
        }
        assert_eq!(registration_count(), before);
    }
}
