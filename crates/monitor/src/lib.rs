//! An ExaMon-like Operational Data Analytics (ODA) stack for the Monte
//! Cimone reproduction.
//!
//! The paper ports the ExaMon framework to the RISC-V cluster: sampling
//! plugins publish over MQTT to a broker, a storage backend ingests the
//! streams, and dashboards/batch queries sit on top. This crate rebuilds
//! the whole pipeline:
//!
//! * [`topic`] / [`payload`] — the exact topic schema and
//!   `value;timestamp` payload format of Table II;
//! * [`broker`] — a thread-safe MQTT-style pub/sub broker (QoS 0);
//! * [`plugins`] — `pmu_pub` (per-core counters, 2 Hz) and `stats_pub`
//!   (Table III's 28 OS metrics incl. the Table IV hwmon temperatures,
//!   0.2 Hz);
//! * [`collector`] / [`tsdb`] — ingestion into a time-series store with
//!   range queries, aggregation and downsampling;
//! * [`query`] — the REST/JSON-style batch interface;
//! * [`dashboard`] — Grafana-role text heatmaps (Fig. 5) and sparklines;
//! * [`anomaly`] — threshold and rate-of-rise detection, including the
//!   thermal-runaway detector motivated by the paper's node-7 incident;
//! * [`heartbeat`] — per-node heartbeats and a phi-accrual failure
//!   detector, so crash detection rides the telemetry path instead of an
//!   oracle.
//!
//! # Examples
//!
//! ```
//! use cimone_monitor::broker::Broker;
//! use cimone_monitor::collector::Collector;
//! use cimone_monitor::payload::Payload;
//! use cimone_monitor::topic::ExamonSchema;
//! use cimone_monitor::tsdb::TimeSeriesStore;
//! use cimone_soc::units::SimTime;
//!
//! let schema = ExamonSchema::monte_cimone();
//! let broker = Broker::new();
//! let mut collector = Collector::attach(&broker, schema.node_filter("mc-node-01"));
//! broker.publish(
//!     &schema.stats_topic("mc-node-01", "temperature.cpu_temp"),
//!     Payload::new(48.5, SimTime::from_secs(1)),
//! );
//! let mut db = TimeSeriesStore::new();
//! assert_eq!(collector.pump(&mut db), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anomaly;
pub mod broker;
pub mod collector;
pub mod dashboard;
pub mod heartbeat;
pub mod interner;
pub mod json;
pub mod payload;
pub mod plugins;
pub mod query;
pub mod scrub;
pub mod topic;
pub mod tsdb;

pub use anomaly::{Alarm, Severity, ThermalRunawayDetector};
pub use broker::{Broker, PublishedMessage, Subscription};
pub use collector::Collector;
pub use dashboard::Heatmap;
pub use heartbeat::{HeartbeatMonitor, PhiAccrualDetector};
pub use interner::TopicId;
pub use payload::Payload;
pub use plugins::{NodeSnapshot, Plugin, PluginRunner, PmuPlugin, StatsPlugin};
pub use scrub::ScrubPolicy;
pub use topic::{ExamonSchema, Topic, TopicFilter};
pub use tsdb::{Aggregation, TimeSeriesStore};
