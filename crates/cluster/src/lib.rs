//! The Monte Cimone machine model: the paper's eight-node RISC-V cluster
//! as a deterministic simulator, plus every experiment from the paper's
//! evaluation.
//!
//! This is the top of the reproduction stack. It composes the substrate
//! crates — [`cimone_soc`] (the FU740), [`cimone_mem`] (DDR/L2),
//! [`cimone_net`] (GbE/InfiniBand), [`cimone_kernels`] (real dense LA),
//! [`cimone_sched`] (Slurm-like batch), [`cimone_monitor`] (ExaMon-like
//! ODA) and [`cimone_pkg`] (Spack-like packaging) — into:
//!
//! * [`node`] / [`blade`] — the RV007 blade hardware;
//! * [`thermal`] — the enclosure model behind the Fig. 6 incident;
//! * [`perf`] — calibrated HPL and QE LAX machine-scale models;
//! * [`reference`](mod@reference) — the Marconi100 / Armida comparison nodes;
//! * [`engine`] — the scheduler-driven simulation loop with power,
//!   thermal and monitoring integrated;
//! * [`faults`] — deterministic, seeded fault injection driven against
//!   the engine clock;
//! * [`checkpoint`] / [`healing`] — the recovery subsystem: NFS-backed
//!   checkpoint/restart, phi-accrual failure detection over broker
//!   heartbeats, and the self-healing control plane (fencing, migration,
//!   thermal watchdog, partition-aware detection, blade and rack power
//!   arbitration);
//! * [`experiments`] — one module per paper table/figure.
//!
//! # Examples
//!
//! Reproduce the paper's single-node HPL headline:
//!
//! ```
//! use cimone_cluster::perf::{HplModel, HplProblem};
//!
//! let model = HplModel::monte_cimone(HplProblem::paper());
//! assert!((model.gflops(1) - 1.86).abs() < 0.02);
//! assert!((model.gflops(8) - 12.65).abs() < 0.3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blade;
pub mod checkpoint;
pub mod dpm;
pub mod engine;
pub mod experiments;
pub mod faults;
pub mod healing;
pub mod node;
pub mod perf;
pub mod reference;
pub mod report;
pub mod services;
pub mod thermal;

pub use blade::{Blade, MachineLayout, RAIL_RATED_WATTS};
pub use checkpoint::{CheckpointCostModel, CheckpointStore, CheckpointStoreConfig, JobCheckpoint};
pub use dpm::ThermalGovernor;
pub use engine::{ClusterWorkload, EngineConfig, EngineEvent, JobRequest, SimEngine};
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultPlanError};
pub use healing::{
    CapAction, CheckpointConfig, ControlPlane, PowerCapConfig, PowerCapGovernor, RecoveryConfig,
    ThermalWatchdog,
};
pub use node::ComputeNode;
pub use perf::{HplModel, HplProblem, LaxModel};
pub use reference::ReferenceNode;
pub use thermal::{AirflowConfig, AirflowDegradation, ThermalModel};
