//! The enclosure thermal model behind Fig. 6.
//!
//! Each node's SoC temperature follows a lumped RC model
//!
//! ```text
//! C · dT/dt = P_soc − (T − T_env,i) / R_i
//! ```
//!
//! where the node's effective environment `T_env,i = T_ambient + ΔT_i`
//! bundles the heat recirculated from the blade PSUs and neighbouring
//! blades, and both `ΔT_i` and the thermal resistance `R_i` depend on the
//! [`AirflowConfig`]. With the original lid-on enclosure the centre blades
//! run hot and node 7's position (directly downstream of its PSU, worst
//! airflow) puts its equilibrium *above* the FU740's 107 °C trip point —
//! reproducing the paper's runaway. Removing the lid and spacing the
//! blades drops the same node to ≈39 °C, the paper's post-fix figure.

use cimone_soc::units::{Celsius, Power, SimDuration};
use serde::{Deserialize, Serialize};

/// The FU740 thermal trip point observed in the paper.
pub const TRIP_POINT: Celsius = Celsius::new(107.0);

/// Enclosure airflow configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AirflowConfig {
    /// The original 1U case: lid on, blades tightly stacked, PSU exhaust
    /// recirculating (the paper's initial, hazardous configuration).
    LidOnTightStack,
    /// The paper's mitigation: lid removed, vertical spacing added.
    LidOffSpaced,
}

/// Per-node thermal parameters under one airflow config.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeThermalParams {
    /// Thermal resistance, °C per watt of SoC power.
    pub resistance: f64,
    /// Environment offset over ambient, °C (PSU + neighbour recirculation).
    pub env_offset: f64,
    /// Heat capacity, joules per °C.
    pub capacity: f64,
}

/// The eight-node thermal model.
///
/// # Examples
///
/// ```
/// use cimone_cluster::thermal::{AirflowConfig, ThermalModel};
/// use cimone_soc::units::{Celsius, Power, SimDuration};
///
/// let mut model = ThermalModel::monte_cimone(AirflowConfig::LidOffSpaced);
/// let hpl = [Power::from_watts(5.935); 8];
/// for _ in 0..5000 {
///     model.step(&hpl, SimDuration::from_secs(1));
/// }
/// // Paper: ≈39 °C steady state after the mitigation.
/// assert!(model.temperature(6).as_f64() < 45.0);
/// ```
/// How badly a node's airflow is degraded by a dead blade fan.
///
/// The multipliers stack on top of the [`AirflowConfig`] baseline: a
/// direct hit (the node's own blade fan) roughly doubles the thermal
/// resistance and raises the local environment sharply; the blade in the
/// exhaust shadow sees a milder version of both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AirflowDegradation {
    /// Normal airflow.
    None,
    /// The node's own blade fan is dead.
    Direct,
    /// The node sits in a dead fan's exhaust shadow (the blade above).
    Shadow,
}

impl AirflowDegradation {
    /// `(resistance multiplier, env-offset delta °C)` for this state.
    fn factors(self) -> (f64, f64) {
        match self {
            AirflowDegradation::None => (1.0, 0.0),
            AirflowDegradation::Direct => (1.8, 12.0),
            AirflowDegradation::Shadow => (1.2, 5.0),
        }
    }
}

/// Lumped-capacitance thermal model of the enclosure: per-node heat-up,
/// airflow coupling (including dead-fan degradation), and trip latches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    config: AirflowConfig,
    ambient: Celsius,
    params: Vec<NodeThermalParams>,
    temperatures: Vec<f64>,
    tripped: Vec<bool>,
    /// Exponential leakage feedback: extra SoC watts per °C above 45 °C.
    leakage_feedback_w_per_deg: f64,
    /// Per-node fan-failure airflow state (default all `None`).
    airflow_degradation: Vec<AirflowDegradation>,
}

impl ThermalModel {
    /// The calibrated Monte Cimone model (8 nodes, 25 °C machine room).
    ///
    /// Calibration anchors (paper §V-C): under the lid-on config during
    /// HPL, edge nodes settle in the 60s °C, centre nodes around 71 °C and
    /// node 7 diverges past the 107 °C trip; lid-off all nodes settle near
    /// 39 °C.
    pub fn monte_cimone(config: AirflowConfig) -> Self {
        let ambient = Celsius::new(25.0);
        let params = (0..8)
            .map(|i| match config {
                AirflowConfig::LidOnTightStack => {
                    // Node 7 (index 6) sits directly downstream of its PSU:
                    // worst airflow in the stack.
                    let (resistance, env_offset) = match i {
                        6 => (6.2, 48.0),
                        2..=5 => (2.6, 31.0),
                        _ => (2.5, 25.0),
                    };
                    NodeThermalParams {
                        resistance,
                        env_offset,
                        capacity: 60.0,
                    }
                }
                AirflowConfig::LidOffSpaced => NodeThermalParams {
                    resistance: 2.0,
                    env_offset: 1.8,
                    capacity: 60.0,
                },
            })
            .collect();
        ThermalModel {
            config,
            ambient,
            temperatures: vec![ambient.as_f64() + 8.0; 8],
            tripped: vec![false; 8],
            params,
            leakage_feedback_w_per_deg: 0.012,
            airflow_degradation: vec![AirflowDegradation::None; 8],
        }
    }

    /// Overrides the internal leakage-feedback coefficient (watts of extra
    /// SoC power per °C above 45 °C). The simulation engine sets this to
    /// zero because its power samples already carry temperature-dependent
    /// leakage — leaving both on would double-count the feedback loop.
    pub fn with_leakage_feedback(mut self, w_per_deg: f64) -> Self {
        assert!(w_per_deg >= 0.0, "feedback must be non-negative");
        self.leakage_feedback_w_per_deg = w_per_deg;
        self
    }

    /// The active airflow configuration.
    pub fn config(&self) -> AirflowConfig {
        self.config
    }

    /// Switches airflow config in place (the paper's mitigation), keeping
    /// current temperatures.
    pub fn set_config(&mut self, config: AirflowConfig) {
        let fresh = ThermalModel::monte_cimone(config);
        self.config = config;
        self.params = fresh.params;
        // The feedback coefficient is a property of this instance (the
        // engine zeroes it), not of the airflow config: keep it.
    }

    /// Machine-room ambient.
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// Number of nodes modelled.
    pub fn node_count(&self) -> usize {
        self.temperatures.len()
    }

    /// Current SoC temperature of node `i`.
    pub fn temperature(&self, i: usize) -> Celsius {
        Celsius::new(self.temperatures[i])
    }

    /// Motherboard temperature estimate (tracks the SoC loosely).
    pub fn mb_temperature(&self, i: usize) -> Celsius {
        Celsius::new(self.ambient.as_f64() + (self.temperatures[i] - self.ambient.as_f64()) * 0.4)
    }

    /// NVMe temperature estimate.
    pub fn nvme_temperature(&self, i: usize) -> Celsius {
        Celsius::new(
            self.ambient.as_f64() + (self.temperatures[i] - self.ambient.as_f64()) * 0.3 + 4.0,
        )
    }

    /// Sets node `i`'s fan-failure airflow state (the engine drives this
    /// from [`crate::faults::FaultKind::FanFailure`] spans).
    pub fn set_airflow_degradation(&mut self, i: usize, state: AirflowDegradation) {
        self.airflow_degradation[i] = state;
    }

    /// Node `i`'s current fan-failure airflow state.
    pub fn airflow_degradation(&self, i: usize) -> AirflowDegradation {
        self.airflow_degradation[i]
    }

    /// The node's effective `(resistance, env_offset)` with any airflow
    /// degradation applied on top of the baseline config.
    fn effective_params(&self, i: usize) -> (f64, f64) {
        let prm = &self.params[i];
        let (r_mul, off_delta) = self.airflow_degradation[i].factors();
        (prm.resistance * r_mul, prm.env_offset + off_delta)
    }

    /// Whether node `i` has hit the trip point.
    pub fn is_tripped(&self, i: usize) -> bool {
        self.tripped[i]
    }

    /// Clears a trip latch (node restarted after cooling).
    pub fn clear_trip(&mut self, i: usize) {
        self.tripped[i] = false;
    }

    /// Steady-state temperature of node `i` at SoC power `p` (ignoring the
    /// leakage feedback).
    pub fn equilibrium(&self, i: usize, p: Power) -> Celsius {
        let (resistance, env_offset) = self.effective_params(i);
        Celsius::new(self.ambient.as_f64() + env_offset + resistance * p.as_watts())
    }

    /// Advances the model by `dt` under the given per-node SoC powers.
    /// Returns the indices of nodes that crossed the trip point during
    /// this step.
    ///
    /// The RC update is a pure function of (temperatures, powers, dt),
    /// so once a step leaves every temperature bitwise unchanged under
    /// constant powers, all further steps are no-ops — the fixed-point
    /// argument behind the §13 equilibrium jump and the frozen-thermal
    /// phase of the §16 sampled-span replay.
    ///
    /// # Panics
    ///
    /// Panics if `powers` does not cover every node.
    pub fn step(&mut self, powers: &[Power], dt: SimDuration) -> Vec<usize> {
        assert_eq!(
            powers.len(),
            self.temperatures.len(),
            "one power sample per node required"
        );
        let mut newly_tripped = Vec::new();
        let secs = dt.as_secs_f64();
        #[allow(clippy::needless_range_loop)] // index drives four parallel per-node arrays
        for i in 0..self.temperatures.len() {
            let (resistance, env_offset) = self.effective_params(i);
            let capacity = self.params[i].capacity;
            let temp = self.temperatures[i];
            // Leakage rises with temperature, closing the runaway loop.
            let feedback = self.leakage_feedback_w_per_deg * (temp - 45.0).max(0.0);
            let p = powers[i].as_watts() + feedback;
            let env = self.ambient.as_f64() + env_offset;
            let d_temp = (p - (temp - env) / resistance) / capacity * secs;
            let updated = temp + d_temp;
            self.temperatures[i] = updated;
            if updated >= TRIP_POINT.as_f64() && !self.tripped[i] {
                self.tripped[i] = true;
                newly_tripped.push(i);
            }
        }
        newly_tripped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_steady(model: &mut ThermalModel, powers: &[Power; 8], secs: u64) {
        for _ in 0..secs {
            model.step(powers, SimDuration::from_secs(1));
        }
    }

    #[test]
    fn lid_off_settles_near_the_paper_value() {
        let mut model = ThermalModel::monte_cimone(AirflowConfig::LidOffSpaced);
        let hpl = [Power::from_watts(5.935); 8];
        run_to_steady(&mut model, &hpl, 3000);
        for i in 0..8 {
            let t = model.temperature(i).as_f64();
            assert!((36.0..42.0).contains(&t), "node {i}: {t} °C");
            assert!(!model.is_tripped(i));
        }
    }

    #[test]
    fn lid_on_makes_centre_nodes_hotter_and_node7_run_away() {
        let mut model = ThermalModel::monte_cimone(AirflowConfig::LidOnTightStack);
        let hpl = [Power::from_watts(5.935); 8];
        let mut tripped = Vec::new();
        for _ in 0..4000 {
            tripped.extend(model.step(&hpl, SimDuration::from_secs(1)));
        }
        // Node 7 (index 6) trips at 107 °C, as in the paper.
        assert_eq!(tripped, vec![6]);
        assert!(model.temperature(6).as_f64() >= 107.0);
        // Centre nodes are significantly hotter than edge nodes (~71 vs ~60s).
        let centre = model.temperature(3).as_f64();
        let edge = model.temperature(0).as_f64();
        assert!(centre > edge + 4.0, "centre {centre}, edge {edge}");
        assert!((67.0..76.0).contains(&centre), "centre {centre}");
    }

    #[test]
    fn mitigation_cools_the_hot_node_from_71_to_39() {
        // Paper: after removing the lid, the hotter (surviving) node went
        // from 71 °C to 39 °C.
        let mut model = ThermalModel::monte_cimone(AirflowConfig::LidOnTightStack);
        let hpl = [Power::from_watts(5.935); 8];
        run_to_steady(&mut model, &hpl, 2500);
        let before = model.temperature(3).as_f64();
        assert!((before - 71.0).abs() < 3.0, "pre-fix {before}");
        model.set_config(AirflowConfig::LidOffSpaced);
        run_to_steady(&mut model, &hpl, 2500);
        let after = model.temperature(3).as_f64();
        assert!((after - 39.0).abs() < 3.0, "post-fix {after}");
    }

    #[test]
    fn idle_machine_stays_cool_in_both_configs() {
        for config in [AirflowConfig::LidOnTightStack, AirflowConfig::LidOffSpaced] {
            let mut model = ThermalModel::monte_cimone(config);
            let idle = [Power::from_watts(4.81); 8];
            run_to_steady(&mut model, &idle, 3000);
            for i in 0..6 {
                assert!(
                    model.temperature(i).as_f64() < 70.0,
                    "{config:?} node {i}: {}",
                    model.temperature(i)
                );
            }
        }
    }

    #[test]
    fn higher_resistance_means_higher_equilibrium() {
        let model = ThermalModel::monte_cimone(AirflowConfig::LidOnTightStack);
        let p = Power::from_watts(5.0);
        assert!(model.equilibrium(6, p) > model.equilibrium(0, p));
    }

    #[test]
    fn trip_latch_fires_once_and_can_be_cleared() {
        let mut model = ThermalModel::monte_cimone(AirflowConfig::LidOnTightStack);
        let hot = [Power::from_watts(35.0); 8];
        let mut all: Vec<usize> = Vec::new();
        for _ in 0..5000 {
            all.extend(model.step(&hot, SimDuration::from_secs(1)));
        }
        // Every node trips exactly once at 20 W.
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "trip events must not repeat");
        assert!(model.is_tripped(0));
        model.clear_trip(0);
        assert!(!model.is_tripped(0));
    }

    #[test]
    fn fan_failure_raises_equilibrium_and_shadow_raises_it_less() {
        let mut model = ThermalModel::monte_cimone(AirflowConfig::LidOffSpaced);
        let p = Power::from_watts(5.935);
        let healthy = model.equilibrium(0, p).as_f64();
        model.set_airflow_degradation(0, AirflowDegradation::Direct);
        model.set_airflow_degradation(2, AirflowDegradation::Shadow);
        let direct = model.equilibrium(0, p).as_f64();
        let shadow = model.equilibrium(2, p).as_f64();
        assert!(
            direct > shadow && shadow > healthy,
            "{direct} {shadow} {healthy}"
        );
        // Lid-off, a dead fan degrades but does not trip (the node lands
        // around 60 °C, well under the 107 °C point).
        assert!(direct < TRIP_POINT.as_f64());
        // Clearing the fault restores the baseline exactly.
        model.set_airflow_degradation(0, AirflowDegradation::None);
        assert_eq!(model.equilibrium(0, p).as_f64(), healthy);
    }

    #[test]
    fn fan_failure_compounds_the_lid_on_runaway() {
        // With the original enclosure, losing node 7's blade fan pushes its
        // already-pathological equilibrium far past the trip point — the
        // correlated version of the Fig. 6 incident.
        let mut model = ThermalModel::monte_cimone(AirflowConfig::LidOnTightStack);
        let p = Power::from_watts(5.935);
        let before = model.equilibrium(6, p).as_f64();
        model.set_airflow_degradation(6, AirflowDegradation::Direct);
        assert!(model.equilibrium(6, p).as_f64() > before + 30.0);
    }

    #[test]
    fn sensor_estimates_track_the_soc() {
        let model = ThermalModel::monte_cimone(AirflowConfig::LidOffSpaced);
        let cpu = model.temperature(0).as_f64();
        assert!(model.mb_temperature(0).as_f64() < cpu);
        assert!(model.nvme_temperature(0).as_f64() < cpu);
    }
}
