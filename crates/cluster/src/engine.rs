//! The cluster simulation engine: scheduler-driven jobs running on the
//! eight-node machine, with power, thermal and monitoring all advancing on
//! one deterministic clock.
//!
//! Every experiment in the paper runs through this loop: submit a job,
//! step the engine, read the results out of the scheduler's accounting and
//! the ExaMon store.

use std::collections::{BTreeMap, HashMap};

use rand::rngs::StdRng;
use rand::SeedableRng;

use cimone_monitor::broker::Broker;
use cimone_monitor::collector::Collector;
use cimone_monitor::payload::Payload;
use cimone_monitor::plugins::{NodeSnapshot, PluginRunner, PmuPlugin, StatsPlugin};
use cimone_monitor::topic::{ExamonSchema, Topic};
use cimone_monitor::tsdb::TimeSeriesStore;
use cimone_sched::accounting::{AccountingLog, JobRecord};
use cimone_sched::job::{JobId, JobSpec, JobState};
use cimone_sched::partition::Partition;
use cimone_sched::scheduler::{SchedError, Scheduler};
use cimone_soc::power::PowerModel;
use cimone_soc::units::{Celsius, Energy, Power, SimDuration, SimTime};
use cimone_soc::workload::Workload;

use cimone_kernels::abft::AbftMode;
use cimone_kernels::pool::{default_threads, WorkerPool};
use cimone_monitor::scrub::ScrubPolicy;

use cimone_net::switch::MgmtSwitch;

use crate::blade::MachineLayout;
use crate::checkpoint::{
    CheckpointError, CheckpointPosition, CheckpointSchedule, CheckpointStore, JobCheckpoint,
};
use crate::dpm::{GovernorAction, ThermalGovernor};
use crate::faults::{FaultKind, FaultPlan, FaultPlanError, FaultQueue, SdcTarget};
use crate::healing::{
    CapAction, ControlAction, ControlPlane, PowerCapConfig, PowerCapGovernor, RecoveryConfig,
};
use crate::node::{ComputeNode, NodeConditions};
use crate::perf::{HplModel, HplProblem, LaxModel};
use crate::thermal::{AirflowConfig, AirflowDegradation, ThermalModel};

/// What a job runs on its allocated nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterWorkload {
    /// Distributed HPL.
    Hpl(HplProblem),
    /// The QE LAX driver (single node).
    QeLax,
    /// STREAM with the Table V DDR-resident working set, for `secs`.
    StreamDdr {
        /// Benchmark duration.
        secs: u64,
    },
    /// STREAM with the L2-resident working set, for `secs`.
    StreamL2 {
        /// Benchmark duration.
        secs: u64,
    },
    /// Any steady workload class for a fixed duration.
    Synthetic {
        /// The workload class.
        workload: Workload,
        /// Duration, seconds.
        secs: u64,
    },
}

/// A job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Job name.
    pub name: String,
    /// User.
    pub user: String,
    /// Nodes requested.
    pub nodes: usize,
    /// The workload.
    pub workload: ClusterWorkload,
}

/// How the engine's clock advances between interesting instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Walk every tick through the full step pipeline (the original
    /// behaviour, and the reference the event-driven mode is held to).
    #[default]
    FixedDt,
    /// Due-time scheduling: provably inert ticks are fast-forwarded with
    /// only the thermal integrator advanced, and the engine wakes at the
    /// next due event (fault, heartbeat, phi crossing, backoff release,
    /// span expiry). Observable outputs — telemetry, events, TSDB
    /// contents, final clock — are bit-identical to [`ClockMode::FixedDt`]
    /// at the same `dt`.
    EventDriven,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Enclosure airflow.
    pub airflow: AirflowConfig,
    /// Simulation step.
    pub dt: SimDuration,
    /// RNG seed (drives run-to-run noise).
    pub seed: u64,
    /// Whether the ExaMon pipeline runs (costs simulation time).
    pub monitoring: bool,
    /// Optional per-node thermal DVFS governor (the paper's future-work
    /// item: dynamic power and thermal management).
    pub governor: Option<ThermalGovernor>,
    /// Optional recovery subsystem: heartbeat failure detection, node
    /// fencing and checkpoint/restart. When `None` (the default) the
    /// engine keeps its oracle semantics — a crash reaches the scheduler
    /// the same instant it happens.
    pub recovery: Option<RecoveryConfig>,
    /// Worker threads for the per-node step phases (node advance,
    /// telemetry sampling, broker fan-out). `1` (the default) runs fully
    /// serial; `0` sizes a pool from the host (honouring
    /// `CIMONE_THREADS`); any other value pins the pool size. Results
    /// are bit-identical at every setting: per-node work is independent,
    /// merges happen in node order, and the power-noise RNG is only ever
    /// drawn serially. Whether a pool actually engages is further gated
    /// by [`EngineConfig::parallel_grain`].
    pub threads: usize,
    /// Minimum nodes *per worker* before the thread pool engages. Below
    /// it the per-tick work is too small to amortise the fan-out/join
    /// overhead and a threaded engine runs *slower* than a serial one, so
    /// the engine silently falls back to the (bit-identical) serial path.
    /// The default of 8 means the stock 8-node machine always steps
    /// serially; set 1 to force the pool on for any `threads` setting.
    pub parallel_grain: usize,
    /// Clock advancement strategy; see [`ClockMode`].
    pub clock: ClockMode,
    /// Blade power-rail cap governor. `Some` (the default) arms graceful
    /// degradation: a [`FaultKind::RailBrownout`] is met by capping the
    /// blade's DVFS operating points under the reduced budget instead of
    /// letting its boards crash. `None` reproduces the crash-only
    /// machine — a brownout takes both boards down for its span.
    pub power_cap: Option<PowerCapConfig>,
    /// ABFT protection the jobs' kernels run with, governing how an
    /// injected [`FaultKind::BitFlip`] plays out: `Off` lets the flip ride
    /// to a wrong answer, `Detect` catches it (panel checksum or the
    /// end-of-run residual) and restarts the job from its last committed
    /// checkpoint, `Correct` repairs the poisoned column in place at the
    /// cost of one panel's recompute.
    pub abft: AbftMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            airflow: AirflowConfig::LidOffSpaced,
            dt: SimDuration::from_millis(500),
            seed: 2022,
            monitoring: true,
            governor: None,
            recovery: None,
            threads: 1,
            parallel_grain: 8,
            clock: ClockMode::FixedDt,
            power_cap: Some(PowerCapConfig::rv007_default()),
            abft: AbftMode::Off,
        }
    }
}

/// Notable events the engine emits (for tests and reports).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// A job started on the listed node indices.
    JobStarted {
        /// The job.
        id: JobId,
        /// When.
        at: SimTime,
        /// Allocated node indices.
        nodes: Vec<usize>,
    },
    /// A job reached its natural end.
    JobCompleted {
        /// The job.
        id: JobId,
        /// When.
        at: SimTime,
    },
    /// A node crossed the 107 °C trip point and shut down.
    NodeTripped {
        /// Node index.
        node: usize,
        /// When.
        at: SimTime,
        /// Temperature at the trip.
        temperature: Celsius,
    },
    /// A job lost its allocation to a trip and went back to the queue.
    JobRequeued {
        /// The job.
        id: JobId,
        /// When.
        at: SimTime,
    },
    /// A planned fault fired.
    FaultInjected {
        /// When.
        at: SimTime,
        /// The fault.
        kind: FaultKind,
    },
    /// A node returned to service after an outage.
    NodeRecovered {
        /// Node index.
        node: usize,
        /// When.
        at: SimTime,
    },
    /// A job exhausted its retry budget and was abandoned.
    JobLost {
        /// The job.
        id: JobId,
        /// When.
        at: SimTime,
    },
    /// The failure detector crossed its phi threshold for a node.
    NodeSuspected {
        /// Node index.
        node: usize,
        /// When.
        at: SimTime,
        /// The phi value at detection.
        phi: f64,
    },
    /// The control plane fenced a node (took it out of scheduling).
    NodeFenced {
        /// Node index.
        node: usize,
        /// When.
        at: SimTime,
    },
    /// The control plane returned a fenced node to service.
    NodeUnfenced {
        /// Node index.
        node: usize,
        /// When.
        at: SimTime,
    },
    /// A job committed a checkpoint to the NFS store.
    CheckpointWritten {
        /// The job.
        id: JobId,
        /// When the write completed.
        at: SimTime,
        /// Work fraction the checkpoint preserves.
        progress: f64,
    },
    /// A requeued job restarted from its last checkpoint instead of zero.
    JobResumed {
        /// The job.
        id: JobId,
        /// When.
        at: SimTime,
        /// The progress fraction it resumed from.
        progress: f64,
    },
    /// The thermal watchdog stepped a hot node's DVFS down.
    WatchdogThrottled {
        /// Node index.
        node: usize,
        /// When.
        at: SimTime,
    },
    /// The power-cap governor set (or moved) a blade's DVFS ceiling to fit
    /// a browned-out rail's budget.
    BladeCapped {
        /// Blade index.
        blade: usize,
        /// When.
        at: SimTime,
        /// Highest admissible OPP index.
        ceiling: usize,
    },
    /// Ramp-back complete: the blade's cap is fully lifted.
    BladeReleased {
        /// Blade index.
        blade: usize,
        /// When.
        at: SimTime,
    },
    /// A rail budget below even the floor OPP: the blade sheds its load
    /// (checkpoint-assisted requeue) and drains rather than overdraw.
    PowerEmergency {
        /// Blade index.
        blade: usize,
        /// When.
        at: SimTime,
        /// The budget that could not be met, watts.
        budget_watts: f64,
    },
    /// A browned-out rail returned to its rated budget after an emergency;
    /// the blade's boards return to service.
    RailRecovered {
        /// Blade index.
        blade: usize,
        /// When.
        at: SimTime,
    },
    /// The control plane saw the whole cluster go silent at once and
    /// entered the `Partitioned` state instead of mass-fencing: suspicion
    /// is deferred until connectivity returns (or the partition times
    /// out).
    PartitionSuspected {
        /// When.
        at: SimTime,
        /// Unfenced nodes that were over the phi threshold at entry.
        silent: usize,
    },
    /// Heartbeats flowed again: the `Partitioned` state lifted without a
    /// single false suspicion.
    PartitionHealed {
        /// When.
        at: SimTime,
    },
    /// The `Partitioned` state outlived its timeout: the control plane
    /// concedes the cluster really died and lets fencing proceed.
    PartitionTimedOut {
        /// When.
        at: SimTime,
    },
    /// The shared GbE switch returned: heartbeats and telemetry flow
    /// again.
    SwitchRestored {
        /// When.
        at: SimTime,
    },
    /// A drained checkpoint write could not commit (the export is
    /// offline); the commit retries with exponential backoff.
    CheckpointDeferred {
        /// The job.
        id: JobId,
        /// When the commit was refused.
        at: SimTime,
        /// When the next attempt runs.
        retry_at: SimTime,
        /// Attempts deferred so far for this write.
        retries: u32,
    },
    /// A drained write exhausted its retry budget against an offline
    /// export and was dropped; the job's restart point stays at the last
    /// durable commit.
    CheckpointAbandoned {
        /// The job.
        id: JobId,
        /// When.
        at: SimTime,
    },
    /// A drained write spilled to the job's first allocated node instead
    /// of the offline export; it flushes when the export recovers.
    CheckpointSpilled {
        /// The job.
        id: JobId,
        /// When.
        at: SimTime,
        /// Work fraction the spilled record preserves.
        progress: f64,
    },
    /// The export recovered and the node-local spill buffers flushed.
    SpillFlushed {
        /// When.
        at: SimTime,
        /// Records made durable on the export.
        records: usize,
    },
    /// A machine-wide brownout budget proved infeasible even with every
    /// blade at its floor OPP: the whole rack checkpoint-drains.
    RackPowerEmergency {
        /// When.
        at: SimTime,
        /// The machine-wide budget that could not be met, watts.
        budget_watts: f64,
    },
    /// A stored checkpoint record failed its CRC64 on restore and was
    /// quarantined; the restore walked back to an older generation.
    CheckpointCorrupt {
        /// The job whose record was poisoned.
        id: JobId,
        /// Chain index of the quarantined record (0 = newest).
        generation: usize,
        /// When the corruption was discovered.
        at: SimTime,
    },
    /// The ingestion scrub quarantined an implausible telemetry sample —
    /// the monitoring-path signature of silent data corruption.
    SdcSuspected {
        /// The node whose sample was implausible.
        node: usize,
        /// The sample's own timestamp.
        at: SimTime,
        /// The implausible value.
        value: f64,
    },
    /// ABFT caught a bit flip in a running job's live state; the job
    /// restarts from its last committed checkpoint.
    SdcDetected {
        /// The poisoned job.
        id: JobId,
        /// When the check fired.
        at: SimTime,
    },
    /// ABFT caught *and repaired* a bit flip in place; the job continues,
    /// paying one panel of recompute.
    SdcCorrected {
        /// The repaired job.
        id: JobId,
        /// When.
        at: SimTime,
    },
    /// An unprotected run carried a bit flip to completion: the job
    /// finished with a silently wrong result.
    SdcUndetected {
        /// The job.
        id: JobId,
        /// When it finished.
        at: SimTime,
    },
}

#[derive(Debug, Clone)]
struct RunningJob {
    id: JobId,
    workload: ClusterWorkload,
    node_indices: Vec<usize>,
    started: SimTime,
    duration: SimDuration,
    /// Fraction of the job's work completed (advances slower when any of
    /// its nodes is thermally throttled below the nominal clock).
    progress: f64,
    /// HPL communication phase structure.
    comm_fraction: f64,
    panel_cycle: SimDuration,
    mem_per_node: f64,
    energy: Energy,
    /// Checkpoint/restart state machine (idle unless the engine runs with
    /// a checkpointing RecoveryConfig).
    ckpt: CheckpointSchedule,
    /// Injected bit flips poisoning the job's trailing matrix — caught by
    /// ABFT's column checksums at the next panel boundary.
    sdc_trailing: u32,
    /// Injected bit flips in already-factored panels — invisible to the
    /// panel checksums, caught only by the end-of-run residual.
    sdc_factored: u32,
}

/// Outcome of one fast-forward microstep.
enum Microstep {
    /// Temperatures moved; keep microstepping.
    Advanced,
    /// The integrator is at its f64 fixed point: the remaining skippable
    /// span can be jumped without further arithmetic.
    Equilibrium,
    /// Something beyond the integrator changed (trip, governor action,
    /// watchdog threshold): resume full stepping.
    Resume,
}

/// The Monte Cimone simulation engine.
///
/// # Examples
///
/// ```
/// use cimone_cluster::engine::{ClusterWorkload, EngineConfig, JobRequest, SimEngine};
/// use cimone_soc::units::SimDuration;
/// use cimone_soc::workload::Workload;
///
/// let mut engine = SimEngine::new(EngineConfig::default());
/// engine.submit(JobRequest {
///     name: "smoke".into(),
///     user: "ci".into(),
///     nodes: 1,
///     workload: ClusterWorkload::Synthetic { workload: Workload::Hpl, secs: 10 },
/// })?;
/// engine.run_for(SimDuration::from_secs(20));
/// assert_eq!(engine.accounting().len(), 1);
/// # Ok::<(), cimone_sched::scheduler::SchedError>(())
/// ```
#[derive(Debug)]
pub struct SimEngine {
    config: EngineConfig,
    nodes: Vec<ComputeNode>,
    thermal: ThermalModel,
    power: PowerModel,
    scheduler: Scheduler,
    // Keyed by `JobId` in a *sorted* map: several pump loops iterate the
    // running set and emit same-timestamp events per job, so iteration
    // order is observable through the event log and must be deterministic
    // for the bit-identity contract.
    running: BTreeMap<JobId, RunningJob>,
    workloads: HashMap<JobId, ClusterWorkload>,
    accounting: AccountingLog,
    broker: Broker,
    /// `None` while the ingestion subscriber is disconnected by a fault.
    collector: Option<Collector>,
    store: TimeSeriesStore,
    pmu: Vec<PluginRunner<PmuPlugin>>,
    stats: Vec<PluginRunner<StatsPlugin>>,
    /// Interned per-node power-sample topics, built once at construction:
    /// the per-tick publish path clones an `Arc` handle instead of
    /// re-building (and re-interning) an 11-segment topic.
    power_topics: Vec<Topic>,
    /// Interned per-node heartbeat topics (same rationale).
    heartbeat_topics: Vec<Topic>,
    schema: ExamonSchema,
    events: Vec<EngineEvent>,
    now: SimTime,
    rng: StdRng,
    // Fault-injection state: the plan queue plus every active span effect.
    faults: FaultQueue,
    sensor_dropout_until: Vec<SimTime>,
    sensor_stuck_until: Vec<SimTime>,
    /// While `now < until`, a node's published power samples leave the NIC
    /// with their sign bit flipped (a [`FaultKind::PayloadCorruption`]
    /// span). The RNG draw is untouched — only the wire value changes.
    payload_corrupt_until: Vec<SimTime>,
    /// Bit flips ABFT caught and rolled back to a checkpoint.
    sdc_detected: usize,
    /// Bit flips ABFT caught and repaired in place.
    sdc_corrected: usize,
    /// Bit flips an unprotected run carried to a silently wrong answer.
    sdc_undetected: usize,
    /// Last published power per node, for stuck-at sensor faults.
    last_power: Vec<Option<f64>>,
    broker_loss_until: Option<SimTime>,
    collector_offline_until: Option<SimTime>,
    degrade_factor: f64,
    degrade_until: Option<SimTime>,
    partitioned: Option<(usize, usize)>,
    partition_until: Option<SimTime>,
    nfs_stall_until: Option<SimTime>,
    /// The shared GbE management switch every node's heartbeat and
    /// telemetry path rides on; a [`FaultKind::SwitchOutage`] takes it
    /// down rack-wide.
    switch: MgmtSwitch,
    /// Physical blade layout: power rails and the airflow stack.
    layout: MachineLayout,
    /// The blade power-cap governor, when configured.
    power_cap: Option<PowerCapGovernor>,
    /// Per-blade fan-failure expiry; airflow degradation winds down here.
    fan_fault_until: Vec<Option<SimTime>>,
    /// Per-blade brownout expiry in crash-only mode (no cap governor):
    /// both boards return to service when the rail recovers.
    brownout_until: Vec<Option<SimTime>>,
    /// Mean (noise-free) per-blade power of the last executed tick, watts.
    last_blade_power: Vec<f64>,
    /// Peak blade power observed while the blade was under an active
    /// brownout budget (governed or crash-only), watts. The degraded-mode
    /// acceptance invariant — capped power never exceeds the reduced
    /// budget — is checked against this.
    brownout_peak_power: Vec<f64>,
    /// Peak machine-wide power observed while a multi-rail rack budget was
    /// active, watts. The rack-arbitration acceptance invariant — the
    /// water-filled per-blade shares never let the whole machine exceed
    /// the rack budget — is checked against this.
    rack_peak_power: f64,
    // Outage bookkeeping for MTTF/MTTR.
    node_down_since: Vec<Option<SimTime>>,
    node_downtime: Vec<SimDuration>,
    failures: usize,
    /// The recovery subsystem, when configured.
    recovery: Option<RecoveryState>,
    /// Shared worker pool for the per-node step phases; `None` when
    /// [`EngineConfig::threads`] is 1 or the machine is too small for
    /// [`EngineConfig::parallel_grain`] (fully serial stepping).
    pool: Option<std::sync::Arc<WorkerPool>>,
    /// Per-node message buffers reused across ticks by the plugin
    /// sampling phase (avoids two Vec allocations per node per tick).
    plugin_scratch: Vec<Vec<(Topic, Payload)>>,
    /// Per-node snapshots reused across replay ticks: `snapshot_into`
    /// refills them without allocating once warm.
    snap_scratch: Vec<NodeSnapshot>,
    /// Tick-level message batch reused by the §16 replay, drained by
    /// [`Broker::publish_batch_serial`] each tick.
    replay_batch: Vec<(Topic, Payload)>,
    /// Ticks executed through the full step pipeline.
    ticks_stepped: u64,
    /// Ticks fast-forwarded by the event-driven clock (thermal-only
    /// microsteps and equilibrium jumps).
    ticks_skipped: u64,
}

/// Everything the recovery subsystem tracks: the control plane, the
/// checkpoint store, and the physical (as opposed to scheduler-visible)
/// liveness of each node.
#[derive(Debug)]
struct RecoveryState {
    config: RecoveryConfig,
    control: ControlPlane,
    store: CheckpointStore,
    /// Physical liveness. A dead node stops heartbeating and stalls its
    /// jobs, but the *scheduler* only learns about it when the control
    /// plane fences the node off the failure detector.
    node_alive: Vec<bool>,
    next_heartbeat: Vec<SimTime>,
    /// Progress each requeued job restarts from (captured at eviction
    /// from its last committed checkpoint, consumed at the next start).
    resume_progress: HashMap<JobId, f64>,
    /// Node-seconds of completed work thrown away by evictions.
    wasted_node_secs: f64,
    checkpoints_written: usize,
    suspicions: usize,
    fences: usize,
    /// Which node holds each job's spilled (node-local, not yet durable)
    /// checkpoint: by convention the job's first allocated node. Placement
    /// soft-avoids these nodes until the spill flushes.
    spill_holders: HashMap<u64, usize>,
}

impl SimEngine {
    /// Builds the engine over the standard 8-node machine.
    pub fn new(config: EngineConfig) -> Self {
        let nodes: Vec<ComputeNode> = (0..8).map(ComputeNode::new).collect();
        let schema = ExamonSchema::monte_cimone();
        let broker = Broker::new();
        let collector = Collector::attach(&broker, "#".parse().expect("valid filter"))
            .with_scrub(ScrubPolicy::monte_cimone());
        // The engine's power samples already include temperature-dependent
        // leakage, so the thermal model's own feedback term is disabled to
        // avoid double-counting the runaway loop.
        let thermal = ThermalModel::monte_cimone(config.airflow).with_leakage_feedback(0.0);
        // Thermal leakage feedback participates in the runaway loop. The
        // reference is the idle steady-state silicon temperature, so the
        // Table VI calibration holds at the machine's normal operating
        // point.
        let power = PowerModel::u740().with_thermal_leakage(0.012, Celsius::new(36.5));
        // Plugins pre-register their per-node/per-metric topics here, once;
        // `sample_into` then emits interned handles with zero allocations
        // per tick.
        let pmu = nodes
            .iter()
            .map(|node| {
                PluginRunner::new(PmuPlugin::for_host(
                    schema.clone(),
                    node.hostname(),
                    node.soc().cores().len(),
                ))
            })
            .collect();
        let stats = nodes
            .iter()
            .map(|node| PluginRunner::new(StatsPlugin::for_host(schema.clone(), node.hostname())))
            .collect();
        let power_topics: Vec<Topic> = nodes
            .iter()
            .map(|node| power_topic_for(node.hostname()))
            .collect();
        let heartbeat_topics: Vec<Topic> = nodes
            .iter()
            .map(|node| heartbeat_topic(node.hostname()))
            .collect();
        let n = nodes.len();
        let layout = MachineLayout::monte_cimone();
        let blade_count = layout.blades().len();
        let opp_count = nodes[0].cpufreq().opps().len();
        let mut scheduler = Scheduler::new(Partition::monte_cimone());
        scheduler.set_topology(cimone_sched::placement::BladeTopology::monte_cimone());
        let recovery = config.recovery.map(|rc| RecoveryState {
            config: rc,
            control: ControlPlane::new(
                &broker,
                rc,
                nodes
                    .iter()
                    .map(|node| node.hostname().to_owned())
                    .collect(),
            ),
            store: CheckpointStore::new(),
            node_alive: vec![true; n],
            next_heartbeat: vec![SimTime::ZERO; n],
            resume_progress: HashMap::new(),
            wasted_node_secs: 0.0,
            checkpoints_written: 0,
            suspicions: 0,
            fences: 0,
            spill_holders: HashMap::new(),
        });
        SimEngine {
            config,
            nodes,
            thermal,
            power,
            scheduler,
            running: BTreeMap::new(),
            workloads: HashMap::new(),
            accounting: AccountingLog::new(),
            broker,
            collector: Some(collector),
            store: TimeSeriesStore::new(),
            pmu,
            stats,
            power_topics,
            heartbeat_topics,
            schema,
            events: Vec::new(),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(config.seed),
            faults: FaultQueue::default(),
            sensor_dropout_until: vec![SimTime::ZERO; n],
            sensor_stuck_until: vec![SimTime::ZERO; n],
            payload_corrupt_until: vec![SimTime::ZERO; n],
            sdc_detected: 0,
            sdc_corrected: 0,
            sdc_undetected: 0,
            last_power: vec![None; n],
            broker_loss_until: None,
            collector_offline_until: None,
            degrade_factor: 1.0,
            degrade_until: None,
            partitioned: None,
            partition_until: None,
            nfs_stall_until: None,
            switch: MgmtSwitch::monte_cimone(),
            layout,
            power_cap: config
                .power_cap
                .map(|pc| PowerCapGovernor::new(pc, blade_count, opp_count)),
            fan_fault_until: vec![None; blade_count],
            brownout_until: vec![None; blade_count],
            last_blade_power: vec![0.0; blade_count],
            brownout_peak_power: vec![0.0; blade_count],
            rack_peak_power: 0.0,
            node_down_since: vec![None; n],
            node_downtime: vec![SimDuration::ZERO; n],
            failures: 0,
            recovery,
            pool: {
                let size = if config.threads == 0 {
                    default_threads()
                } else {
                    config.threads
                };
                // Min-work threshold: a pool that gets fewer than
                // `parallel_grain` nodes per worker loses more to
                // fan-out/join overhead than it gains, so fall back to
                // the bit-identical serial path.
                (size > 1 && n >= size * config.parallel_grain.max(1))
                    .then(|| std::sync::Arc::new(WorkerPool::new(size)))
            },
            plugin_scratch: (0..n).map(|_| Vec::new()).collect(),
            snap_scratch: (0..n).map(|_| NodeSnapshot::default()).collect(),
            replay_batch: Vec::new(),
            ticks_stepped: 0,
            ticks_skipped: 0,
        }
    }

    /// Installs a fault schedule; events fire as the clock reaches them.
    /// Replaces any previously installed plan (already-fired events are
    /// not replayed).
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// In-place form of [`SimEngine::with_fault_plan`].
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`] against this
    /// machine — an out-of-range node or blade index, a brownout budget
    /// fraction outside `(0, 1]`, or overlapping brownouts on one rail.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if let Err(e) = self.try_set_fault_plan(plan) {
            panic!("invalid fault plan: {e}");
        }
    }

    /// Fallible form of [`SimEngine::set_fault_plan`].
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] in the plan's time order.
    pub fn try_set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), FaultPlanError> {
        plan.validate(self.nodes.len(), self.layout.blades().len())?;
        self.faults = FaultQueue::from_plan(plan);
        Ok(())
    }

    /// Replaces the scheduling policy (must be called before any
    /// submission).
    ///
    /// # Panics
    ///
    /// Panics if jobs were already submitted.
    pub fn with_policy(mut self, policy: cimone_sched::scheduler::SchedulingPolicy) -> Self {
        assert!(
            self.workloads.is_empty(),
            "set the policy before submitting jobs"
        );
        self.scheduler = Scheduler::with_policy(Partition::monte_cimone(), policy);
        self.scheduler
            .set_topology(cimone_sched::placement::BladeTopology::monte_cimone());
        self
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The ExaMon time-series store.
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// The topic schema in use.
    pub fn schema(&self) -> &ExamonSchema {
        &self.schema
    }

    /// The scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Completed-job accounting.
    pub fn accounting(&self) -> &AccountingLog {
        &self.accounting
    }

    /// The compute nodes.
    pub fn nodes(&self) -> &[ComputeNode] {
        &self.nodes
    }

    /// The thermal model.
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// Events so far.
    pub fn events(&self) -> &[EngineEvent] {
        &self.events
    }

    /// Lifetime silent-data-corruption outcome counters:
    /// `(detected, corrected, undetected)`. Detected corruptions rolled the
    /// job back to its last checkpoint, corrected ones were repaired in
    /// place by the ABFT checksums, undetected ones finished the job with a
    /// wrong result (only possible with [`AbftMode::Off`]).
    pub fn sdc_counts(&self) -> (usize, usize, usize) {
        (self.sdc_detected, self.sdc_corrected, self.sdc_undetected)
    }

    /// Switches the enclosure airflow (the paper's mitigation) in place.
    pub fn set_airflow(&mut self, airflow: AirflowConfig) {
        self.config.airflow = airflow;
        self.thermal.set_config(airflow);
    }

    /// Re-tunes every pmu/stats runner's sampling comb in place: `period`
    /// is the spacing between samples, `phase` the offset of the first
    /// sample after the current clock. Coprime, misaligned combs are the
    /// stress case for the §16 sampled-span replay, which must reproduce
    /// every interleaving bitwise.
    ///
    /// # Panics
    ///
    /// Panics if either period is zero — a zero-period plugin would be
    /// due forever.
    pub fn set_sampling_cadence(
        &mut self,
        pmu_period: SimDuration,
        pmu_phase: SimDuration,
        stats_period: SimDuration,
        stats_phase: SimDuration,
    ) {
        assert!(
            !pmu_period.is_zero() && !stats_period.is_zero(),
            "sampling periods must be positive"
        );
        for runner in &mut self.pmu {
            runner.plugin_mut().set_period(pmu_period);
            runner.set_next_due(self.now + pmu_phase);
        }
        for runner in &mut self.stats {
            runner.plugin_mut().set_period(stats_period);
            runner.set_next_due(self.now + stats_phase);
        }
    }

    /// The DVFS state of one node's core complex.
    pub fn node_cpufreq(&self, node_index: usize) -> &cimone_soc::cpufreq::CpuFreq {
        self.nodes[node_index].cpufreq()
    }

    /// The physical blade layout the engine simulates.
    pub fn layout(&self) -> &MachineLayout {
        &self.layout
    }

    /// The blade power-cap governor, when configured.
    pub fn power_cap(&self) -> Option<&PowerCapGovernor> {
        self.power_cap.as_ref()
    }

    /// Mean (noise-free) power one blade drew at the last executed tick,
    /// watts — exactly the quantity the power-cap governor bounds under a
    /// browned-out rail.
    pub fn blade_power(&self, blade: usize) -> f64 {
        self.last_blade_power[blade]
    }

    /// Peak mean blade power observed at any tick while `blade` was under
    /// an active brownout budget (0.0 if it never was). With the governor
    /// on, this never exceeds `budget_frac ×` [`crate::RAIL_RATED_WATTS`].
    pub fn brownout_peak_power(&self, blade: usize) -> f64 {
        self.brownout_peak_power[blade]
    }

    /// Peak machine-wide mean power observed at any tick while a
    /// multi-rail rack budget was active (0.0 if one never was). With the
    /// governor on, the water-filled per-blade shares keep this at or
    /// under the machine budget.
    pub fn rack_peak_power(&self) -> f64 {
        self.rack_peak_power
    }

    /// Records this tick's per-blade power and, while a blade is under an
    /// active brownout budget (governed or crash-only), tracks the peak.
    /// Called with the same mean powers phase 4 and the thermal microstep
    /// integrate, so the peak is the exact governed quantity.
    fn record_blade_power(&mut self, node_power: &[Power]) {
        for blade in 0..self.last_blade_power.len() {
            let watts: f64 = self.layout.blades()[blade]
                .node_indices
                .iter()
                .map(|&i| node_power[i].as_watts())
                .sum();
            self.last_blade_power[blade] = watts;
            let budgeted = self
                .power_cap
                .as_ref()
                .is_some_and(|gov| gov.active_budget_watts(blade).is_some())
                || self.brownout_until[blade].is_some();
            if budgeted && watts > self.brownout_peak_power[blade] {
                self.brownout_peak_power[blade] = watts;
            }
        }
        if self
            .power_cap
            .as_ref()
            .is_some_and(|gov| gov.active_rack_budget_watts().is_some())
        {
            let total: f64 = self.last_blade_power.iter().sum();
            if total > self.rack_peak_power {
                self.rack_peak_power = total;
            }
        }
    }

    /// Operator-style failure injection: takes a node out of service as a
    /// hardware fault would, requeueing every job running on it. Returns
    /// the affected jobs (requeued or lost). This is the immediate form of
    /// scheduling a [`FaultKind::NodeCrash`] at the current time. With
    /// recovery enabled the crash is physical only — the scheduler learns
    /// of it through the failure detector, so the returned list is empty.
    pub fn inject_node_failure(&mut self, node_index: usize) -> Vec<JobId> {
        self.apply_fault(FaultKind::NodeCrash { node: node_index })
    }

    /// Returns a tripped or crashed node to service after repair. With
    /// recovery enabled the repair is physical: the node resumes
    /// heartbeating and the control plane unfences it once suspicion
    /// clears.
    pub fn resume_node(&mut self, node_index: usize) {
        if self.recovery.is_some() {
            self.physical_up(node_index);
        } else {
            self.node_recovered(node_index);
        }
    }

    /// Whether the recovery subsystem is active.
    pub fn recovery_enabled(&self) -> bool {
        self.recovery.is_some()
    }

    /// Node-seconds of completed work thrown away by evictions (work past
    /// the last committed checkpoint at the moment a job lost its nodes).
    pub fn wasted_node_seconds(&self) -> f64 {
        self.recovery.as_ref().map_or(0.0, |r| r.wasted_node_secs)
    }

    /// Checkpoints committed so far.
    pub fn checkpoints_written(&self) -> usize {
        self.recovery.as_ref().map_or(0, |r| r.checkpoints_written)
    }

    /// Times the failure detector crossed its threshold.
    pub fn suspicion_count(&self) -> usize {
        self.recovery.as_ref().map_or(0, |r| r.suspicions)
    }

    /// Nodes fenced by the control plane so far (suspicion or watchdog).
    pub fn fence_count(&self) -> usize {
        self.recovery.as_ref().map_or(0, |r| r.fences)
    }

    /// The shared GbE management switch (the rack-level fault domain).
    pub fn switch(&self) -> &MgmtSwitch {
        &self.switch
    }

    /// The checkpoint store, when recovery is configured.
    pub fn checkpoint_store(&self) -> Option<&CheckpointStore> {
        self.recovery.as_ref().map(|r| &r.store)
    }

    /// The control plane (suspicion levels, fence state), when recovery is
    /// configured.
    pub fn control_plane(&self) -> Option<&ControlPlane> {
        self.recovery.as_ref().map(|r| &r.control)
    }

    /// Accumulated outage time of one node, including any outage still
    /// open at the current time.
    pub fn node_downtime(&self, node_index: usize) -> SimDuration {
        let open = self.node_down_since[node_index]
            .map(|since| self.now.saturating_since(since))
            .unwrap_or(SimDuration::ZERO);
        self.node_downtime[node_index] + open
    }

    /// Total node-outage time across the machine (node-seconds down).
    pub fn total_downtime(&self) -> SimDuration {
        (0..self.nodes.len()).map(|i| self.node_downtime(i)).sum()
    }

    /// Node outages observed so far (trips, crashes, injected failures).
    pub fn failure_count(&self) -> usize {
        self.failures
    }

    /// Ticks executed through the full step pipeline so far.
    pub fn ticks_stepped(&self) -> u64 {
        self.ticks_stepped
    }

    /// Ticks the event-driven clock fast-forwarded (thermal-only
    /// microsteps plus equilibrium jumps). Zero under
    /// [`ClockMode::FixedDt`].
    pub fn ticks_skipped(&self) -> u64 {
        self.ticks_skipped
    }

    /// Whether the worker pool actually engaged, i.e. `threads != 1` and
    /// the machine cleared [`EngineConfig::parallel_grain`]. `false`
    /// means per-node phases run on the (bit-identical) serial path.
    pub fn parallel_engaged(&self) -> bool {
        self.pool.is_some()
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// Propagates scheduler rejections (e.g. more nodes than the machine).
    pub fn submit(&mut self, request: JobRequest) -> Result<JobId, SchedError> {
        let limit = self.estimate_duration(&request.workload, request.nodes) * 3;
        let spec = JobSpec::new(
            request.name,
            request.user,
            request.nodes,
            SimDuration::from_secs_f64(limit.as_secs_f64().max(60.0)),
        );
        let id = self.scheduler.submit(spec, self.now)?;
        self.workloads.insert(id, request.workload);
        Ok(id)
    }

    /// Submits a job with an explicit wall-time limit instead of the
    /// engine's 3×-estimate default (`sbatch --time`). The engine kills
    /// the job with [`JobState::TimedOut`] when the limit expires.
    ///
    /// # Errors
    ///
    /// Propagates scheduler rejections.
    pub fn submit_with_limit(
        &mut self,
        request: JobRequest,
        time_limit: SimDuration,
    ) -> Result<JobId, SchedError> {
        let spec = JobSpec::new(request.name, request.user, request.nodes, time_limit);
        let id = self.scheduler.submit(spec, self.now)?;
        self.workloads.insert(id, request.workload);
        Ok(id)
    }

    fn estimate_duration(&self, workload: &ClusterWorkload, nodes: usize) -> SimDuration {
        let secs = match workload {
            ClusterWorkload::Hpl(problem) => HplModel::monte_cimone(*problem).run_time(nodes),
            ClusterWorkload::QeLax => LaxModel::paper().run_time(),
            ClusterWorkload::StreamDdr { secs } | ClusterWorkload::StreamL2 { secs } => {
                *secs as f64
            }
            ClusterWorkload::Synthetic { secs, .. } => *secs as f64,
        };
        SimDuration::from_secs_f64(secs)
    }

    /// Advances one step.
    pub fn step(&mut self) {
        let dt = self.config.dt;

        // 0. Fire any faults the clock has reached, expire span effects.
        self.apply_due_faults();

        // 0b. Recovery: heartbeats out through the broker, then the
        //     control plane turns their absence into fencing decisions.
        if self.recovery.is_some() {
            self.publish_heartbeats();
            self.control_plane_tick();
        }

        // 1. Start whatever the scheduler releases.
        for id in self.scheduler.schedule(self.now) {
            self.start_job(id);
        }

        // 2. Advance job progress (gated by the slowest allocated node's
        //    DVFS state — HPL is bulk-synchronous — and by any active
        //    filesystem / interconnect fault) and complete finished jobs.
        let speeds: Vec<f64> = self
            .nodes
            .iter()
            .map(|n| n.cpufreq().performance_scale())
            .collect();
        let nfs_stalled = self.nfs_stall_until.is_some_and(|t| self.now < t);
        let degrade = match self.degrade_until {
            Some(t) if self.now < t => self.degrade_factor,
            _ => 1.0,
        };
        let partitioned = self.active_partition();
        let alive = self.recovery.as_ref().map(|r| r.node_alive.clone());
        for job in self.running.values_mut() {
            let mut speed = job
                .node_indices
                .iter()
                .map(|&i| speeds[i])
                .fold(1.0f64, f64::min);
            if nfs_stalled {
                // I/O blocks cluster-wide: no job makes progress.
                speed = 0.0;
            }
            if let Some(alive) = &alive {
                // A crashed node takes its jobs with it; until the control
                // plane notices, the scheduler still believes they run.
                if job.node_indices.iter().any(|&i| !alive[i]) {
                    speed = 0.0;
                }
            }
            if job.ckpt.is_draining() {
                // Quiesced for a checkpoint write.
                speed = 0.0;
            }
            if let Some((a, b)) = partitioned {
                // A bulk-synchronous job spanning the cut stalls outright.
                if job.node_indices.contains(&a) && job.node_indices.contains(&b) {
                    speed = 0.0;
                }
            }
            if degrade > 1.0 && job.node_indices.len() > 1 {
                // Communication phases take `degrade`× longer.
                speed /= 1.0 + job.comm_fraction * (degrade - 1.0);
            }
            let before = job.progress;
            job.progress += dt.as_secs_f64() / job.duration.as_secs_f64() * speed;
            // 2a. ABFT panel verification: a flip in the trailing matrix is
            //     caught at the first panel boundary the job crosses after
            //     the hit (the column-checksum check runs once per panel).
            //     Flips in already-factored panels escape this check and
            //     are only caught by the end-of-run residual below.
            if job.sdc_trailing > 0 && self.config.abft != AbftMode::Off {
                let panels =
                    (job.duration.as_micros() / job.panel_cycle.as_micros().max(1)).max(1) as f64;
                let crossed = (before * panels).floor() != (job.progress * panels).floor();
                if crossed {
                    job.sdc_trailing = 0;
                    match self.config.abft {
                        AbftMode::Detect => {
                            // Detected but unrepairable: restart from the
                            // last committed checkpoint.
                            let saved = job.ckpt.committed();
                            let wasted = (job.progress - saved).max(0.0);
                            if let Some(rec) = self.recovery.as_mut() {
                                rec.wasted_node_secs += wasted
                                    * job.duration.as_secs_f64()
                                    * job.node_indices.len() as f64;
                            }
                            job.progress = saved;
                            self.sdc_detected += 1;
                            self.events.push(EngineEvent::SdcDetected {
                                id: job.id,
                                at: self.now,
                            });
                        }
                        AbftMode::Correct => {
                            // Repaired in place: one panel of recompute.
                            job.progress = (job.progress - 1.0 / panels).max(0.0);
                            self.sdc_corrected += 1;
                            self.events.push(EngineEvent::SdcCorrected {
                                id: job.id,
                                at: self.now,
                            });
                        }
                        AbftMode::Off => unreachable!("guarded above"),
                    }
                }
            }
        }
        // 2b. Checkpoint state machine: commit finished writes, begin due
        //     ones.
        self.advance_checkpoints();
        let mut finished: Vec<JobId> = self
            .running
            .values()
            .filter(|job| job.progress >= 1.0)
            .map(|job| job.id)
            .collect();
        // Deterministic completion order (HashMap iteration is not).
        finished.sort_unstable();
        for id in finished {
            // 2c. End-of-run residual check: a poisoned run that reached
            //     completion either fails the residual (ABFT on — restart
            //     from the last checkpoint, flip recomputed away) or ships
            //     a silently wrong answer (ABFT off).
            let poisoned = {
                let job = &self.running[&id];
                job.sdc_trailing > 0 || job.sdc_factored > 0
            };
            if poisoned {
                if self.config.abft == AbftMode::Off {
                    self.sdc_undetected += 1;
                    self.events
                        .push(EngineEvent::SdcUndetected { id, at: self.now });
                } else {
                    let job = self.running.get_mut(&id).expect("job is running");
                    job.sdc_trailing = 0;
                    job.sdc_factored = 0;
                    let saved = job.ckpt.committed();
                    let wasted = (job.progress - saved).max(0.0);
                    job.progress = saved;
                    let (duration, nodes) = (job.duration.as_secs_f64(), job.node_indices.len());
                    if let Some(rec) = self.recovery.as_mut() {
                        rec.wasted_node_secs += wasted * duration * nodes as f64;
                    }
                    self.sdc_detected += 1;
                    self.events
                        .push(EngineEvent::SdcDetected { id, at: self.now });
                    continue; // the job re-runs the poisoned stretch
                }
            }
            self.finish_job(id, JobState::Completed);
        }
        // Wall-time enforcement: Slurm kills jobs at their limit.
        let timed_out: Vec<JobId> = self
            .running
            .values()
            .filter(|job| {
                let limit = self
                    .scheduler
                    .job(job.id)
                    .expect("running job known")
                    .spec()
                    .time_limit;
                self.now.saturating_since(job.started) >= limit
            })
            .map(|job| job.id)
            .collect();
        for id in timed_out {
            self.finish_job(id, JobState::TimedOut);
        }
        self.refresh_conditions();

        // 3b. Blade power-cap governor: decides each blade's OPP ceiling
        //     against any browned-out rail *before* the power phase, using
        //     the same workloads and temperatures phase 4 consumes — so
        //     the power a capped blade then draws is exactly the power the
        //     governor predicted, and the ≤-budget invariant holds at
        //     every tick rather than only in steady state.
        self.evaluate_power_cap();

        // 4. Power and energy. The thermal and energy integrators consume
        //    the noise-free *mean* power (sensor noise is a measurement
        //    artefact, not physics); the noisy sample is drawn only when a
        //    reading is actually published, serially in node order, so the
        //    RNG stream is identical at every thread count.
        let mut node_power = Vec::with_capacity(self.nodes.len());
        let mut power_messages: Vec<(Topic, Payload)> = Vec::with_capacity(self.nodes.len());
        // A dead management switch silences every node's telemetry at once
        // (the broker lives across it), exactly like a cluster-wide sensor
        // dropout.
        let switch_up = self.switch.is_up(self.now);
        for i in 0..self.nodes.len() {
            let workload = self.nodes[i].effective_power_workload();
            let temp = self.thermal.temperature(i);
            let scale = self.nodes[i].cpufreq().scale();
            node_power.push(self.power.mean_all_dvfs(workload, temp, scale).total());
            if self.config.monitoring && switch_up {
                let dropped_out = self.now < self.sensor_dropout_until[i];
                let stuck = self.now < self.sensor_stuck_until[i];
                if !dropped_out {
                    let measured = self
                        .power
                        .sample_all_dvfs(workload, temp, scale, &mut self.rng)
                        .total()
                        .as_watts();
                    let watts = match (stuck, self.last_power[i]) {
                        (true, Some(frozen)) => frozen,
                        _ => measured,
                    };
                    // An active payload-corruption span flips the sign bit
                    // of the value on the wire (after the RNG draw, so the
                    // noise stream is untouched): the reading becomes
                    // implausible and the ingestion scrub quarantines it.
                    let watts = if self.now < self.payload_corrupt_until[i] {
                        f64::from_bits(watts.to_bits() ^ (1u64 << 63))
                    } else {
                        watts
                    };
                    let topic = self.power_topic(i);
                    power_messages.push((topic, Payload::new(watts, self.now)));
                    if !stuck {
                        self.last_power[i] = Some(measured);
                    }
                }
            }
        }
        self.record_blade_power(&node_power);
        if let Some(pool) = &self.pool {
            self.broker.publish_batch(power_messages, pool);
        } else {
            for (topic, payload) in power_messages {
                self.broker.publish(&topic, payload);
            }
        }
        for job in self.running.values_mut() {
            let p: Power = job.node_indices.iter().map(|&i| node_power[i]).sum();
            job.energy += p.energy_over(dt);
        }

        // 5. Thermal step and trip handling.
        let tripped = self.thermal.step(&node_power, dt);
        for node_index in tripped {
            self.handle_trip(node_index);
        }
        for i in 0..self.nodes.len() {
            let (cpu, mb, nvme) = (
                self.thermal.temperature(i),
                self.thermal.mb_temperature(i),
                self.thermal.nvme_temperature(i),
            );
            self.nodes[i].set_temperatures(cpu, mb, nvme);
        }

        // 5b. The thermal governor, when enabled, throttles hot nodes and
        //     recovers cool ones.
        self.govern();

        // 6. Node execution + monitoring plugins, merged into ONE fan-out:
        //    each node advances its counters, snapshots, and samples its
        //    due plugins in a single pass (node.advance reads only the
        //    conditions and DVFS state fixed in earlier phases, so running
        //    it after power/thermal is equivalent). With a pool the
        //    per-node work fans out once and messages are merged back in
        //    node order (PMU before stats, exactly as the serial loop
        //    publishes them) before one batch fan-out. Per-node buffers
        //    are reused across ticks.
        let monitoring = self.config.monitoring;
        if let Some(pool) = &self.pool {
            let now = self.now;
            let eligible: Vec<bool> = (0..self.nodes.len())
                .map(|i| monitoring && switch_up && now >= self.sensor_dropout_until[i])
                .collect();
            let tiles = pool.even_chunks(self.nodes.len());
            pool.scope(|scope| {
                let mut nodes = self.nodes.as_mut_slice();
                let mut elig = eligible.as_slice();
                let mut pmu = self.pmu.as_mut_slice();
                let mut stats = self.stats.as_mut_slice();
                let mut out = self.plugin_scratch.as_mut_slice();
                for (start, end) in tiles {
                    let len = end - start;
                    let (node_c, node_r) = nodes.split_at_mut(len);
                    nodes = node_r;
                    let (elig_c, elig_r) = elig.split_at(len);
                    elig = elig_r;
                    let (pmu_c, pmu_r) = pmu.split_at_mut(len);
                    pmu = pmu_r;
                    let (stats_c, stats_r) = stats.split_at_mut(len);
                    stats = stats_r;
                    let (out_c, out_r) = out.split_at_mut(len);
                    out = out_r;
                    scope.spawn(move || {
                        for ((((node, &ok), pmu), stats), out) in node_c
                            .iter_mut()
                            .zip(elig_c)
                            .zip(pmu_c)
                            .zip(stats_c)
                            .zip(out_c)
                        {
                            node.advance(dt);
                            out.clear();
                            if !ok {
                                continue; // silent or monitoring off
                            }
                            let snapshot = node.snapshot(now);
                            pmu.due_messages_into(now, &snapshot, out);
                            stats.due_messages_into(now, &snapshot, out);
                        }
                    });
                }
            });
            if monitoring {
                let batch: Vec<(Topic, Payload)> = self
                    .plugin_scratch
                    .iter_mut()
                    .flat_map(|out| out.drain(..))
                    .collect();
                self.broker.publish_batch(batch, pool);
            }
        } else {
            for i in 0..self.nodes.len() {
                self.nodes[i].advance(dt);
                if !monitoring || !switch_up || self.now < self.sensor_dropout_until[i] {
                    continue; // silent, switch dark, or monitoring off
                }
                let mut out = std::mem::take(&mut self.plugin_scratch[i]);
                out.clear();
                let snapshot = self.nodes[i].snapshot(self.now);
                self.pmu[i].due_messages_into(self.now, &snapshot, &mut out);
                self.stats[i].due_messages_into(self.now, &snapshot, &mut out);
                for (topic, payload) in out.drain(..) {
                    self.broker.publish(&topic, payload);
                }
                self.plugin_scratch[i] = out;
            }
        }
        if monitoring {
            if let Some(collector) = &mut self.collector {
                collector.pump(&mut self.store);
            }
            self.drain_scrub_quarantine();
        }

        self.ticks_stepped += 1;
        self.now += dt;
    }

    /// Turns every sample the ingestion scrub quarantined since the last
    /// drain into an [`EngineEvent::SdcSuspected`], in arrival order. The
    /// event carries the sample's own timestamp, so the one span-end pump
    /// of the monitored fast-forward yields the same events as per-tick
    /// pumping.
    fn drain_scrub_quarantine(&mut self) {
        let Some(collector) = self.collector.as_mut() else {
            return;
        };
        for (topic, payload) in collector.take_quarantined() {
            let node = topic
                .segments()
                .iter()
                .find(|s| s.starts_with("mc-node-"))
                .map(|s| hostname_index(s))
                .expect("scrubbed topics carry a node segment");
            self.events.push(EngineEvent::SdcSuspected {
                node,
                at: payload.timestamp,
                value: payload.value,
            });
        }
    }

    /// Phase 5b: the thermal governor's per-node decision, shared by the
    /// full step and the fast-forward microstep (which must replicate it
    /// exactly at the tick a threshold is crossed).
    fn govern(&mut self) -> bool {
        let Some(governor) = self.config.governor else {
            return false;
        };
        let mut changed = false;
        for i in 0..self.nodes.len() {
            match governor.decide(self.thermal.temperature(i)) {
                GovernorAction::StepDown => {
                    changed |= self.nodes[i].cpufreq_mut().step_down();
                }
                GovernorAction::StepUp => {
                    changed |= self.nodes[i].cpufreq_mut().step_up();
                }
                GovernorAction::Hold => {}
            }
        }
        changed
    }

    /// Phase 3b: the blade power-cap governor's decision, plus the
    /// enforcement of whatever ceilings it holds (the thermal watchdog or
    /// DVFS governor may have stepped a board back up since last tick).
    fn evaluate_power_cap(&mut self) {
        let Some(mut gov) = self.power_cap.take() else {
            return;
        };
        let actions = {
            let nodes = &self.nodes;
            let thermal = &self.thermal;
            let power = &self.power;
            let layout = &self.layout;
            gov.evaluate(self.now, |blade, opp| {
                layout.blades()[blade]
                    .node_indices
                    .iter()
                    .map(|&i| {
                        let workload = nodes[i].effective_power_workload();
                        let temp = thermal.temperature(i);
                        let scale = nodes[i].cpufreq().scale_at(opp);
                        power
                            .mean_all_dvfs(workload, temp, scale)
                            .total()
                            .as_watts()
                    })
                    .sum()
            })
        };
        for action in actions {
            match action {
                CapAction::SetCeiling { blade, ceiling } => {
                    // Steer new placements away from the degraded blade
                    // while it is capped (or still ramping back).
                    self.scheduler.set_blade_degraded(blade, true);
                    self.events.push(EngineEvent::BladeCapped {
                        blade,
                        at: self.now,
                        ceiling,
                    });
                }
                CapAction::Emergency {
                    blade,
                    budget_watts,
                } => {
                    self.scheduler.set_blade_degraded(blade, true);
                    self.events.push(EngineEvent::PowerEmergency {
                        blade,
                        at: self.now,
                        budget_watts,
                    });
                    // Controlled load-shed: evict this blade's jobs through
                    // the checkpoint-aware requeue path and drain the
                    // boards. Unlike a crash this is a *decision* — the
                    // failure detector plays no part, so heartbeats keep
                    // flowing and nothing is falsely suspected.
                    for node in self.layout.blades()[blade].node_indices {
                        self.node_failed(node);
                    }
                }
                CapAction::RailRecovered { blade } => {
                    self.events.push(EngineEvent::RailRecovered {
                        blade,
                        at: self.now,
                    });
                    for node in self.layout.blades()[blade].node_indices {
                        self.node_recovered(node);
                    }
                }
                CapAction::Release { blade } => {
                    self.scheduler.set_blade_degraded(blade, false);
                    self.events.push(EngineEvent::BladeReleased {
                        blade,
                        at: self.now,
                    });
                }
                CapAction::RackEmergency { budget_watts } => {
                    // The per-blade Emergency actions that follow carry the
                    // infeasible shares and do the actual checkpoint-drain;
                    // this records the machine-wide cause.
                    self.events.push(EngineEvent::RackPowerEmergency {
                        at: self.now,
                        budget_watts,
                    });
                }
            }
        }
        // With a thermal governor or watchdog configured, those own the
        // upward moves (they step boards back up when cool), so the cap is
        // a one-way upper bound. Without either, nothing else would ever
        // raise a clamped board again — so nodes are pinned *exactly* at
        // the ceiling (nominal on healthy blades, the implicit
        // performance-governor semantic), and each ramp-back step and the
        // final release restore their frequency.
        let pin_exact = self.config.governor.is_none()
            && self
                .recovery
                .as_ref()
                .is_none_or(|rec| rec.config.thermal_watchdog.is_none());
        for (blade, b) in self.layout.blades().iter().enumerate() {
            let ceiling = gov.ceiling(blade);
            for &i in &b.node_indices {
                let current = self.nodes[i].cpufreq().current_index();
                if current > ceiling || (pin_exact && current < ceiling) {
                    self.nodes[i].cpufreq_mut().set_index(ceiling);
                }
            }
        }
        self.power_cap = Some(gov);
    }

    /// Runs for a span of simulated time. Under [`ClockMode::EventDriven`]
    /// provably inert spans are fast-forwarded; the final clock is the
    /// same grid tick a fixed-dt run lands on.
    pub fn run_for(&mut self, span: SimDuration) {
        let end = self.now + span;
        while self.now < end {
            if self.config.clock == ClockMode::EventDriven {
                let cap = self.grid_align_up(end);
                if self.fast_forward_to(cap) {
                    continue;
                }
            }
            self.step();
        }
    }

    /// Runs until no job is pending or running, up to `max`. Returns
    /// whether the machine drained. Both clock modes exit at the
    /// identical tick: the idle check runs before each step.
    pub fn run_until_idle(&mut self, max: SimDuration) -> bool {
        let end = self.now + max;
        while self.now < end {
            if self.running.is_empty() && self.scheduler.pending().is_empty() {
                return true;
            }
            if self.config.clock == ClockMode::EventDriven {
                let cap = self.grid_align_up(end);
                if self.fast_forward_to(cap) {
                    continue;
                }
            }
            self.step();
        }
        self.running.is_empty() && self.scheduler.pending().is_empty()
    }

    /// The first clock-grid tick at or after `t` (the engine's clock only
    /// ever rests on multiples of `dt` from its starting point).
    fn grid_align_up(&self, t: SimTime) -> SimTime {
        let dt = self.config.dt.as_micros().max(1);
        let now = self.now.as_micros();
        let target = t.as_micros().max(now);
        SimTime::from_micros(now + (target - now).div_ceil(dt) * dt)
    }

    /// Whether executing `step()` at the current tick would mutate
    /// nothing but the thermal integrator (and its trip latch). `false`
    /// is conservative: the tick is stepped in full.
    ///
    /// Monitoring must be off — the monitored counterpart is
    /// [`SimEngine::tick_is_observation_only`], whose replay loop handles
    /// due heartbeats and samples inline instead of treating them as
    /// actions.
    fn tick_is_quiescent(&self) -> bool {
        if self.config.monitoring {
            return false;
        }
        if !self.tick_is_observation_only() {
            return false;
        }
        // With telemetry off nothing replays heartbeats, so one due now
        // is an action the full step must publish.
        if let Some(rec) = &self.recovery {
            let partition = self.active_partition();
            for i in 0..self.nodes.len() {
                let cut = partition.is_some_and(|(a, b)| a == i || b == i);
                if rec.node_alive[i] && !cut && self.now >= rec.next_heartbeat[i] {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the *only* activity `step()` would perform at the current
    /// tick is periodic observation — sensor draws, plugin samples,
    /// heartbeat publication/ingestion — plus pure thermal relaxation.
    /// Everything the full quiescence predicate demands holds, except
    /// that monitoring may be on and due samples/heartbeats do not block
    /// (the monitored fast-forward replays them exactly). A phi crossing
    /// *at this tick* still blocks: it fences, which only a full step
    /// applies. `false` is conservative.
    fn tick_is_observation_only(&self) -> bool {
        if !self.running.is_empty() {
            return false;
        }
        // `would_start_any == false` is a proof schedule() is a no-op.
        if self.scheduler.would_start_any(self.now) {
            return false;
        }
        if self.faults.next_due().is_some_and(|t| t <= self.now) {
            return false;
        }
        // Span side-effects that expire *at* this tick mutate state
        // (broker loss reset, collector reattach).
        if self.broker_loss_until.is_some_and(|t| self.now >= t) {
            return false;
        }
        if self.collector_offline_until.is_some_and(|t| self.now >= t) {
            return false;
        }
        // A switch restoration or export recovery due now mutates state
        // (restore acknowledgement, spill flush).
        if self.switch.restore_due(self.now) {
            return false;
        }
        if self.recovery.as_ref().is_some_and(|rec| {
            rec.store
                .export_offline_until()
                .is_some_and(|t| self.now >= t)
        }) {
            return false;
        }
        // A non-quiescent power-cap governor (active budget, pending ramp,
        // emergency, or any ceiling below nominal) decides every tick.
        if self
            .power_cap
            .as_ref()
            .is_some_and(|gov| !gov.is_quiescent())
        {
            return false;
        }
        // Fan-failure or crash-only-brownout spans expiring at this tick
        // mutate state (airflow restoration, board power-on).
        if self
            .fan_fault_until
            .iter()
            .chain(&self.brownout_until)
            .any(|u| u.is_some_and(|t| self.now >= t))
        {
            return false;
        }
        // Under a governor the skip is only provable when every node is
        // at nominal (StepUp is a no-op there) and none is hot enough to
        // be stepped down.
        if let Some(governor) = self.config.governor {
            for i in 0..self.nodes.len() {
                if !self.nodes[i].cpufreq().is_nominal() {
                    return false;
                }
                if matches!(
                    governor.decide(self.thermal.temperature(i)),
                    GovernorAction::StepDown
                ) {
                    return false;
                }
            }
        }
        if let Some(rec) = &self.recovery {
            let temps: Vec<Celsius> = (0..self.nodes.len())
                .map(|i| self.thermal.temperature(i))
                .collect();
            // No fenced nodes, no watchdog state in flight, temps clear
            // of the watchdog thresholds.
            if !rec.control.is_quiescent(&temps) {
                return false;
            }
            let dt = self.config.dt;
            for i in 0..self.nodes.len() {
                // A phi threshold crossing now fences a node.
                if rec
                    .control
                    .next_suspicion_due(i, self.now, self.now, dt)
                    .is_some()
                {
                    return false;
                }
            }
        }
        true
    }

    /// Earliest instant strictly after `now` (and no later than
    /// `horizon`) at which any subsystem needs a full step: the next
    /// fault, span expiry, heartbeat, phi threshold crossing, scheduler
    /// release or estimated completion, checkpoint transition, or plugin
    /// sample. `None` means nothing is due inside the horizon.
    pub fn next_due(&self, horizon: SimTime) -> Option<SimTime> {
        self.next_due_inner(horizon, true)
    }

    /// [`SimEngine::next_due`] with observation events — plugin samples,
    /// heartbeats and phi crossings — optionally excluded. The monitored
    /// fast-forward replays those inline, so its wake-up must come only
    /// from events that genuinely need the full pipeline.
    fn next_due_inner(&self, horizon: SimTime, include_observation: bool) -> Option<SimTime> {
        let now = self.now;
        let add = |due: &mut Option<SimTime>, t: SimTime| {
            if t > now && t <= horizon && due.is_none_or(|d| t < d) {
                *due = Some(t);
            }
        };
        let mut due: Option<SimTime> = None;
        if let Some(t) = self.faults.next_due() {
            add(&mut due, t);
        }
        for t in [
            self.broker_loss_until,
            self.collector_offline_until,
            self.partition_until,
            self.switch.next_due(),
            self.recovery
                .as_ref()
                .and_then(|rec| rec.store.export_offline_until()),
        ]
        .into_iter()
        .flatten()
        {
            add(&mut due, t);
        }
        for t in self
            .fan_fault_until
            .iter()
            .chain(&self.brownout_until)
            .copied()
            .flatten()
        {
            add(&mut due, t);
        }
        if let Some(t) = self.power_cap.as_ref().and_then(|gov| gov.next_due()) {
            add(&mut due, t);
        }
        if let Some(t) = self.scheduler.next_due(self.now) {
            add(&mut due, t);
        }
        for run in self.running.values() {
            if let Some(t) = run.ckpt.next_due() {
                add(&mut due, t);
            }
            if let Ok(job) = self.scheduler.job(run.id) {
                add(&mut due, run.started + job.spec().time_limit);
            }
        }
        if include_observation && self.config.monitoring {
            for runner in &self.pmu {
                add(&mut due, runner.next_due());
            }
            for runner in &self.stats {
                add(&mut due, runner.next_due());
            }
        }
        if let Some(rec) = self.recovery.as_ref().filter(|_| include_observation) {
            let partition = self.active_partition();
            for i in 0..self.nodes.len() {
                let cut = partition.is_some_and(|(a, b)| a == i || b == i);
                if rec.node_alive[i] && !cut {
                    add(&mut due, rec.next_heartbeat[i]);
                }
            }
            // Phi crossings are searched on the clock grid up to the
            // earliest due found so far (a crossing past it cannot win),
            // which keeps the binary search's span tight.
            let dt = self.config.dt;
            let span_end = due.unwrap_or(horizon);
            for i in 0..self.nodes.len() {
                if let Some(t) = rec
                    .control
                    .next_suspicion_due(i, self.now + dt, span_end, dt)
                {
                    add(&mut due, t);
                }
            }
        }
        due
    }

    /// Fast-forwards from the current tick towards `cap` (a grid tick),
    /// dispatching on the monitoring mode: with telemetry off, skipped
    /// ticks advance only the thermal integrator; with telemetry on, the
    /// sampled-span replay (DESIGN.md §16) performs exactly the
    /// observation slice of each tick. Returns whether the clock advanced
    /// at all (`false` ⇒ the caller must run a full step).
    fn fast_forward_to(&mut self, cap: SimTime) -> bool {
        if self.config.monitoring {
            self.monitored_fast_forward(cap)
        } else {
            self.unmonitored_fast_forward(cap)
        }
    }

    /// The telemetry-off fast-forward: each skipped tick advances only
    /// the thermal integrator with the exact arithmetic of a full step,
    /// and once the integrator reaches its f64 fixed point the remaining
    /// span is jumped in O(1). Stops early at the next due event, a
    /// thermal trip, a governor or watchdog threshold crossing.
    fn unmonitored_fast_forward(&mut self, cap: SimTime) -> bool {
        if cap <= self.now || !self.tick_is_quiescent() {
            return false;
        }
        let dt = self.config.dt;
        let wake = match self.next_due(cap) {
            Some(due) => cap.min(self.grid_align_up(due)),
            None => cap,
        };
        let start = self.now;
        while self.now < wake {
            match self.thermal_microstep() {
                Microstep::Advanced => {}
                Microstep::Equilibrium => {
                    // Thermally settled: every remaining tick is bitwise
                    // the same no-op, so jump the clock.
                    self.ticks_skipped +=
                        (wake.as_micros() - self.now.as_micros()) / dt.as_micros().max(1);
                    self.now = wake;
                    break;
                }
                Microstep::Resume => break,
            }
        }
        self.now > start
    }

    /// The sampled-span replay (DESIGN.md §16): fast-forwards a
    /// *monitored* observation-only span towards `cap`. Every replayed
    /// tick performs exactly the observable slice of a full step, in the
    /// full step's order — heartbeat publication and same-tick ingestion,
    /// the per-node sensor-noise draws and power messages (serially in
    /// node order, so the RNG stream is identical), plugin samples
    /// through the same allocation-free `due_messages_into`/`sample_into`
    /// paths, per-tick node counter advancement (load averages smooth
    /// exponentially — not batchable bitwise) and collector pumping —
    /// while the phases proven inert for the whole span (scheduler probe,
    /// job walk, condition refresh, power-cap evaluation) are skipped.
    /// Thermal advances with the §13 microstep arithmetic until its f64
    /// fixed point, after which the temperature-dependent slice is frozen
    /// and skipped under the same equilibrium argument as the §13 jump.
    ///
    /// Phi-accrual suspicion is scheduled, not polled: between heartbeat
    /// ingestions a detector's state is frozen and phi is monotone in
    /// silence, so the binary-searched first crossing is exact until the
    /// node's next arrival (after which it is recomputed on the
    /// post-arrival state). A tick with a crossing due must fence, which
    /// only the full pipeline applies, so the replay stops just before
    /// it; likewise a thermal trip, governor move or watchdog arming
    /// finishes its tick exactly and then resumes full stepping.
    ///
    /// Replayed ticks count as *skipped* — they bypass the full pipeline
    /// — which makes the dense monitored scenario's tick ratio the same
    /// deterministic speedup metric the sparse path reports.
    fn monitored_fast_forward(&mut self, cap: SimTime) -> bool {
        if cap <= self.now || !self.tick_is_observation_only() {
            return false;
        }
        let dt = self.config.dt;
        let n = self.nodes.len();
        // Wake at the earliest non-observation event; samples, heartbeats
        // and phi crossings inside the span are replayed, not woken for.
        let wake = match self.next_due_inner(cap, false) {
            Some(due) => cap.min(self.grid_align_up(due)),
            None => cap,
        };
        let start = self.now;
        let mut crossings: Vec<Option<SimTime>> = vec![None; n];
        if let Some(rec) = &self.recovery {
            for (i, slot) in crossings.iter_mut().enumerate() {
                *slot = rec.control.next_suspicion_due(i, self.now + dt, wake, dt);
            }
        }
        // A node's power topic is identical every tick; build each once.
        let power_topics: Vec<Topic> = (0..n).map(|i| self.power_topic(i)).collect();
        let mut equilibrium = false;
        let mut node_power: Vec<Power> = Vec::with_capacity(n);
        let mut prev_temps: Vec<Celsius> = Vec::with_capacity(n);
        while self.now < wake {
            if crossings.iter().flatten().any(|&t| t <= self.now) {
                break; // a suspicion crossing fences: full step handles it
            }
            // Phase 0b: heartbeats on their exact cadence, ingested the
            // same tick — `publish_heartbeats` IS the fixed-dt publisher.
            if self.recovery.is_some() {
                let due_any = {
                    let partition = self.active_partition();
                    let rec = self.recovery.as_ref().expect("recovery mode");
                    (0..n).any(|i| {
                        rec.node_alive[i]
                            && !partition.is_some_and(|(a, b)| a == i || b == i)
                            && self.now >= rec.next_heartbeat[i]
                    })
                };
                self.publish_heartbeats();
                if due_any {
                    let rec = self.recovery.as_mut().expect("recovery mode");
                    rec.control.pump_arrivals();
                    // Detector state moved: refresh every crossing.
                    for (i, slot) in crossings.iter_mut().enumerate() {
                        *slot = rec.control.next_suspicion_due(i, self.now + dt, wake, dt);
                    }
                }
            }
            // Phase 4: sensor-noise draws and power messages, exactly as
            // the full step draws them. The noise-free mean feeding the
            // thermal model is frozen once the integrator settles.
            let switch_up = self.switch.is_up(self.now);
            if !equilibrium {
                node_power.clear();
                prev_temps.clear();
                for i in 0..n {
                    let workload = self.nodes[i].effective_power_workload();
                    let temp = self.thermal.temperature(i);
                    prev_temps.push(temp);
                    let scale = self.nodes[i].cpufreq().scale();
                    node_power.push(self.power.mean_all_dvfs(workload, temp, scale).total());
                }
            }
            let mut batch = std::mem::take(&mut self.replay_batch);
            batch.clear();
            if switch_up {
                for (i, topic) in power_topics.iter().enumerate() {
                    if self.now < self.sensor_dropout_until[i] {
                        continue; // dropped out: no draw, no message
                    }
                    let stuck = self.now < self.sensor_stuck_until[i];
                    let workload = self.nodes[i].effective_power_workload();
                    let temp = self.thermal.temperature(i);
                    let scale = self.nodes[i].cpufreq().scale();
                    let measured = self
                        .power
                        .sample_all_dvfs(workload, temp, scale, &mut self.rng)
                        .total()
                        .as_watts();
                    let watts = match (stuck, self.last_power[i]) {
                        (true, Some(frozen)) => frozen,
                        _ => measured,
                    };
                    // Same wire-level sign flip as the full step's phase 4.
                    let watts = if self.now < self.payload_corrupt_until[i] {
                        f64::from_bits(watts.to_bits() ^ (1u64 << 63))
                    } else {
                        watts
                    };
                    batch.push((*topic, Payload::new(watts, self.now)));
                    if !stuck {
                        self.last_power[i] = Some(measured);
                    }
                }
            }
            // Phases 5/5b: the §13 thermal microstep arithmetic. A trip,
            // governor move or watchdog arming finishes this tick exactly
            // as the full step would, then resumes full stepping.
            let mut resume = false;
            if !equilibrium {
                self.record_blade_power(&node_power);
                let tripped = self.thermal.step(&node_power, dt);
                let any_trip = !tripped.is_empty();
                for node_index in tripped {
                    self.handle_trip(node_index);
                }
                for i in 0..n {
                    let (cpu, mb, nvme) = (
                        self.thermal.temperature(i),
                        self.thermal.mb_temperature(i),
                        self.thermal.nvme_temperature(i),
                    );
                    self.nodes[i].set_temperatures(cpu, mb, nvme);
                }
                let governed = self.govern();
                if any_trip || governed {
                    resume = true;
                } else if let Some(rec) = &self.recovery {
                    let temps: Vec<Celsius> = (0..n).map(|i| self.thermal.temperature(i)).collect();
                    if !rec.control.is_quiescent(&temps) {
                        resume = true;
                    }
                }
                if !resume {
                    equilibrium = (0..n).all(|i| self.thermal.temperature(i) == prev_temps[i]);
                }
            }
            // Phase 6: counters advance every tick; plugins sample at
            // their due ticks. Building the (reusable, in-place) snapshot
            // only when a plugin is actually due is the replay's one
            // shortcut; the tick's messages then go out as ONE serial
            // batch (identical observable semantics to per-message
            // publish, broker locks amortised over the tick).
            for i in 0..n {
                self.nodes[i].advance(dt);
                if !switch_up || self.now < self.sensor_dropout_until[i] {
                    continue; // silent or switch dark
                }
                if self.now < self.pmu[i].next_due() && self.now < self.stats[i].next_due() {
                    continue;
                }
                let mut out = std::mem::take(&mut self.plugin_scratch[i]);
                out.clear();
                let mut snapshot = std::mem::take(&mut self.snap_scratch[i]);
                self.nodes[i].snapshot_into(self.now, &mut snapshot);
                self.pmu[i].due_messages_into(self.now, &snapshot, &mut out);
                self.stats[i].due_messages_into(self.now, &snapshot, &mut out);
                self.snap_scratch[i] = snapshot;
                batch.append(&mut out);
                self.plugin_scratch[i] = out;
            }
            self.broker.publish_batch_serial(&mut batch);
            self.replay_batch = batch;
            self.ticks_skipped += 1;
            self.now += dt;
            if resume {
                break;
            }
        }
        // One collector pump for the whole span. Nothing reads the store
        // mid-span (the engine only writes it through this pump; external
        // readers see state between `run_for` calls), per-series message
        // order is preserved by the queue, and the engine's collector is
        // unbounded — so deferring ingestion to the span boundary yields
        // a byte-identical store at a fraction of the lock traffic.
        if self.now > start {
            if let Some(collector) = &mut self.collector {
                collector.pump(&mut self.store);
            }
            self.drain_scrub_quarantine();
        }
        self.now > start
    }

    /// Executes the only physically active slice of a quiescent tick —
    /// mean power, thermal integration, trip latch, governor — with the
    /// exact arithmetic and ordering of the full step, then advances the
    /// clock one `dt`.
    fn thermal_microstep(&mut self) -> Microstep {
        let dt = self.config.dt;
        let n = self.nodes.len();
        let mut node_power = Vec::with_capacity(n);
        let mut prev_temps = Vec::with_capacity(n);
        for i in 0..n {
            let workload = self.nodes[i].effective_power_workload();
            let temp = self.thermal.temperature(i);
            let scale = self.nodes[i].cpufreq().scale();
            prev_temps.push(temp);
            node_power.push(self.power.mean_all_dvfs(workload, temp, scale).total());
        }
        self.record_blade_power(&node_power);
        let tripped = self.thermal.step(&node_power, dt);
        let any_trip = !tripped.is_empty();
        for node_index in tripped {
            self.handle_trip(node_index);
        }
        for i in 0..n {
            let (cpu, mb, nvme) = (
                self.thermal.temperature(i),
                self.thermal.mb_temperature(i),
                self.thermal.nvme_temperature(i),
            );
            self.nodes[i].set_temperatures(cpu, mb, nvme);
        }
        // The governor fires at this tick exactly as phase 5b would.
        let governed = self.govern();
        self.ticks_skipped += 1;
        self.now += dt;
        if any_trip || governed {
            // State beyond the integrator changed: resume full stepping.
            return Microstep::Resume;
        }
        // The *next* tick's control plane reads the temperatures just
        // set; crossing a watchdog line ends the skippable span.
        if let Some(rec) = &self.recovery {
            let temps: Vec<Celsius> = (0..n).map(|i| self.thermal.temperature(i)).collect();
            if !rec.control.is_quiescent(&temps) {
                return Microstep::Resume;
            }
        }
        let settled = (0..n).all(|i| self.thermal.temperature(i) == prev_temps[i]);
        if settled {
            Microstep::Equilibrium
        } else {
            Microstep::Advanced
        }
    }

    /// The partition cutting the management network right now, if any.
    fn active_partition(&self) -> Option<(usize, usize)> {
        match self.partition_until {
            Some(t) if self.now < t => self.partitioned,
            _ => None,
        }
    }

    fn power_topic(&self, node_index: usize) -> Topic {
        self.power_topics[node_index]
    }

    fn start_job(&mut self, id: JobId) {
        let workload = self.workloads[&id];
        let job = self.scheduler.job(id).expect("started job exists");
        let node_indices: Vec<usize> = job
            .allocated_nodes()
            .iter()
            .map(|h| hostname_index(h))
            .collect();
        let nodes = node_indices.len();

        // Blades the allocation actually spans: scattering beyond the
        // minimal packing costs extra communication time (phase 3b of a
        // degraded machine can force this).
        let blades_spanned = {
            let mut blades: Vec<usize> = node_indices
                .iter()
                .map(|&i| self.layout.blade_of(i).position)
                .collect();
            blades.sort_unstable();
            blades.dedup();
            blades.len()
        };

        let (duration, comm_fraction, panel_cycle, mem_per_node) = match workload {
            ClusterWorkload::Hpl(problem) => {
                let model = HplModel::monte_cimone(problem);
                let sample = model.simulate_run_spanning(nodes, blades_spanned, &mut self.rng);
                let duration = SimDuration::from_secs_f64(sample.seconds);
                let cycle = duration / problem.panels().max(1) as u64;
                let mem = (problem.n * problem.n * 8) as f64 / nodes as f64;
                (duration, model.comm_fraction(nodes), cycle, mem)
            }
            ClusterWorkload::QeLax => {
                let model = LaxModel::paper();
                let (secs, _) = model.simulate_run(&mut self.rng);
                (
                    SimDuration::from_secs_f64(secs),
                    0.05,
                    SimDuration::from_secs(1),
                    (model.matrix_n * model.matrix_n * 8 * 4) as f64,
                )
            }
            ClusterWorkload::StreamDdr { secs } | ClusterWorkload::StreamL2 { secs } => (
                SimDuration::from_secs(secs),
                0.0,
                SimDuration::from_secs(1),
                2.0e9,
            ),
            ClusterWorkload::Synthetic { secs, .. } => (
                SimDuration::from_secs(secs),
                0.0,
                SimDuration::from_secs(1),
                1.0e9,
            ),
        };

        self.events.push(EngineEvent::JobStarted {
            id,
            at: self.now,
            nodes: node_indices.clone(),
        });
        // Restart from the last committed checkpoint when one survived a
        // previous eviction; schedule the first checkpoint of this run.
        let resumed = self
            .recovery
            .as_mut()
            .and_then(|r| r.resume_progress.remove(&id));
        if let Some(progress) = resumed {
            self.events.push(EngineEvent::JobResumed {
                id,
                at: self.now,
                progress,
            });
        }
        let next_ckpt_at = self
            .recovery
            .as_ref()
            .and_then(|r| r.config.checkpoint)
            .map(|c| self.now + c.interval);
        self.running.insert(
            id,
            RunningJob {
                id,
                workload,
                node_indices,
                started: self.now,
                duration,
                progress: resumed.unwrap_or(0.0),
                comm_fraction,
                panel_cycle: if panel_cycle.is_zero() {
                    SimDuration::from_secs(1)
                } else {
                    panel_cycle
                },
                mem_per_node,
                energy: Energy::ZERO,
                ckpt: CheckpointSchedule::new(next_ckpt_at, resumed.unwrap_or(0.0)),
                sdc_trailing: 0,
                sdc_factored: 0,
            },
        );
    }

    /// Re-derives every node's conditions from the running-job set.
    fn refresh_conditions(&mut self) {
        let mut conditions: Vec<NodeConditions> = vec![NodeConditions::default(); self.nodes.len()];
        for job in self.running.values() {
            let elapsed = self.now.saturating_since(job.started);
            let workload_class = match job.workload {
                ClusterWorkload::Hpl(_) => Workload::Hpl,
                ClusterWorkload::QeLax => Workload::QeLax,
                ClusterWorkload::StreamDdr { .. } => Workload::StreamDdr,
                ClusterWorkload::StreamL2 { .. } => Workload::StreamL2,
                ClusterWorkload::Synthetic { workload, .. } => workload,
            };
            // Communication burst at the head of each panel cycle.
            let in_cycle = elapsed.as_micros() % job.panel_cycle.as_micros().max(1);
            let communicating = job.node_indices.len() > 1
                && (in_cycle as f64) < job.comm_fraction * job.panel_cycle.as_micros() as f64;
            let net = if communicating { 60.0e6 } else { 0.2e6 };
            for &i in &job.node_indices {
                conditions[i] = NodeConditions {
                    workload: workload_class,
                    busy_cores: 4,
                    communicating,
                    net_recv: net,
                    net_send: net,
                    mem_used: job.mem_per_node,
                };
            }
        }
        for (node, cond) in self.nodes.iter_mut().zip(conditions) {
            node.set_conditions(cond);
        }
    }

    fn finish_job(&mut self, id: JobId, state: JobState) {
        let job = self.running.remove(&id).expect("finishing job is running");
        self.scheduler
            .complete(id, self.now, state)
            .expect("running job completes");
        if let Some(rec) = self.recovery.as_mut() {
            // A finished job's restart point is dead weight.
            rec.store.remove(id.0);
            rec.resume_progress.remove(&id);
            Self::release_spill_holder(
                &mut rec.spill_holders,
                &mut self.scheduler,
                &self.nodes,
                id.0,
            );
        }
        if let Some(record) = JobRecord::from_job(self.scheduler.job(id).expect("job exists")) {
            self.accounting.record(record.with_energy(job.energy));
        }
        self.events
            .push(EngineEvent::JobCompleted { id, at: self.now });
    }

    fn handle_trip(&mut self, node_index: usize) {
        let temperature = self.thermal.temperature(node_index);
        self.events.push(EngineEvent::NodeTripped {
            node: node_index,
            at: self.now,
            temperature,
        });
        if self.recovery.is_some() {
            // The hardware shut itself off; heartbeats stop and the
            // failure detector does the rest.
            self.physical_down(node_index);
        } else {
            self.node_failed(node_index);
        }
    }

    /// Fires every planned fault the clock has reached and winds down
    /// span effects whose window has closed.
    fn apply_due_faults(&mut self) {
        while let Some(event) = self.faults.pop_due(self.now) {
            self.apply_fault(event.kind);
        }
        if self.broker_loss_until.is_some_and(|t| self.now >= t) {
            self.broker.set_loss(0.0, 0);
            self.broker_loss_until = None;
        }
        if self.collector_offline_until.is_some_and(|t| self.now >= t) {
            // Reconnect ingestion; everything published meanwhile is gone.
            self.collector = Some(
                Collector::attach(&self.broker, "#".parse().expect("valid filter"))
                    .with_scrub(ScrubPolicy::monte_cimone()),
            );
            self.collector_offline_until = None;
        }
        if self.switch.restore_due(self.now) {
            self.switch.restore();
            self.events
                .push(EngineEvent::SwitchRestored { at: self.now });
        }
        // NFS export recovery: acknowledge the expired window once, then
        // flush any node-local spill buffers to the export in job-id order.
        let flush_due = self.recovery.as_ref().is_some_and(|rec| {
            rec.store
                .export_offline_until()
                .is_some_and(|t| self.now >= t)
        });
        if flush_due {
            let rec = self.recovery.as_mut().expect("recovery mode");
            rec.store.clear_export_offline();
            if rec.store.spilled_jobs() > 0 {
                let (records, _cost) = rec.store.flush_spill(self.now).expect("export back online");
                rec.checkpoints_written += records;
                for job_id in rec.spill_holders.keys().copied().collect::<Vec<_>>() {
                    Self::release_spill_holder(
                        &mut rec.spill_holders,
                        &mut self.scheduler,
                        &self.nodes,
                        job_id,
                    );
                }
                self.events.push(EngineEvent::SpillFlushed {
                    at: self.now,
                    records,
                });
            }
        }
        for blade in 0..self.layout.blades().len() {
            if self.fan_fault_until[blade].is_some_and(|t| self.now >= t) {
                // The fan is repaired: the blade and its shadow regain
                // their airflow (unless another failure still covers them).
                self.fan_fault_until[blade] = None;
                self.refresh_airflow_degradation();
            }
            if self.brownout_until[blade].is_some_and(|t| self.now >= t) {
                // Crash-only brownout over: both boards return.
                self.brownout_until[blade] = None;
                let nodes = self.layout.blades()[blade].node_indices;
                for node in nodes {
                    if self.recovery.is_some() {
                        self.physical_up(node);
                    } else {
                        self.node_recovered(node);
                    }
                }
            }
        }
    }

    /// Applies one fault right now. Returns the victim jobs for node
    /// crashes (requeued or lost), empty otherwise. With recovery enabled
    /// a crash is physical only (the detector finds it later), so the list
    /// is empty there too.
    fn apply_fault(&mut self, kind: FaultKind) -> Vec<JobId> {
        self.events.push(EngineEvent::FaultInjected {
            at: self.now,
            kind: kind.clone(),
        });
        match kind {
            FaultKind::NodeCrash { node } => {
                if self.recovery.is_some() {
                    self.physical_down(node);
                } else {
                    return self.node_failed(node);
                }
            }
            FaultKind::NodeRecover { node } => {
                if self.recovery.is_some() {
                    self.physical_up(node);
                } else {
                    self.node_recovered(node);
                }
            }
            FaultKind::SensorDropout { node, span } => {
                self.sensor_dropout_until[node] = self.now + span;
            }
            FaultKind::SensorStuck { node, span } => {
                self.sensor_stuck_until[node] = self.now + span;
            }
            FaultKind::BrokerMessageLoss { rate, span } => {
                // Seeded off the engine seed so runs stay reproducible.
                self.broker.set_loss(rate, self.config.seed ^ 0x6c6f_7373);
                self.broker_loss_until = Some(self.now + span);
            }
            FaultKind::SubscriberDisconnect { span } => {
                // Dropping the collector closes its subscription; the
                // broker prunes it and accounts the missed messages.
                self.collector = None;
                self.collector_offline_until = Some(self.now + span);
            }
            FaultKind::LinkDegrade { factor, span } => {
                self.degrade_factor = factor.max(1.0);
                self.degrade_until = Some(self.now + span);
            }
            FaultKind::Partition { a, b, span } => {
                self.partitioned = Some((a.min(b), a.max(b)));
                self.partition_until = Some(self.now + span);
            }
            FaultKind::NfsStall { span } => {
                self.nfs_stall_until = Some(self.now + span);
            }
            FaultKind::SpuriousThermalTrip { node } => self.handle_trip(node),
            FaultKind::PsuFailure { blade } => {
                // One supply feeds both boards: a correlated dual crash.
                let nodes = self.layout.blades()[blade].node_indices;
                if self.recovery.is_some() {
                    for node in nodes {
                        self.physical_down(node);
                    }
                } else {
                    let mut victims = Vec::new();
                    for node in nodes {
                        victims.extend(self.node_failed(node));
                    }
                    return victims;
                }
            }
            FaultKind::RailBrownout {
                blade,
                budget_frac,
                span,
            } => {
                if let Some(gov) = self.power_cap.as_mut() {
                    // Graceful degradation: the governor caps the blade's
                    // DVFS under the reduced budget at the next phase 3b.
                    gov.begin_brownout(blade, budget_frac, self.now, span);
                } else {
                    // Crash-only machine: the rail cannot carry the boards
                    // at any operating point it is willing to risk.
                    self.brownout_until[blade] = Some(self.now + span);
                    let nodes = self.layout.blades()[blade].node_indices;
                    if self.recovery.is_some() {
                        for node in nodes {
                            self.physical_down(node);
                        }
                    } else {
                        let mut victims = Vec::new();
                        for node in nodes {
                            victims.extend(self.node_failed(node));
                        }
                        return victims;
                    }
                }
            }
            FaultKind::SwitchOutage { span } => {
                // The whole rack hangs off one GbE switch: every node's
                // heartbeat and telemetry path goes dark at the same
                // instant. Heartbeat *schedules* keep advancing so the
                // cadence is identical in both clock modes; the beats just
                // never leave the NIC.
                self.switch.fail_until(self.now + span);
            }
            FaultKind::NfsExportDown { span } => {
                // The /ckpt export goes unreachable; the checkpoint commit
                // path degrades to bounded retry (or the spill buffer).
                // Running jobs keep computing — only durability stalls,
                // unlike the full-filesystem NfsStall.
                if let Some(rec) = self.recovery.as_mut() {
                    rec.store.set_export_offline(self.now + span);
                }
            }
            FaultKind::MultiRailBrownout { budget_frac, span } => {
                if let Some(gov) = self.power_cap.as_mut() {
                    // The rack arbiter water-fills the machine-wide budget
                    // across blades at the next phase 3b.
                    gov.begin_rack_brownout(budget_frac, self.now, span);
                } else {
                    // Crash-only machine: the feed cannot carry any blade.
                    let mut victims = Vec::new();
                    for blade in 0..self.layout.blades().len() {
                        self.brownout_until[blade] = Some(self.now + span);
                        let nodes = self.layout.blades()[blade].node_indices;
                        if self.recovery.is_some() {
                            for node in nodes {
                                self.physical_down(node);
                            }
                        } else {
                            for node in nodes {
                                victims.extend(self.node_failed(node));
                            }
                        }
                    }
                    return victims;
                }
            }
            FaultKind::FanFailure { blade, span } => {
                let until = self.now + span;
                // Overlapping failures keep the longer window.
                if self.fan_fault_until[blade].is_none_or(|t| t < until) {
                    self.fan_fault_until[blade] = Some(until);
                }
                self.refresh_airflow_degradation();
            }
            FaultKind::BitFlip { node, target, .. } => {
                // The flip poisons a job actually computing on the struck
                // node. HashMap iteration order is nondeterministic, so the
                // victim is the *lowest-id* running job there — a pure
                // function of engine state, identical in both clock modes.
                let victim = self
                    .running
                    .values()
                    .filter(|job| job.node_indices.contains(&node))
                    .map(|job| job.id)
                    .min();
                if let Some(id) = victim {
                    let job = self.running.get_mut(&id).expect("victim is running");
                    match target {
                        SdcTarget::TrailingMatrix => job.sdc_trailing += 1,
                        SdcTarget::FactoredPanel => job.sdc_factored += 1,
                    }
                }
                // An idle node has no live factorisation: the flip lands in
                // memory nothing reads and is harmless by construction.
            }
            FaultKind::CheckpointCorruption { node, generation } => {
                if let Some(rec) = self.recovery.as_mut() {
                    let victim = self
                        .running
                        .values()
                        .filter(|job| job.node_indices.contains(&node))
                        .map(|job| job.id)
                        .min();
                    if let Some(id) = victim {
                        // Deterministic bit choice: a pure function of the
                        // engine seed and the victim's identity.
                        let salt = self.config.seed ^ id.0.rotate_left(17) ^ generation as u64;
                        rec.store.corrupt_chain(id.0, generation, salt);
                    }
                }
                // The rot is silent here: it surfaces (as a
                // `CheckpointCorrupt` event) only when a restore walks the
                // chain and the CRC fails.
            }
            FaultKind::PayloadCorruption { node, span } => {
                self.payload_corrupt_until[node] = self.now + span;
            }
        }
        Vec::new()
    }

    /// Re-derives every node's airflow state from the set of active fan
    /// failures: a dead fan starves its own blade directly and pools
    /// un-moved hot air under the blade above it (its airflow shadow).
    fn refresh_airflow_degradation(&mut self) {
        let blade_count = self.layout.blades().len();
        let active = |blade: usize| self.fan_fault_until[blade].is_some_and(|t| self.now < t);
        let mut states = vec![AirflowDegradation::None; blade_count];
        for (blade, state) in states.iter_mut().enumerate() {
            if active(blade) {
                *state = AirflowDegradation::Direct;
            }
        }
        // Shadows second: a blade whose own fan died is already Direct and
        // must not be downgraded by a neighbour's shadow.
        for blade in 0..blade_count {
            if active(blade) {
                if let Some(shadow) = self.layout.airflow_shadow_of(blade) {
                    if states[shadow] == AirflowDegradation::None {
                        states[shadow] = AirflowDegradation::Shadow;
                    }
                }
            }
        }
        for (blade, &state) in states.iter().enumerate() {
            for &node in &self.layout.blades()[blade].node_indices {
                self.thermal.set_airflow_degradation(node, state);
            }
        }
    }

    /// The uniform oracle node-outage path: scheduler bookkeeping,
    /// victim-job disposition (requeue vs lost), outage clock, accounting.
    fn node_failed(&mut self, node_index: usize) -> Vec<JobId> {
        let hostname = self.nodes[node_index].hostname().to_owned();
        let victims = self.scheduler.fail_node(&hostname, self.now);
        if self.node_down_since[node_index].is_none() {
            self.node_down_since[node_index] = Some(self.now);
            self.failures += 1;
        }
        self.dispose_victims(&victims);
        victims
    }

    /// Books every job a node failure or fence evicted: wasted-work and
    /// restart-point accounting (recovery mode), the requeue-vs-lost
    /// split, and the scheduler's event drain.
    fn dispose_victims(&mut self, victims: &[JobId]) {
        for &id in victims {
            let run = self.running.remove(&id);
            if let (Some(rec), Some(run)) = (self.recovery.as_mut(), run.as_ref()) {
                // Work past the last committed checkpoint is gone. A
                // spilled (node-local, not yet durable) record counts as
                // committed *unless* the node buffering it is itself dead
                // or fenced — then the job falls back to its last record
                // durable on the export, and the extra loss is attributed
                // as wasted work (the crash landed inside the outage
                // window).
                let mut include_spill = false;
                if rec.store.spilled(id.0).is_some() {
                    let holder = rec.spill_holders.get(&id.0).copied();
                    let holder_ok =
                        holder.is_some_and(|h| rec.node_alive[h] && !rec.control.is_fenced(h));
                    if holder_ok {
                        include_spill = true;
                    } else {
                        rec.store.drop_spill(id.0);
                        Self::release_spill_holder(
                            &mut rec.spill_holders,
                            &mut self.scheduler,
                            &self.nodes,
                            id.0,
                        );
                    }
                }
                // The restart point is read back through the CRC-verifying
                // chain walk, never trusted from memory: a record rotted on
                // the export (or in the spill buffer) is quarantined here
                // and the job falls back to the next-newest generation that
                // still verifies. On an uncorrupted store this returns
                // exactly `run.ckpt.committed()`.
                let (verified, quarantined) = rec.store.restore_verified(id.0, include_spill);
                for generation in quarantined {
                    self.events.push(EngineEvent::CheckpointCorrupt {
                        id,
                        generation,
                        at: self.now,
                    });
                }
                if verified.is_none() && include_spill {
                    // The spill was the quarantined record: its holder mark
                    // is stale now that the buffer is gone.
                    Self::release_spill_holder(
                        &mut rec.spill_holders,
                        &mut self.scheduler,
                        &self.nodes,
                        id.0,
                    );
                }
                let saved = verified.map(|c| c.progress()).unwrap_or(0.0);
                let wasted = (run.progress - saved).max(0.0);
                rec.wasted_node_secs +=
                    wasted * run.duration.as_secs_f64() * run.node_indices.len() as f64;
                if saved > 0.0 {
                    rec.resume_progress.insert(id, saved);
                } else {
                    rec.resume_progress.remove(&id);
                }
            }
            let job = self.scheduler.job(id).expect("victim job exists");
            if job.state() == JobState::Failed {
                // Retry budget exhausted: the job is gone for good.
                if let Some(record) = JobRecord::from_job(job) {
                    let record = match &run {
                        Some(r) => record.with_energy(r.energy),
                        None => record,
                    };
                    self.accounting.record(record);
                }
                if let Some(rec) = self.recovery.as_mut() {
                    rec.store.remove(id.0);
                    rec.resume_progress.remove(&id);
                    Self::release_spill_holder(
                        &mut rec.spill_holders,
                        &mut self.scheduler,
                        &self.nodes,
                        id.0,
                    );
                }
                self.events.push(EngineEvent::JobLost { id, at: self.now });
            } else {
                self.events
                    .push(EngineEvent::JobRequeued { id, at: self.now });
            }
        }
        self.accounting.record_events(self.scheduler.take_events());
    }

    /// A node's hardware stops: heartbeats cease and its jobs stall, but
    /// the scheduler is told nothing — detection is the control plane's
    /// job. (Recovery mode only.)
    fn physical_down(&mut self, node_index: usize) {
        let rec = self.recovery.as_mut().expect("recovery mode");
        if !rec.node_alive[node_index] {
            return;
        }
        rec.node_alive[node_index] = false;
        if self.node_down_since[node_index].is_none() {
            self.node_down_since[node_index] = Some(self.now);
            self.failures += 1;
        }
    }

    /// A node's hardware returns: heartbeats resume. If the control plane
    /// fenced it meanwhile, the fence (and the outage clock) clears only
    /// once suspicion drains; if the repair beat detection, the outage
    /// closes here.
    fn physical_up(&mut self, node_index: usize) {
        let rec = self.recovery.as_mut().expect("recovery mode");
        if rec.node_alive[node_index] {
            return;
        }
        rec.node_alive[node_index] = true;
        if !rec.control.is_fenced(node_index) {
            self.thermal.clear_trip(node_index);
            if let Some(since) = self.node_down_since[node_index].take() {
                self.node_downtime[node_index] += self.now.saturating_since(since);
                self.events.push(EngineEvent::NodeRecovered {
                    node: node_index,
                    at: self.now,
                });
            }
        }
    }

    /// Fences a node off the machine: the scheduler evicts its jobs
    /// through the requeue path and stops placing work on it.
    fn fence_node(&mut self, node_index: usize) {
        let hostname = self.nodes[node_index].hostname().to_owned();
        let victims = self.scheduler.fail_node(&hostname, self.now);
        self.events.push(EngineEvent::NodeFenced {
            node: node_index,
            at: self.now,
        });
        if let Some(rec) = self.recovery.as_mut() {
            rec.fences += 1;
            rec.control.set_fenced(node_index, true);
        }
        // A false suspicion still takes a healthy node out of service:
        // that availability cost is real, so the outage clock opens either
        // way (a physical crash already opened it).
        if self.node_down_since[node_index].is_none() {
            self.node_down_since[node_index] = Some(self.now);
        }
        self.dispose_victims(&victims);
    }

    /// Returns a fenced node to the scheduler and closes its outage.
    fn unfence_node(&mut self, node_index: usize) {
        self.thermal.clear_trip(node_index);
        let hostname = self.nodes[node_index].hostname().to_owned();
        self.scheduler.resume_node(&hostname);
        if let Some(rec) = self.recovery.as_mut() {
            rec.control.set_fenced(node_index, false);
        }
        if let Some(since) = self.node_down_since[node_index].take() {
            self.node_downtime[node_index] += self.now.saturating_since(since);
        }
        self.events.push(EngineEvent::NodeUnfenced {
            node: node_index,
            at: self.now,
        });
    }

    /// Publishes heartbeats for every physically alive node whose cadence
    /// is due. A partition cuts both endpoints off the management network,
    /// so their heartbeats are suppressed (a source of false suspicion);
    /// seeded broker loss drops beats inside the broker itself.
    fn publish_heartbeats(&mut self) {
        let partitioned = self.active_partition();
        let switch_up = self.switch.is_up(self.now);
        let rec = self.recovery.as_mut().expect("recovery mode");
        for i in 0..self.nodes.len() {
            // A DVFS-capped or throttled board runs its management daemon
            // slower too: its heartbeat cadence stretches by the inverse
            // performance scale. The failure detector is told the scale so
            // slowness is not mistaken for death (gated by
            // [`RecoveryConfig::cap_aware_suspicion`]).
            let perf = self.nodes[i].cpufreq().performance_scale();
            rec.control.set_expected_interval_scale(i, 1.0 / perf);
            if !rec.node_alive[i] {
                continue;
            }
            if partitioned.is_some_and(|(a, b)| a == i || b == i) {
                continue;
            }
            if self.now >= rec.next_heartbeat[i] {
                // A rack-wide switch outage drops every beat on the floor,
                // but the cadence keeps advancing exactly as if it were
                // published — the daemon doesn't know its frames go
                // nowhere, and both clock modes see identical schedules.
                if switch_up {
                    let topic = self.heartbeat_topics[i];
                    self.broker.publish(&topic, Payload::new(1.0, self.now));
                }
                rec.next_heartbeat[i] = self.now
                    + SimDuration::from_secs_f64(
                        rec.config.heartbeat_interval.as_secs_f64() / perf,
                    );
            }
        }
    }

    /// One control-plane decision tick: suspicion, fencing, unfencing and
    /// the thermal watchdog.
    fn control_plane_tick(&mut self) {
        let temps: Vec<Celsius> = (0..self.nodes.len())
            .map(|i| self.thermal.temperature(i))
            .collect();
        let actions = {
            let rec = self.recovery.as_mut().expect("recovery mode");
            rec.control.tick(self.now, &temps)
        };
        for action in actions {
            match action {
                ControlAction::FenceSuspect { node, phi } => {
                    self.events.push(EngineEvent::NodeSuspected {
                        node,
                        at: self.now,
                        phi,
                    });
                    if let Some(rec) = self.recovery.as_mut() {
                        rec.suspicions += 1;
                    }
                    self.fence_node(node);
                }
                ControlAction::FenceHot { node, .. } => {
                    self.fence_node(node);
                }
                ControlAction::Unfence { node } => {
                    self.unfence_node(node);
                }
                ControlAction::ThrottleHot { node, .. } => {
                    if self.nodes[node].cpufreq_mut().step_down() {
                        self.events
                            .push(EngineEvent::WatchdogThrottled { node, at: self.now });
                    }
                }
                ControlAction::RelaxCool { node } => {
                    self.nodes[node].cpufreq_mut().step_up();
                }
                ControlAction::PartitionSuspected { silent } => {
                    self.events.push(EngineEvent::PartitionSuspected {
                        at: self.now,
                        silent,
                    });
                }
                ControlAction::PartitionHealed => {
                    self.events
                        .push(EngineEvent::PartitionHealed { at: self.now });
                }
                ControlAction::PartitionTimedOut => {
                    self.events
                        .push(EngineEvent::PartitionTimedOut { at: self.now });
                }
            }
        }
    }

    /// Records that `node` holds `job_id`'s only (spilled) checkpoint copy
    /// and steers placement away from it until the flush.
    fn mark_spill_holder(
        holders: &mut HashMap<u64, usize>,
        scheduler: &mut Scheduler,
        nodes: &[ComputeNode],
        job_id: u64,
        node: usize,
    ) {
        holders.insert(job_id, node);
        scheduler.set_node_avoided(nodes[node].hostname(), true);
    }

    /// Releases `job_id`'s spill-holder mark (record flushed, dropped, or
    /// job gone); the node returns to normal placement once no other job
    /// spills on it.
    fn release_spill_holder(
        holders: &mut HashMap<u64, usize>,
        scheduler: &mut Scheduler,
        nodes: &[ComputeNode],
        job_id: u64,
    ) {
        if let Some(node) = holders.remove(&job_id) {
            if !holders.values().any(|&n| n == node) {
                scheduler.set_node_avoided(nodes[node].hostname(), false);
            }
        }
    }

    /// Advances every running job's checkpoint state machine: commits
    /// writes whose drain completed, and begins writes whose cadence is
    /// due. An active NFS stall pushes the completion time out, exactly as
    /// it stalls every other filesystem client. A drained write that meets
    /// an *offline export* ([`FaultKind::NfsExportDown`]) either spills to
    /// the job's first allocated node (spill mode), or retries with
    /// exponential backoff until the retry budget runs out and the write
    /// is abandoned.
    fn advance_checkpoints(&mut self) {
        let now = self.now;
        let nfs_stalled_until = self.nfs_stall_until.filter(|&t| now < t);
        let Some(rec) = self.recovery.as_mut() else {
            return;
        };
        let Some(cfg) = rec.config.checkpoint else {
            return;
        };
        let events = &mut self.events;
        let scheduler = &mut self.scheduler;
        let nodes = &self.nodes;
        for job in self.running.values_mut() {
            if job.ckpt.drained_by(now) {
                let progress = job.ckpt.pending();
                let ckpt = JobCheckpoint::new(
                    job.id.0,
                    progress,
                    checkpoint_position(&job.workload, progress),
                    now,
                );
                match rec.store.save_at(now, ckpt) {
                    Ok(_) => {
                        let progress = job.ckpt.commit(now + cfg.interval);
                        rec.checkpoints_written += 1;
                        events.push(EngineEvent::CheckpointWritten {
                            id: job.id,
                            at: now,
                            progress,
                        });
                    }
                    Err(CheckpointError::ExportOffline { .. }) => {
                        if cfg.spill {
                            // Write-behind: buffer on the job's first
                            // allocated node and treat the spilled record
                            // as the restart point — it survives anything
                            // short of that node dying before the flush.
                            let holder = *job.node_indices.first().expect("running job has nodes");
                            rec.store.spill_write(JobCheckpoint::new(
                                job.id.0,
                                progress,
                                checkpoint_position(&job.workload, progress),
                                now,
                            ));
                            Self::mark_spill_holder(
                                &mut rec.spill_holders,
                                scheduler,
                                nodes,
                                job.id.0,
                                holder,
                            );
                            let progress = job.ckpt.commit(now + cfg.interval);
                            events.push(EngineEvent::CheckpointSpilled {
                                id: job.id,
                                at: now,
                                progress,
                            });
                        } else if job.ckpt.retries() >= cfg.max_retries {
                            // Retry budget spent: drop the write, resume
                            // the cadence from the last durable commit.
                            job.ckpt.abandon(now + cfg.interval);
                            events.push(EngineEvent::CheckpointAbandoned {
                                id: job.id,
                                at: now,
                            });
                        } else {
                            let retry_at = now + cfg.retry_delay(job.ckpt.retries());
                            job.ckpt.defer(retry_at);
                            events.push(EngineEvent::CheckpointDeferred {
                                id: job.id,
                                at: now,
                                retry_at,
                                retries: job.ckpt.retries(),
                            });
                        }
                    }
                    Err(other) => panic!("checkpoint save failed: {other}"),
                }
            } else if job.ckpt.should_begin(now)
                && job.progress < 1.0
                && job.node_indices.iter().all(|&i| rec.node_alive[i])
            {
                let bytes = job.mem_per_node * job.node_indices.len() as f64;
                let start = nfs_stalled_until.unwrap_or(now);
                job.ckpt.begin(job.progress, start + cfg.cost.cost(bytes));
            }
        }
    }

    /// The uniform recovery path: clears any thermal trip latch, returns
    /// the node to the scheduler, closes the outage interval.
    fn node_recovered(&mut self, node_index: usize) {
        self.thermal.clear_trip(node_index);
        let hostname = self.nodes[node_index].hostname().to_owned();
        self.scheduler.resume_node(&hostname);
        if let Some(since) = self.node_down_since[node_index].take() {
            self.node_downtime[node_index] += self.now.saturating_since(since);
            self.events.push(EngineEvent::NodeRecovered {
                node: node_index,
                at: self.now,
            });
        }
    }
}

/// The ExaMon-style topic a node's power samples ride on.
fn power_topic_for(hostname: &str) -> Topic {
    Topic::new(
        [
            "org",
            "unibo",
            "cluster",
            "cimone",
            "node",
            hostname,
            "plugin",
            "pwr_pub",
            "chnl",
            "data",
            "total_power",
        ]
        .map(str::to_owned),
    )
}

/// The ExaMon-style topic a node's heartbeats ride on.
fn heartbeat_topic(hostname: &str) -> Topic {
    Topic::new(
        [
            "org",
            "unibo",
            "cluster",
            "cimone",
            "node",
            hostname,
            "plugin",
            "health_pub",
            "chnl",
            "data",
            "heartbeat",
        ]
        .map(str::to_owned),
    )
}

/// Maps a job's progress fraction onto its kernel's natural restart unit.
fn checkpoint_position(workload: &ClusterWorkload, progress: f64) -> CheckpointPosition {
    match workload {
        ClusterWorkload::Hpl(problem) => {
            CheckpointPosition::HplPanel((progress * problem.panels() as f64) as usize)
        }
        ClusterWorkload::QeLax => {
            // The LAX driver's 93 Davidson iterations (paper Table IV).
            CheckpointPosition::LaxSweep((progress * 93.0) as usize)
        }
        ClusterWorkload::StreamDdr { secs } | ClusterWorkload::StreamL2 { secs } => {
            CheckpointPosition::StreamIteration((progress * *secs as f64) as u64)
        }
        ClusterWorkload::Synthetic { .. } => CheckpointPosition::Fraction,
    }
}

/// Maps `mc-node-XX` back to its 0-based index.
fn hostname_index(hostname: &str) -> usize {
    hostname
        .rsplit('-')
        .next()
        .and_then(|n| n.parse::<usize>().ok())
        .map(|n| n - 1)
        .unwrap_or_else(|| panic!("malformed hostname {hostname}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SimEngine {
        SimEngine::new(EngineConfig::default())
    }

    fn synthetic(nodes: usize, secs: u64) -> JobRequest {
        JobRequest {
            name: "test".into(),
            user: "alice".into(),
            nodes,
            workload: ClusterWorkload::Synthetic {
                workload: Workload::Hpl,
                secs,
            },
        }
    }

    #[test]
    fn jobs_run_to_completion_with_energy_accounted() {
        let mut engine = engine();
        let id = engine.submit(synthetic(2, 30)).unwrap();
        assert!(engine.run_until_idle(SimDuration::from_secs(120)));
        let record = &engine.accounting().records()[0];
        assert_eq!(record.job_id, id.0);
        assert_eq!(record.state, JobState::Completed);
        // Two nodes at ~5.9 W for 30 s ≈ 355 J.
        let energy = record.energy.unwrap().as_joules();
        assert!((energy - 356.0).abs() < 30.0, "energy {energy}");
    }

    #[test]
    fn monitoring_pipeline_fills_the_store() {
        let mut engine = engine();
        engine.submit(synthetic(1, 10)).unwrap();
        engine.run_for(SimDuration::from_secs(12));
        let store = engine.store();
        assert!(store.series_count() > 8, "series: {}", store.series_count());
        // pmu_pub sampled at 2 Hz on node 1 while the job ran.
        let series =
            "org/unibo/cluster/cimone/node/mc-node-01/plugin/pmu_pub/chnl/data/core/0/instret";
        let points = store.query(series, SimTime::ZERO, SimTime::from_secs(12));
        assert!(points.len() >= 20, "points: {}", points.len());
        // Counters are cumulative, hence non-decreasing.
        assert!(points.windows(2).all(|w| w[1].1 >= w[0].1));
    }

    #[test]
    fn queued_jobs_start_when_resources_free() {
        let mut engine = engine();
        let a = engine.submit(synthetic(8, 20)).unwrap();
        let b = engine.submit(synthetic(8, 20)).unwrap();
        assert!(engine.run_until_idle(SimDuration::from_secs(200)));
        let job_a = engine.scheduler().job(a).unwrap();
        let job_b = engine.scheduler().job(b).unwrap();
        assert!(job_b.started_at().unwrap() >= job_a.ended_at().unwrap());
    }

    #[test]
    fn hpl_jobs_alternate_compute_and_communication() {
        let mut engine = engine();
        engine
            .submit(JobRequest {
                name: "hpl".into(),
                user: "bench".into(),
                nodes: 4,
                // A small problem so panels cycle quickly.
                workload: ClusterWorkload::Hpl(HplProblem::new(4096, 192)),
            })
            .unwrap();
        let mut saw_comm = false;
        let mut saw_compute = false;
        for _ in 0..400 {
            engine.step();
            for node in engine.nodes().iter().take(4) {
                if node.conditions().busy_cores == 4 {
                    if node.conditions().communicating {
                        saw_comm = true;
                    } else {
                        saw_compute = true;
                    }
                }
            }
        }
        assert!(saw_comm, "never saw a communication phase");
        assert!(saw_compute, "never saw a compute phase");
    }

    #[test]
    fn idle_machine_power_sits_at_the_paper_level() {
        let mut engine = engine();
        engine.run_for(SimDuration::from_secs(30));
        let series =
            "org/unibo/cluster/cimone/node/mc-node-03/plugin/pwr_pub/chnl/data/total_power";
        let mean = engine
            .store()
            .aggregate(
                series,
                SimTime::ZERO,
                SimTime::from_secs(30),
                cimone_monitor::tsdb::Aggregation::Mean,
            )
            .unwrap();
        // Slightly below the 4.81 W steady figure: the silicon is still
        // warming towards its idle operating point, so leakage is low.
        assert!((mean - 4.81).abs() < 0.09, "idle power {mean} W");
    }

    #[test]
    fn monitoring_can_be_disabled() {
        let mut engine = SimEngine::new(EngineConfig {
            monitoring: false,
            ..EngineConfig::default()
        });
        engine.submit(synthetic(1, 5)).unwrap();
        engine.run_for(SimDuration::from_secs(8));
        assert!(engine.store().is_empty());
    }

    #[test]
    fn threaded_stepping_is_bit_identical_to_serial() {
        // The whole parallel contract in one test: a threaded engine must
        // be indistinguishable from a serial one — same telemetry stream
        // (every power/PMU/stats point, bitwise), same events, same clock.
        let run = |threads: usize| {
            let mut engine = SimEngine::new(EngineConfig {
                threads,
                parallel_grain: 1, // force the pool despite only 8 nodes
                ..EngineConfig::default()
            });
            assert_eq!(engine.parallel_engaged(), threads != 1);
            engine.submit(synthetic(8, 40)).unwrap();
            engine.submit(synthetic(3, 15)).unwrap();
            for _ in 0..120 {
                engine.step();
            }
            engine
        };
        let serial = run(1);
        for threads in [2, 4] {
            let threaded = run(threads);
            assert_eq!(serial.now(), threaded.now());
            assert_eq!(serial.events(), threaded.events());
            assert!(
                serial.store() == threaded.store(),
                "telemetry stores diverge at {threads} threads \
                 ({} vs {} points)",
                serial.store().point_count(),
                threaded.store().point_count(),
            );
        }
    }

    #[test]
    fn auto_thread_count_sizes_a_pool_and_still_runs() {
        let mut engine = SimEngine::new(EngineConfig {
            threads: 0, // auto: host-sized pool (CIMONE_THREADS honoured)
            parallel_grain: 1,
            ..EngineConfig::default()
        });
        engine.submit(synthetic(2, 5)).unwrap();
        assert!(engine.run_until_idle(SimDuration::from_secs(60)));
        assert!(engine.store().point_count() > 0);
    }

    #[test]
    fn small_machines_fall_back_to_serial_stepping() {
        // 8 nodes / 4 workers = 2 nodes per worker, below the default
        // grain of 8: the pool must not engage.
        let auto = SimEngine::new(EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        });
        assert!(!auto.parallel_engaged(), "grain must gate the pool");
        let forced = SimEngine::new(EngineConfig {
            threads: 4,
            parallel_grain: 1,
            ..EngineConfig::default()
        });
        assert!(forced.parallel_engaged());
        let serial = SimEngine::new(EngineConfig::default());
        assert!(!serial.parallel_engaged());
    }

    #[test]
    fn jobs_are_killed_at_their_wall_time_limit() {
        let mut engine = SimEngine::new(EngineConfig {
            monitoring: false,
            ..EngineConfig::default()
        });
        // A 100 s workload under a 10 s limit: killed, nodes freed.
        let id = engine
            .submit_with_limit(synthetic(2, 100), SimDuration::from_secs(10))
            .unwrap();
        assert!(engine.run_until_idle(SimDuration::from_secs(60)));
        let job = engine.scheduler().job(id).unwrap();
        assert_eq!(job.state(), JobState::TimedOut);
        let elapsed = job.elapsed().unwrap().as_secs_f64();
        assert!((elapsed - 10.0).abs() <= 1.0, "killed at {elapsed}s");
        assert_eq!(engine.scheduler().partition().idle_count(), 8);
        // The accounting record carries the TIMEOUT state.
        assert_eq!(engine.accounting().records()[0].state, JobState::TimedOut);
    }

    #[test]
    fn governor_throttles_hot_nodes_and_recovers_cool_ones() {
        use crate::dpm::ThermalGovernor;
        let mut engine = SimEngine::new(EngineConfig {
            airflow: crate::thermal::AirflowConfig::LidOnTightStack,
            dt: SimDuration::from_secs(2),
            monitoring: false,
            governor: Some(ThermalGovernor::fu740_default()),
            ..EngineConfig::default()
        });
        engine.submit(synthetic(8, 3000)).unwrap();
        engine.run_for(SimDuration::from_secs(2000));
        // Node 7 (worst airflow) must have been throttled below nominal...
        assert!(
            !engine.node_cpufreq(6).is_nominal(),
            "node 7 should throttle"
        );
        // ...and never tripped.
        assert!(!engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::NodeTripped { .. })));
        // An edge node stays at (or recovers to) nominal.
        assert!(
            engine.node_cpufreq(0).is_nominal(),
            "edge node should stay nominal"
        );
    }

    #[test]
    fn hostname_index_round_trips() {
        assert_eq!(hostname_index("mc-node-01"), 0);
        assert_eq!(hostname_index("mc-node-08"), 7);
    }

    fn power_series(node: usize) -> String {
        format!(
            "org/unibo/cluster/cimone/node/mc-node-0{}/plugin/pwr_pub/chnl/data/total_power",
            node + 1
        )
    }

    #[test]
    fn planned_crash_and_recovery_drive_the_outage_clock() {
        let mut engine = SimEngine::new(EngineConfig {
            monitoring: false,
            dt: SimDuration::from_secs(1),
            ..EngineConfig::default()
        })
        .with_fault_plan(
            FaultPlan::new()
                .with(SimTime::from_secs(10), FaultKind::NodeCrash { node: 3 })
                .with(SimTime::from_secs(70), FaultKind::NodeRecover { node: 3 }),
        );
        engine.run_for(SimDuration::from_secs(100));
        assert_eq!(engine.failure_count(), 1);
        assert_eq!(engine.node_downtime(3), SimDuration::from_secs(60));
        assert_eq!(engine.total_downtime(), SimDuration::from_secs(60));
        assert!(engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::NodeRecovered { node: 3, .. })));
        assert_eq!(engine.scheduler().partition().in_service_count(), 8);
    }

    #[test]
    fn sensor_dropout_silences_one_node_and_stuck_at_freezes_it() {
        let mut engine = SimEngine::new(EngineConfig {
            dt: SimDuration::from_secs(1),
            ..EngineConfig::default()
        })
        .with_fault_plan(
            FaultPlan::new()
                .with(
                    SimTime::from_secs(10),
                    FaultKind::SensorDropout {
                        node: 0,
                        span: SimDuration::from_secs(20),
                    },
                )
                .with(
                    SimTime::from_secs(10),
                    FaultKind::SensorStuck {
                        node: 1,
                        span: SimDuration::from_secs(20),
                    },
                ),
        );
        engine.run_for(SimDuration::from_secs(40));
        // Node 1 published nothing inside the dropout window...
        let dropped = engine.store().query(
            &power_series(0),
            SimTime::from_secs(10),
            SimTime::from_secs(30),
        );
        assert!(dropped.is_empty(), "published {} samples", dropped.len());
        // ...while a healthy node kept its cadence.
        let healthy = engine.store().query(
            &power_series(2),
            SimTime::from_secs(10),
            SimTime::from_secs(30),
        );
        assert_eq!(healthy.len(), 20);
        // The stuck sensor kept publishing one frozen value.
        let stuck = engine.store().query(
            &power_series(1),
            SimTime::from_secs(10),
            SimTime::from_secs(30),
        );
        assert_eq!(stuck.len(), 20);
        assert!(
            stuck.windows(2).all(|w| w[0].1 == w[1].1),
            "value must freeze"
        );
        // Both recover after the span.
        let after = engine.store().query(
            &power_series(0),
            SimTime::from_secs(30),
            SimTime::from_secs(40),
        );
        assert_eq!(after.len(), 10);
    }

    #[test]
    fn subscriber_disconnect_loses_the_window_but_ingestion_recovers() {
        let mut engine = SimEngine::new(EngineConfig {
            dt: SimDuration::from_secs(1),
            ..EngineConfig::default()
        })
        .with_fault_plan(FaultPlan::new().with(
            SimTime::from_secs(10),
            FaultKind::SubscriberDisconnect {
                span: SimDuration::from_secs(15),
            },
        ));
        engine.run_for(SimDuration::from_secs(40));
        let series = power_series(4);
        let during = engine
            .store()
            .query(&series, SimTime::from_secs(10), SimTime::from_secs(25));
        assert!(during.is_empty(), "disconnected window must be lost");
        let after = engine
            .store()
            .query(&series, SimTime::from_secs(25), SimTime::from_secs(40));
        assert_eq!(after.len(), 15, "ingestion must recover");
    }

    #[test]
    fn nfs_stall_freezes_job_progress() {
        let mut engine = SimEngine::new(EngineConfig {
            monitoring: false,
            dt: SimDuration::from_secs(1),
            ..EngineConfig::default()
        })
        .with_fault_plan(FaultPlan::new().with(
            SimTime::from_secs(5),
            FaultKind::NfsStall {
                span: SimDuration::from_secs(30),
            },
        ));
        let id = engine.submit(synthetic(1, 20)).unwrap();
        // 20 s of work + 30 s stalled: still running at t=45, done by t=60.
        engine.run_for(SimDuration::from_secs(45));
        assert_eq!(
            engine.scheduler().job(id).unwrap().state(),
            JobState::Running
        );
        assert!(engine.run_until_idle(SimDuration::from_secs(30)));
        let elapsed = engine.scheduler().job(id).unwrap().elapsed().unwrap();
        assert!(elapsed >= SimDuration::from_secs(49), "elapsed {elapsed}");
    }

    #[test]
    fn partition_stalls_only_jobs_spanning_the_cut() {
        let mut engine = SimEngine::new(EngineConfig {
            monitoring: false,
            dt: SimDuration::from_secs(1),
            ..EngineConfig::default()
        })
        .with_fault_plan(FaultPlan::new().with(
            SimTime::from_secs(5),
            FaultKind::Partition {
                a: 0,
                b: 1,
                span: SimDuration::from_secs(100),
            },
        ));
        // First submission takes nodes 1+2 (the cut), second takes 3+4.
        let cut = engine.submit(synthetic(2, 20)).unwrap();
        let clear = engine.submit(synthetic(2, 20)).unwrap();
        engine.run_for(SimDuration::from_secs(40));
        assert_eq!(
            engine.scheduler().job(clear).unwrap().state(),
            JobState::Completed
        );
        assert_eq!(
            engine.scheduler().job(cut).unwrap().state(),
            JobState::Running
        );
    }

    #[test]
    fn spurious_trip_requeues_like_a_real_one() {
        let mut engine = SimEngine::new(EngineConfig {
            monitoring: false,
            dt: SimDuration::from_secs(1),
            ..EngineConfig::default()
        })
        .with_fault_plan(FaultPlan::new().with(
            SimTime::from_secs(5),
            FaultKind::SpuriousThermalTrip { node: 0 },
        ));
        let id = engine.submit(synthetic(8, 30)).unwrap();
        engine.run_for(SimDuration::from_secs(10));
        assert!(engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::NodeTripped { node: 0, .. })));
        assert!(engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::JobRequeued { id: v, .. } if *v == id)));
        assert_eq!(engine.failure_count(), 1);
    }

    #[test]
    fn identical_plans_and_seeds_replay_identical_event_streams() {
        let campaign = || {
            let plan = FaultPlan::random_crashes(
                11,
                8,
                SimDuration::from_secs(600),
                30.0,
                SimDuration::from_secs(45),
            );
            let mut engine = SimEngine::new(EngineConfig {
                monitoring: false,
                dt: SimDuration::from_secs(1),
                ..EngineConfig::default()
            })
            .with_fault_plan(plan);
            engine.submit(synthetic(4, 120)).unwrap();
            engine.submit(synthetic(4, 120)).unwrap();
            engine.run_for(SimDuration::from_secs(600));
            (engine.events().to_vec(), engine.total_downtime())
        };
        let (events_a, down_a) = campaign();
        let (events_b, down_b) = campaign();
        assert!(!events_a.is_empty());
        assert_eq!(events_a, events_b);
        assert_eq!(down_a, down_b);
    }

    #[test]
    fn psu_failure_downs_both_blade_nodes_and_requeues_their_job() {
        let mut engine = SimEngine::new(EngineConfig {
            monitoring: false,
            dt: SimDuration::from_secs(1),
            ..EngineConfig::default()
        })
        .with_fault_plan(
            FaultPlan::new().with(SimTime::from_secs(10), FaultKind::PsuFailure { blade: 0 }),
        );
        // Blade-aware placement packs the 2-node job onto blade 0.
        let id = engine.submit(synthetic(2, 60)).unwrap();
        assert!(engine.run_until_idle(SimDuration::from_secs(600)));
        assert!(engine.node_downtime(0) > SimDuration::ZERO);
        assert!(engine.node_downtime(1) > SimDuration::ZERO);
        assert_eq!(engine.failure_count(), 2, "one fault, two nodes lost");
        assert!(engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::JobRequeued { id: v, .. } if *v == id)));
        // The requeue lands on a healthy blade and finishes.
        let record = &engine.accounting().records()[0];
        assert_eq!(record.state, JobState::Completed);
    }

    #[test]
    fn fan_failure_degrades_its_blade_and_shadows_the_one_above() {
        let mut engine = SimEngine::new(EngineConfig {
            monitoring: false,
            dt: SimDuration::from_secs(1),
            ..EngineConfig::default()
        })
        .with_fault_plan(FaultPlan::new().with(
            SimTime::from_secs(5),
            FaultKind::FanFailure {
                blade: 1,
                span: SimDuration::from_secs(60),
            },
        ));
        engine.run_for(SimDuration::from_secs(10));
        use crate::thermal::AirflowDegradation as A;
        let states: Vec<A> = (0..8)
            .map(|i| engine.thermal().airflow_degradation(i))
            .collect();
        assert_eq!(
            states,
            vec![
                A::None,
                A::None,
                A::Direct,
                A::Direct,
                A::Shadow,
                A::Shadow,
                A::None,
                A::None
            ],
            "blade 1's nodes starve, blade 2 sits in its exhaust shadow"
        );
        // The fan comes back: the enclosure returns to clean airflow.
        engine.run_for(SimDuration::from_secs(60));
        assert!((0..8).all(|i| engine.thermal().airflow_degradation(i) == A::None));
    }

    #[test]
    fn governed_brownout_caps_drains_nothing_and_releases() {
        let mut engine = SimEngine::new(EngineConfig {
            monitoring: false,
            dt: SimDuration::from_secs(1),
            ..EngineConfig::default()
        })
        .with_fault_plan(FaultPlan::new().with(
            SimTime::from_secs(10),
            FaultKind::RailBrownout {
                blade: 0,
                budget_frac: 0.75,
                span: SimDuration::from_secs(120),
            },
        ));
        let id = engine.submit(synthetic(2, 300)).unwrap();
        assert!(engine.run_until_idle(SimDuration::from_secs(3600)));
        let budget = 0.75 * crate::blade::RAIL_RATED_WATTS;
        assert!(engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::BladeCapped { blade: 0, .. })));
        assert!(engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::BladeReleased { blade: 0, .. })));
        let peak = engine.brownout_peak_power(0);
        assert!(
            peak > 0.0 && peak <= budget,
            "peak {peak} W within the {budget} W budget"
        );
        // The capped job was slowed, never evicted.
        assert!(!engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::JobRequeued { .. })));
        assert_eq!(
            engine.scheduler().job(id).unwrap().state(),
            JobState::Completed
        );
        // Once released, the blade takes work again.
        assert!(engine.scheduler().degraded_blades().is_empty());
    }

    #[test]
    fn crash_only_brownout_downs_the_blade_until_the_rail_recovers() {
        let mut engine = SimEngine::new(EngineConfig {
            monitoring: false,
            dt: SimDuration::from_secs(1),
            power_cap: None,
            ..EngineConfig::default()
        })
        .with_fault_plan(FaultPlan::new().with(
            SimTime::from_secs(10),
            FaultKind::RailBrownout {
                blade: 0,
                budget_frac: 0.75,
                span: SimDuration::from_secs(60),
            },
        ));
        let id = engine.submit(synthetic(2, 30)).unwrap();
        assert!(engine.run_until_idle(SimDuration::from_secs(600)));
        // Run past the rail recovery so the outage closes.
        engine.run_for(SimDuration::from_secs(120));
        assert!(engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::JobRequeued { id: v, .. } if *v == id)));
        assert_eq!(engine.failure_count(), 2, "both boards undervolt and crash");
        // Downtime is bounded by the brownout span: recovery is automatic.
        for node in 0..2 {
            let down = engine.node_downtime(node).as_secs_f64();
            assert!(
                (59.0..=62.0).contains(&down),
                "node {node} down {down} s for a 60 s brownout"
            );
        }
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn invalid_fault_plans_are_rejected_up_front() {
        let mut engine = SimEngine::new(EngineConfig::default());
        engine.set_fault_plan(
            FaultPlan::new().with(SimTime::from_secs(1), FaultKind::PsuFailure { blade: 9 }),
        );
    }

    #[test]
    fn capped_nodes_heartbeat_slower_without_tripping_a_cap_aware_detector() {
        // A deep brownout clamps blade 0 to the floor OPP: its health
        // daemons run at a third of nominal speed and heartbeat late. The
        // cap-aware detector is told the expected slowdown and stays
        // quiet; the legacy detector reads the silence as death and
        // fences healthy nodes (the false-suspicion regression).
        let run = |cap_aware: bool| {
            let mut recovery = RecoveryConfig::detection_only();
            recovery.cap_aware_suspicion = cap_aware;
            let mut engine = SimEngine::new(EngineConfig {
                monitoring: false,
                dt: SimDuration::from_secs(1),
                recovery: Some(recovery),
                ..EngineConfig::default()
            })
            .with_fault_plan(FaultPlan::new().with(
                SimTime::from_secs(30),
                FaultKind::RailBrownout {
                    blade: 0,
                    budget_frac: 0.58,
                    span: SimDuration::from_secs(300),
                },
            ));
            engine.submit(synthetic(8, 500)).unwrap();
            engine.run_for(SimDuration::from_secs(400));
            engine
        };
        let aware = run(true);
        assert!(
            aware.events().iter().any(
                |e| matches!(e, EngineEvent::BladeCapped { blade: 0, ceiling, .. } if *ceiling == 0)
            ),
            "the 58% budget must clamp blade 0 to the floor OPP"
        );
        assert_eq!(aware.suspicion_count(), 0, "capped is not dead");
        assert_eq!(aware.fence_count(), 0);
        let legacy = run(false);
        assert!(
            legacy.suspicion_count() > 0,
            "without cap awareness the slow heartbeats read as death"
        );
    }
}
