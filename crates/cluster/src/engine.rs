//! The cluster simulation engine: scheduler-driven jobs running on the
//! eight-node machine, with power, thermal and monitoring all advancing on
//! one deterministic clock.
//!
//! Every experiment in the paper runs through this loop: submit a job,
//! step the engine, read the results out of the scheduler's accounting and
//! the ExaMon store.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use cimone_monitor::broker::Broker;
use cimone_monitor::collector::Collector;
use cimone_monitor::payload::Payload;
use cimone_monitor::plugins::{PluginRunner, PmuPlugin, StatsPlugin};
use cimone_monitor::topic::{ExamonSchema, Topic};
use cimone_monitor::tsdb::TimeSeriesStore;
use cimone_sched::accounting::{AccountingLog, JobRecord};
use cimone_sched::job::{JobId, JobSpec, JobState};
use cimone_sched::partition::Partition;
use cimone_sched::scheduler::{SchedError, Scheduler};
use cimone_soc::power::PowerModel;
use cimone_soc::units::{Celsius, Energy, Power, SimDuration, SimTime};
use cimone_soc::workload::Workload;

use crate::dpm::{GovernorAction, ThermalGovernor};
use crate::node::{ComputeNode, NodeConditions};
use crate::perf::{HplModel, HplProblem, LaxModel};
use crate::thermal::{AirflowConfig, ThermalModel};

/// What a job runs on its allocated nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterWorkload {
    /// Distributed HPL.
    Hpl(HplProblem),
    /// The QE LAX driver (single node).
    QeLax,
    /// STREAM with the Table V DDR-resident working set, for `secs`.
    StreamDdr {
        /// Benchmark duration.
        secs: u64,
    },
    /// STREAM with the L2-resident working set, for `secs`.
    StreamL2 {
        /// Benchmark duration.
        secs: u64,
    },
    /// Any steady workload class for a fixed duration.
    Synthetic {
        /// The workload class.
        workload: Workload,
        /// Duration, seconds.
        secs: u64,
    },
}

/// A job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Job name.
    pub name: String,
    /// User.
    pub user: String,
    /// Nodes requested.
    pub nodes: usize,
    /// The workload.
    pub workload: ClusterWorkload,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Enclosure airflow.
    pub airflow: AirflowConfig,
    /// Simulation step.
    pub dt: SimDuration,
    /// RNG seed (drives run-to-run noise).
    pub seed: u64,
    /// Whether the ExaMon pipeline runs (costs simulation time).
    pub monitoring: bool,
    /// Optional per-node thermal DVFS governor (the paper's future-work
    /// item: dynamic power and thermal management).
    pub governor: Option<ThermalGovernor>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            airflow: AirflowConfig::LidOffSpaced,
            dt: SimDuration::from_millis(500),
            seed: 2022,
            monitoring: true,
            governor: None,
        }
    }
}

/// Notable events the engine emits (for tests and reports).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// A job started on the listed node indices.
    JobStarted {
        /// The job.
        id: JobId,
        /// When.
        at: SimTime,
        /// Allocated node indices.
        nodes: Vec<usize>,
    },
    /// A job reached its natural end.
    JobCompleted {
        /// The job.
        id: JobId,
        /// When.
        at: SimTime,
    },
    /// A node crossed the 107 °C trip point and shut down.
    NodeTripped {
        /// Node index.
        node: usize,
        /// When.
        at: SimTime,
        /// Temperature at the trip.
        temperature: Celsius,
    },
    /// A job lost its allocation to a trip and went back to the queue.
    JobRequeued {
        /// The job.
        id: JobId,
        /// When.
        at: SimTime,
    },
}

#[derive(Debug, Clone)]
struct RunningJob {
    id: JobId,
    workload: ClusterWorkload,
    node_indices: Vec<usize>,
    started: SimTime,
    duration: SimDuration,
    /// Fraction of the job's work completed (advances slower when any of
    /// its nodes is thermally throttled below the nominal clock).
    progress: f64,
    /// HPL communication phase structure.
    comm_fraction: f64,
    panel_cycle: SimDuration,
    mem_per_node: f64,
    energy: Energy,
}

/// The Monte Cimone simulation engine.
///
/// # Examples
///
/// ```
/// use cimone_cluster::engine::{ClusterWorkload, EngineConfig, JobRequest, SimEngine};
/// use cimone_soc::units::SimDuration;
/// use cimone_soc::workload::Workload;
///
/// let mut engine = SimEngine::new(EngineConfig::default());
/// engine.submit(JobRequest {
///     name: "smoke".into(),
///     user: "ci".into(),
///     nodes: 1,
///     workload: ClusterWorkload::Synthetic { workload: Workload::Hpl, secs: 10 },
/// })?;
/// engine.run_for(SimDuration::from_secs(20));
/// assert_eq!(engine.accounting().len(), 1);
/// # Ok::<(), cimone_sched::scheduler::SchedError>(())
/// ```
#[derive(Debug)]
pub struct SimEngine {
    config: EngineConfig,
    nodes: Vec<ComputeNode>,
    thermal: ThermalModel,
    power: PowerModel,
    scheduler: Scheduler,
    running: HashMap<JobId, RunningJob>,
    workloads: HashMap<JobId, ClusterWorkload>,
    accounting: AccountingLog,
    broker: Broker,
    collector: Collector,
    store: TimeSeriesStore,
    pmu: Vec<PluginRunner<PmuPlugin>>,
    stats: Vec<PluginRunner<StatsPlugin>>,
    schema: ExamonSchema,
    events: Vec<EngineEvent>,
    now: SimTime,
    rng: StdRng,
}

impl SimEngine {
    /// Builds the engine over the standard 8-node machine.
    pub fn new(config: EngineConfig) -> Self {
        let nodes: Vec<ComputeNode> = (0..8).map(ComputeNode::new).collect();
        let schema = ExamonSchema::monte_cimone();
        let broker = Broker::new();
        let collector = Collector::attach(&broker, "#".parse().expect("valid filter"));
        // The engine's power samples already include temperature-dependent
        // leakage, so the thermal model's own feedback term is disabled to
        // avoid double-counting the runaway loop.
        let thermal = ThermalModel::monte_cimone(config.airflow).with_leakage_feedback(0.0);
        // Thermal leakage feedback participates in the runaway loop. The
        // reference is the idle steady-state silicon temperature, so the
        // Table VI calibration holds at the machine's normal operating
        // point.
        let power = PowerModel::u740().with_thermal_leakage(0.012, Celsius::new(36.5));
        let pmu = (0..nodes.len())
            .map(|_| PluginRunner::new(PmuPlugin::new(schema.clone())))
            .collect();
        let stats = (0..nodes.len())
            .map(|_| PluginRunner::new(StatsPlugin::new(schema.clone())))
            .collect();
        SimEngine {
            config,
            nodes,
            thermal,
            power,
            scheduler: Scheduler::new(Partition::monte_cimone()),
            running: HashMap::new(),
            workloads: HashMap::new(),
            accounting: AccountingLog::new(),
            broker,
            collector,
            store: TimeSeriesStore::new(),
            pmu,
            stats,
            schema,
            events: Vec::new(),
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    /// Replaces the scheduling policy (must be called before any
    /// submission).
    ///
    /// # Panics
    ///
    /// Panics if jobs were already submitted.
    pub fn with_policy(mut self, policy: cimone_sched::scheduler::SchedulingPolicy) -> Self {
        assert!(
            self.workloads.is_empty(),
            "set the policy before submitting jobs"
        );
        self.scheduler = Scheduler::with_policy(Partition::monte_cimone(), policy);
        self
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The ExaMon time-series store.
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// The topic schema in use.
    pub fn schema(&self) -> &ExamonSchema {
        &self.schema
    }

    /// The scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Completed-job accounting.
    pub fn accounting(&self) -> &AccountingLog {
        &self.accounting
    }

    /// The compute nodes.
    pub fn nodes(&self) -> &[ComputeNode] {
        &self.nodes
    }

    /// The thermal model.
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// Events so far.
    pub fn events(&self) -> &[EngineEvent] {
        &self.events
    }

    /// Switches the enclosure airflow (the paper's mitigation) in place.
    pub fn set_airflow(&mut self, airflow: AirflowConfig) {
        self.config.airflow = airflow;
        self.thermal.set_config(airflow);
    }

    /// The DVFS state of one node's core complex.
    pub fn node_cpufreq(&self, node_index: usize) -> &cimone_soc::cpufreq::CpuFreq {
        self.nodes[node_index].cpufreq()
    }

    /// Operator-style failure injection: takes a node out of service as a
    /// hardware fault would, requeueing any job running on it. Returns the
    /// requeued job, if any.
    pub fn inject_node_failure(&mut self, node_index: usize) -> Option<JobId> {
        let hostname = self.nodes[node_index].hostname().to_owned();
        let victim = self.scheduler.fail_node(&hostname, self.now);
        if let Some(id) = victim {
            self.running.remove(&id);
            self.events.push(EngineEvent::JobRequeued { id, at: self.now });
        }
        victim
    }

    /// Returns a tripped node to service after it cooled down.
    pub fn resume_node(&mut self, node_index: usize) {
        self.thermal.clear_trip(node_index);
        let hostname = self.nodes[node_index].hostname().to_owned();
        self.scheduler.resume_node(&hostname);
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// Propagates scheduler rejections (e.g. more nodes than the machine).
    pub fn submit(&mut self, request: JobRequest) -> Result<JobId, SchedError> {
        let limit = self.estimate_duration(&request.workload, request.nodes) * 3;
        let spec = JobSpec::new(
            request.name,
            request.user,
            request.nodes,
            SimDuration::from_secs_f64(limit.as_secs_f64().max(60.0)),
        );
        let id = self.scheduler.submit(spec, self.now)?;
        self.workloads.insert(id, request.workload);
        Ok(id)
    }

    /// Submits a job with an explicit wall-time limit instead of the
    /// engine's 3×-estimate default (`sbatch --time`). The engine kills
    /// the job with [`JobState::TimedOut`] when the limit expires.
    ///
    /// # Errors
    ///
    /// Propagates scheduler rejections.
    pub fn submit_with_limit(
        &mut self,
        request: JobRequest,
        time_limit: SimDuration,
    ) -> Result<JobId, SchedError> {
        let spec = JobSpec::new(request.name, request.user, request.nodes, time_limit);
        let id = self.scheduler.submit(spec, self.now)?;
        self.workloads.insert(id, request.workload);
        Ok(id)
    }

    fn estimate_duration(&self, workload: &ClusterWorkload, nodes: usize) -> SimDuration {
        let secs = match workload {
            ClusterWorkload::Hpl(problem) => HplModel::monte_cimone(*problem).run_time(nodes),
            ClusterWorkload::QeLax => LaxModel::paper().run_time(),
            ClusterWorkload::StreamDdr { secs } | ClusterWorkload::StreamL2 { secs } => {
                *secs as f64
            }
            ClusterWorkload::Synthetic { secs, .. } => *secs as f64,
        };
        SimDuration::from_secs_f64(secs)
    }

    /// Advances one step.
    pub fn step(&mut self) {
        let dt = self.config.dt;

        // 1. Start whatever the scheduler releases.
        for id in self.scheduler.schedule(self.now) {
            self.start_job(id);
        }

        // 2. Advance job progress (gated by the slowest allocated node's
        //    DVFS state — HPL is bulk-synchronous) and complete finished
        //    jobs.
        let speeds: Vec<f64> = self
            .nodes
            .iter()
            .map(|n| n.cpufreq().performance_scale())
            .collect();
        for job in self.running.values_mut() {
            let speed = job
                .node_indices
                .iter()
                .map(|&i| speeds[i])
                .fold(1.0f64, f64::min);
            job.progress += dt.as_secs_f64() / job.duration.as_secs_f64() * speed;
        }
        let finished: Vec<JobId> = self
            .running
            .values()
            .filter(|job| job.progress >= 1.0)
            .map(|job| job.id)
            .collect();
        for id in finished {
            self.finish_job(id, JobState::Completed);
        }
        // Wall-time enforcement: Slurm kills jobs at their limit.
        let timed_out: Vec<JobId> = self
            .running
            .values()
            .filter(|job| {
                let limit = self
                    .scheduler
                    .job(job.id)
                    .expect("running job known")
                    .spec()
                    .time_limit;
                self.now.saturating_since(job.started) >= limit
            })
            .map(|job| job.id)
            .collect();
        for id in timed_out {
            self.finish_job(id, JobState::TimedOut);
        }
        self.refresh_conditions();

        // 3. Advance node execution.
        for node in &mut self.nodes {
            node.advance(dt);
        }

        // 4. Power sampling, energy accounting, publication.
        let mut node_power = Vec::with_capacity(self.nodes.len());
        for i in 0..self.nodes.len() {
            let workload = self.nodes[i].effective_power_workload();
            let temp = self.thermal.temperature(i);
            let scale = self.nodes[i].cpufreq().scale();
            let sample = self.power.sample_all_dvfs(workload, temp, scale, &mut self.rng);
            let total = sample.total();
            node_power.push(total);
            if self.config.monitoring {
                let topic = self.power_topic(i);
                self.broker
                    .publish(&topic, Payload::new(total.as_watts(), self.now));
            }
        }
        for job in self.running.values_mut() {
            let p: Power = job.node_indices.iter().map(|&i| node_power[i]).sum();
            job.energy += p.energy_over(dt);
        }

        // 5. Thermal step and trip handling.
        let tripped = self.thermal.step(&node_power, dt);
        for node_index in tripped {
            self.handle_trip(node_index);
        }
        for i in 0..self.nodes.len() {
            let (cpu, mb, nvme) = (
                self.thermal.temperature(i),
                self.thermal.mb_temperature(i),
                self.thermal.nvme_temperature(i),
            );
            self.nodes[i].set_temperatures(cpu, mb, nvme);
        }

        // 5b. The thermal governor, when enabled, throttles hot nodes and
        //     recovers cool ones.
        if let Some(governor) = self.config.governor {
            for i in 0..self.nodes.len() {
                match governor.decide(self.thermal.temperature(i)) {
                    GovernorAction::StepDown => {
                        self.nodes[i].cpufreq_mut().step_down();
                    }
                    GovernorAction::StepUp => {
                        self.nodes[i].cpufreq_mut().step_up();
                    }
                    GovernorAction::Hold => {}
                }
            }
        }

        // 6. Monitoring plugins and ingestion.
        if self.config.monitoring {
            for i in 0..self.nodes.len() {
                let snapshot = self.nodes[i].snapshot(self.now);
                self.pmu[i].maybe_sample(self.now, &snapshot, &self.broker);
                self.stats[i].maybe_sample(self.now, &snapshot, &self.broker);
            }
            self.collector.pump(&mut self.store);
        }

        self.now += dt;
    }

    /// Runs for a span of simulated time.
    pub fn run_for(&mut self, span: SimDuration) {
        let end = self.now + span;
        while self.now < end {
            self.step();
        }
    }

    /// Runs until no job is pending or running, up to `max`. Returns
    /// whether the machine drained.
    pub fn run_until_idle(&mut self, max: SimDuration) -> bool {
        let end = self.now + max;
        while self.now < end {
            if self.running.is_empty() && self.scheduler.pending().is_empty() {
                return true;
            }
            self.step();
        }
        self.running.is_empty() && self.scheduler.pending().is_empty()
    }

    fn power_topic(&self, node_index: usize) -> Topic {
        Topic::new(
            [
                "org",
                "unibo",
                "cluster",
                "cimone",
                "node",
                self.nodes[node_index].hostname(),
                "plugin",
                "pwr_pub",
                "chnl",
                "data",
                "total_power",
            ]
            .map(str::to_owned),
        )
    }

    fn start_job(&mut self, id: JobId) {
        let workload = self.workloads[&id];
        let job = self.scheduler.job(id).expect("started job exists");
        let node_indices: Vec<usize> = job
            .allocated_nodes()
            .iter()
            .map(|h| hostname_index(h))
            .collect();
        let nodes = node_indices.len();

        let (duration, comm_fraction, panel_cycle, mem_per_node) = match workload {
            ClusterWorkload::Hpl(problem) => {
                let model = HplModel::monte_cimone(problem);
                let sample = model.simulate_run(nodes, &mut self.rng);
                let duration = SimDuration::from_secs_f64(sample.seconds);
                let cycle = duration / problem.panels().max(1) as u64;
                let mem = (problem.n * problem.n * 8) as f64 / nodes as f64;
                (duration, model.comm_fraction(nodes), cycle, mem)
            }
            ClusterWorkload::QeLax => {
                let model = LaxModel::paper();
                let (secs, _) = model.simulate_run(&mut self.rng);
                (
                    SimDuration::from_secs_f64(secs),
                    0.05,
                    SimDuration::from_secs(1),
                    (model.matrix_n * model.matrix_n * 8 * 4) as f64,
                )
            }
            ClusterWorkload::StreamDdr { secs } | ClusterWorkload::StreamL2 { secs } => (
                SimDuration::from_secs(secs),
                0.0,
                SimDuration::from_secs(1),
                2.0e9,
            ),
            ClusterWorkload::Synthetic { secs, .. } => (
                SimDuration::from_secs(secs),
                0.0,
                SimDuration::from_secs(1),
                1.0e9,
            ),
        };

        self.events.push(EngineEvent::JobStarted {
            id,
            at: self.now,
            nodes: node_indices.clone(),
        });
        self.running.insert(
            id,
            RunningJob {
                id,
                workload,
                node_indices,
                started: self.now,
                duration,
                progress: 0.0,
                comm_fraction,
                panel_cycle: if panel_cycle.is_zero() {
                    SimDuration::from_secs(1)
                } else {
                    panel_cycle
                },
                mem_per_node,
                energy: Energy::ZERO,
            },
        );
    }

    /// Re-derives every node's conditions from the running-job set.
    fn refresh_conditions(&mut self) {
        let mut conditions: Vec<NodeConditions> = vec![NodeConditions::default(); self.nodes.len()];
        for job in self.running.values() {
            let elapsed = self.now.saturating_since(job.started);
            let workload_class = match job.workload {
                ClusterWorkload::Hpl(_) => Workload::Hpl,
                ClusterWorkload::QeLax => Workload::QeLax,
                ClusterWorkload::StreamDdr { .. } => Workload::StreamDdr,
                ClusterWorkload::StreamL2 { .. } => Workload::StreamL2,
                ClusterWorkload::Synthetic { workload, .. } => workload,
            };
            // Communication burst at the head of each panel cycle.
            let in_cycle = elapsed.as_micros() % job.panel_cycle.as_micros().max(1);
            let communicating = job.node_indices.len() > 1
                && (in_cycle as f64)
                    < job.comm_fraction * job.panel_cycle.as_micros() as f64;
            let net = if communicating { 60.0e6 } else { 0.2e6 };
            for &i in &job.node_indices {
                conditions[i] = NodeConditions {
                    workload: workload_class,
                    busy_cores: 4,
                    communicating,
                    net_recv: net,
                    net_send: net,
                    mem_used: job.mem_per_node,
                };
            }
        }
        for (node, cond) in self.nodes.iter_mut().zip(conditions) {
            node.set_conditions(cond);
        }
    }

    fn finish_job(&mut self, id: JobId, state: JobState) {
        let job = self.running.remove(&id).expect("finishing job is running");
        self.scheduler
            .complete(id, self.now, state)
            .expect("running job completes");
        if let Some(record) = JobRecord::from_job(self.scheduler.job(id).expect("job exists")) {
            self.accounting.record(record.with_energy(job.energy));
        }
        self.events.push(EngineEvent::JobCompleted { id, at: self.now });
    }

    fn handle_trip(&mut self, node_index: usize) {
        let temperature = self.thermal.temperature(node_index);
        self.events.push(EngineEvent::NodeTripped {
            node: node_index,
            at: self.now,
            temperature,
        });
        let hostname = self.nodes[node_index].hostname().to_owned();
        if let Some(victim) = self.scheduler.fail_node(&hostname, self.now) {
            self.running.remove(&victim);
            self.events.push(EngineEvent::JobRequeued {
                id: victim,
                at: self.now,
            });
        }
    }
}

/// Maps `mc-node-XX` back to its 0-based index.
fn hostname_index(hostname: &str) -> usize {
    hostname
        .rsplit('-')
        .next()
        .and_then(|n| n.parse::<usize>().ok())
        .map(|n| n - 1)
        .unwrap_or_else(|| panic!("malformed hostname {hostname}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> SimEngine {
        SimEngine::new(EngineConfig::default())
    }

    fn synthetic(nodes: usize, secs: u64) -> JobRequest {
        JobRequest {
            name: "test".into(),
            user: "alice".into(),
            nodes,
            workload: ClusterWorkload::Synthetic {
                workload: Workload::Hpl,
                secs,
            },
        }
    }

    #[test]
    fn jobs_run_to_completion_with_energy_accounted() {
        let mut engine = engine();
        let id = engine.submit(synthetic(2, 30)).unwrap();
        assert!(engine.run_until_idle(SimDuration::from_secs(120)));
        let record = &engine.accounting().records()[0];
        assert_eq!(record.job_id, id.0);
        assert_eq!(record.state, JobState::Completed);
        // Two nodes at ~5.9 W for 30 s ≈ 355 J.
        let energy = record.energy.unwrap().as_joules();
        assert!((energy - 356.0).abs() < 30.0, "energy {energy}");
    }

    #[test]
    fn monitoring_pipeline_fills_the_store() {
        let mut engine = engine();
        engine.submit(synthetic(1, 10)).unwrap();
        engine.run_for(SimDuration::from_secs(12));
        let store = engine.store();
        assert!(store.series_count() > 8, "series: {}", store.series_count());
        // pmu_pub sampled at 2 Hz on node 1 while the job ran.
        let series =
            "org/unibo/cluster/cimone/node/mc-node-01/plugin/pmu_pub/chnl/data/core/0/instret";
        let points = store.query(series, SimTime::ZERO, SimTime::from_secs(12));
        assert!(points.len() >= 20, "points: {}", points.len());
        // Counters are cumulative, hence non-decreasing.
        assert!(points.windows(2).all(|w| w[1].1 >= w[0].1));
    }

    #[test]
    fn queued_jobs_start_when_resources_free() {
        let mut engine = engine();
        let a = engine.submit(synthetic(8, 20)).unwrap();
        let b = engine.submit(synthetic(8, 20)).unwrap();
        assert!(engine.run_until_idle(SimDuration::from_secs(200)));
        let job_a = engine.scheduler().job(a).unwrap();
        let job_b = engine.scheduler().job(b).unwrap();
        assert!(job_b.started_at().unwrap() >= job_a.ended_at().unwrap());
    }

    #[test]
    fn hpl_jobs_alternate_compute_and_communication() {
        let mut engine = engine();
        engine
            .submit(JobRequest {
                name: "hpl".into(),
                user: "bench".into(),
                nodes: 4,
                // A small problem so panels cycle quickly.
                workload: ClusterWorkload::Hpl(HplProblem::new(4096, 192)),
            })
            .unwrap();
        let mut saw_comm = false;
        let mut saw_compute = false;
        for _ in 0..400 {
            engine.step();
            for node in engine.nodes().iter().take(4) {
                if node.conditions().busy_cores == 4 {
                    if node.conditions().communicating {
                        saw_comm = true;
                    } else {
                        saw_compute = true;
                    }
                }
            }
        }
        assert!(saw_comm, "never saw a communication phase");
        assert!(saw_compute, "never saw a compute phase");
    }

    #[test]
    fn idle_machine_power_sits_at_the_paper_level() {
        let mut engine = engine();
        engine.run_for(SimDuration::from_secs(30));
        let series =
            "org/unibo/cluster/cimone/node/mc-node-03/plugin/pwr_pub/chnl/data/total_power";
        let mean = engine
            .store()
            .aggregate(
                series,
                SimTime::ZERO,
                SimTime::from_secs(30),
                cimone_monitor::tsdb::Aggregation::Mean,
            )
            .unwrap();
        // Slightly below the 4.81 W steady figure: the silicon is still
        // warming towards its idle operating point, so leakage is low.
        assert!((mean - 4.81).abs() < 0.09, "idle power {mean} W");
    }

    #[test]
    fn monitoring_can_be_disabled() {
        let mut engine = SimEngine::new(EngineConfig {
            monitoring: false,
            ..EngineConfig::default()
        });
        engine.submit(synthetic(1, 5)).unwrap();
        engine.run_for(SimDuration::from_secs(8));
        assert!(engine.store().is_empty());
    }

    #[test]
    fn jobs_are_killed_at_their_wall_time_limit() {
        let mut engine = SimEngine::new(EngineConfig {
            monitoring: false,
            ..EngineConfig::default()
        });
        // A 100 s workload under a 10 s limit: killed, nodes freed.
        let id = engine
            .submit_with_limit(synthetic(2, 100), SimDuration::from_secs(10))
            .unwrap();
        assert!(engine.run_until_idle(SimDuration::from_secs(60)));
        let job = engine.scheduler().job(id).unwrap();
        assert_eq!(job.state(), JobState::TimedOut);
        let elapsed = job.elapsed().unwrap().as_secs_f64();
        assert!((elapsed - 10.0).abs() <= 1.0, "killed at {elapsed}s");
        assert_eq!(engine.scheduler().partition().idle_count(), 8);
        // The accounting record carries the TIMEOUT state.
        assert_eq!(engine.accounting().records()[0].state, JobState::TimedOut);
    }

    #[test]
    fn governor_throttles_hot_nodes_and_recovers_cool_ones() {
        use crate::dpm::ThermalGovernor;
        let mut engine = SimEngine::new(EngineConfig {
            airflow: crate::thermal::AirflowConfig::LidOnTightStack,
            dt: SimDuration::from_secs(2),
            monitoring: false,
            governor: Some(ThermalGovernor::fu740_default()),
            ..EngineConfig::default()
        });
        engine.submit(synthetic(8, 3000)).unwrap();
        engine.run_for(SimDuration::from_secs(2000));
        // Node 7 (worst airflow) must have been throttled below nominal...
        assert!(!engine.node_cpufreq(6).is_nominal(), "node 7 should throttle");
        // ...and never tripped.
        assert!(!engine
            .events()
            .iter()
            .any(|e| matches!(e, EngineEvent::NodeTripped { .. })));
        // An edge node stays at (or recovers to) nominal.
        assert!(engine.node_cpufreq(0).is_nominal(), "edge node should stay nominal");
    }

    #[test]
    fn hostname_index_round_trips() {
        assert_eq!(hostname_index("mc-node-01"), 0);
        assert_eq!(hostname_index("mc-node-08"), 7);
    }
}
