//! Machine-scale performance models for the paper's application
//! benchmarks: distributed HPL (Fig. 2) and the QuantumESPRESSO LAX
//! driver.
//!
//! The single-node HPL rate comes straight from the calibrated pipeline
//! model (46.5 % of the 4 GFLOP/s peak → 1.86 GFLOP/s). Multi-node runs
//! add a mechanistic per-panel communication model over the Gigabit
//! Ethernet α–β link: panel broadcast along process rows, `U₁₂` broadcast
//! and row-swap exchange along columns. A single calibrated
//! slowdown factor ([`HplModel::CALIBRATED_COMM_SLOWDOWN`]) accounts for what the α–β model
//! cannot see (TCP/IP and interrupt overhead on the in-order cores, switch
//! contention); it is fitted to the paper's full-machine measurement
//! (12.65 GFLOP/s on 8 nodes) and the intermediate points of the scaling
//! curve then follow from the model.

use cimone_kernels::eig::eig_flops;
use cimone_kernels::lu::hpl_flops;
use cimone_net::link::LinkModel;
use cimone_net::mpi::{CommWorld, ProcessGrid};
use cimone_soc::complex::U74McComplex;
use cimone_soc::noise::gaussian;
use cimone_soc::units::Bytes;
use cimone_soc::workload::Workload;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The HPL problem the paper runs: N = 40704, NB = 192.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HplProblem {
    /// Matrix order.
    pub n: usize,
    /// Block size.
    pub nb: usize,
}

impl HplProblem {
    /// The paper's configuration.
    pub fn paper() -> Self {
        HplProblem { n: 40704, nb: 192 }
    }

    /// Creates a problem.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < nb <= n`.
    pub fn new(n: usize, nb: usize) -> Self {
        assert!(nb > 0 && nb <= n, "need 0 < nb <= n");
        HplProblem { n, nb }
    }

    /// Number of panel factorisation steps.
    pub fn panels(&self) -> usize {
        self.n.div_ceil(self.nb)
    }

    /// Total credited FLOPs.
    pub fn flops(&self) -> f64 {
        hpl_flops(self.n)
    }
}

/// One simulated HPL run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HplRunSample {
    /// Nodes used.
    pub nodes: usize,
    /// Wall time, seconds.
    pub seconds: f64,
    /// Sustained GFLOP/s.
    pub gflops: f64,
}

/// The distributed HPL performance model.
///
/// # Examples
///
/// ```
/// use cimone_cluster::perf::{HplModel, HplProblem};
///
/// let model = HplModel::monte_cimone(HplProblem::paper());
/// let single = model.gflops(1);
/// assert!((single - 1.86).abs() < 0.02); // paper: 1.86 GFLOP/s
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HplModel {
    problem: HplProblem,
    /// Sustained FLOP/s of one node.
    node_rate: f64,
    link: LinkModel,
    /// Calibrated multiplier on the α–β communication estimate.
    comm_slowdown: f64,
}

impl HplModel {
    /// Multiplier fitted so 8 nodes sustain the paper's 12.65 GFLOP/s.
    pub const CALIBRATED_COMM_SLOWDOWN: f64 = 6.6;

    /// Extra communication cost per blade spanned *beyond* the minimal
    /// packing (`ceil(nodes/2)` dual-node blades). Boards on one blade
    /// share a switch line card and a short equal-length cable run; an
    /// allocation scattered across extra blades sees slightly longer
    /// store-and-forward paths and more cross-card contention. The
    /// calibrated full-machine figure uses the minimal span, so the
    /// paper-anchored points are untouched.
    pub const CROSS_BLADE_COMM_PENALTY: f64 = 0.06;

    /// The model for Monte Cimone over its Gigabit Ethernet.
    pub fn monte_cimone(problem: HplProblem) -> Self {
        let soc = U74McComplex::default();
        HplModel {
            problem,
            node_rate: soc.sustained_flops(Workload::Hpl),
            link: LinkModel::gigabit_ethernet(),
            comm_slowdown: Self::CALIBRATED_COMM_SLOWDOWN,
        }
    }

    /// Swaps the interconnect (the "working InfiniBand" ablation). The
    /// calibrated slowdown shrinks with the kernel-bypass transport: RDMA
    /// removes the TCP/interrupt overhead the factor stands for, so the
    /// ablation uses 1.5.
    pub fn with_link(mut self, link: LinkModel, comm_slowdown: f64) -> Self {
        self.link = link;
        self.comm_slowdown = comm_slowdown;
        self
    }

    /// The problem being solved.
    pub fn problem(&self) -> &HplProblem {
        &self.problem
    }

    /// One node's sustained FLOP/s.
    pub fn node_rate(&self) -> f64 {
        self.node_rate
    }

    /// Pure compute time on `nodes` nodes, seconds.
    pub fn compute_time(&self, nodes: usize) -> f64 {
        assert!(nodes > 0, "need at least one node");
        self.problem.flops() / (self.node_rate * nodes as f64)
    }

    /// Modelled communication time on `nodes` nodes, seconds.
    pub fn comm_time(&self, nodes: usize) -> f64 {
        assert!(nodes > 0, "need at least one node");
        if nodes == 1 {
            return 0.0;
        }
        let grid = ProcessGrid::squarest(nodes);
        let (p, q) = (grid.p, grid.q);
        let row_world = CommWorld::new(q, self.link);
        let col_world = CommWorld::new(p, self.link);
        let nb = self.problem.nb as f64;

        let mut total = 0.0;
        for k in 0..self.problem.panels() {
            let trailing = (self.problem.n - k * self.problem.nb) as f64;
            // Panel broadcast along the process row: this node column owns
            // trailing/P rows of the NB-wide panel.
            let panel_bytes = Bytes::new((trailing / p as f64 * nb * 8.0) as u64);
            total += row_world.broadcast_time(panel_bytes).as_secs_f64();
            // U12 broadcast and row-swap exchange along the column.
            let u12_bytes = Bytes::new((trailing / q as f64 * nb * 8.0) as u64);
            total += col_world.broadcast_time(u12_bytes).as_secs_f64();
            total += col_world.allgather_time(u12_bytes).as_secs_f64();
        }
        total * self.comm_slowdown
    }

    /// Total wall time, seconds.
    pub fn run_time(&self, nodes: usize) -> f64 {
        self.compute_time(nodes) + self.comm_time(nodes)
    }

    /// The fewest dual-node blades that can host `nodes` nodes.
    pub fn minimal_blades(nodes: usize) -> usize {
        nodes.div_ceil(2)
    }

    /// Communication-time multiplier for an allocation spanning
    /// `blades_spanned` blades: exactly 1 at (or below) the minimal span,
    /// growing by [`HplModel::CROSS_BLADE_COMM_PENALTY`] per extra blade.
    pub fn blade_span_factor(nodes: usize, blades_spanned: usize) -> f64 {
        let extra = blades_spanned.saturating_sub(Self::minimal_blades(nodes));
        1.0 + Self::CROSS_BLADE_COMM_PENALTY * extra as f64
    }

    /// Total wall time of a run whose allocation spans `blades_spanned`
    /// blades, seconds. Bit-identical to [`HplModel::run_time`] at the
    /// minimal span (the factor is exactly 1).
    pub fn run_time_spanning(&self, nodes: usize, blades_spanned: usize) -> f64 {
        self.compute_time(nodes)
            + self.comm_time(nodes) * Self::blade_span_factor(nodes, blades_spanned)
    }

    /// Sustained GFLOP/s at a given blade span.
    pub fn gflops_spanning(&self, nodes: usize, blades_spanned: usize) -> f64 {
        self.problem.flops() / self.run_time_spanning(nodes, blades_spanned) / 1e9
    }

    /// Sustained GFLOP/s on `nodes` nodes.
    pub fn gflops(&self, nodes: usize) -> f64 {
        self.problem.flops() / self.run_time(nodes) / 1e9
    }

    /// Fraction of time spent communicating.
    pub fn comm_fraction(&self, nodes: usize) -> f64 {
        self.comm_time(nodes) / self.run_time(nodes)
    }

    /// Parallel efficiency versus perfect linear scaling from one node.
    pub fn efficiency_vs_linear(&self, nodes: usize) -> f64 {
        self.gflops(nodes) / (self.gflops(1) * nodes as f64)
    }

    /// Utilisation of the machine's theoretical peak (4 GFLOP/s per node).
    pub fn peak_utilisation(&self, nodes: usize) -> f64 {
        self.gflops(nodes) * 1e9 / (nodes as f64 * 4.0e9)
    }

    /// Draws one noisy run (repetition-to-repetition variation grows with
    /// node count, as in the paper's error bars: ±2 % single node, ±4 %
    /// full machine).
    pub fn simulate_run<R: Rng + ?Sized>(&self, nodes: usize, rng: &mut R) -> HplRunSample {
        self.simulate_run_spanning(nodes, Self::minimal_blades(nodes), rng)
    }

    /// [`HplModel::simulate_run`] for an allocation spanning
    /// `blades_spanned` blades (one RNG draw either way, so the stream
    /// stays aligned; bit-identical at the minimal span).
    pub fn simulate_run_spanning<R: Rng + ?Sized>(
        &self,
        nodes: usize,
        blades_spanned: usize,
        rng: &mut R,
    ) -> HplRunSample {
        let mean_seconds = self.run_time_spanning(nodes, blades_spanned);
        let sigma_frac = 0.021 + 0.0066 * (nodes as f64).log2();
        let seconds = gaussian(rng, mean_seconds, mean_seconds * sigma_frac).max(1e-9);
        HplRunSample {
            nodes,
            seconds,
            gflops: self.problem.flops() / seconds / 1e9,
        }
    }
}

/// The QuantumESPRESSO LAX driver model: repeated blocked diagonalisation
/// of a 512² matrix on one node (paper §V-A: 1.44 GFLOP/s, 36 % FPU
/// efficiency, 37.40 ± 0.14 s total).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaxModel {
    /// Matrix order (512 in the paper).
    pub matrix_n: usize,
    /// Diagonalisation repetitions in one driver run. 93 repetitions of a
    /// 512² eigen-decomposition account for the paper's 37.4 s at the
    /// measured rate.
    pub iterations: usize,
    /// Sustained node FLOP/s under the QE mix.
    node_rate: f64,
}

impl LaxModel {
    /// The paper's configuration.
    pub fn paper() -> Self {
        let soc = U74McComplex::default();
        LaxModel {
            matrix_n: 512,
            iterations: 93,
            node_rate: soc.sustained_flops(Workload::QeLax),
        }
    }

    /// Total credited FLOPs.
    pub fn flops(&self) -> f64 {
        eig_flops(self.matrix_n) * self.iterations as f64
    }

    /// Sustained node GFLOP/s.
    pub fn gflops(&self) -> f64 {
        self.node_rate / 1e9
    }

    /// FPU utilisation against the 4 GFLOP/s node peak.
    pub fn fpu_utilisation(&self) -> f64 {
        self.node_rate / 4.0e9
    }

    /// Mean run time, seconds.
    pub fn run_time(&self) -> f64 {
        self.flops() / self.node_rate
    }

    /// One noisy run (paper σ: 0.14 s on 37.4 s).
    pub fn simulate_run<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        let seconds = gaussian(rng, self.run_time(), self.run_time() * 0.0037).max(1e-9);
        (seconds, self.flops() / seconds / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> HplModel {
        HplModel::monte_cimone(HplProblem::paper())
    }

    #[test]
    fn single_node_matches_the_paper() {
        let m = model();
        assert!((m.gflops(1) - 1.86).abs() < 0.02, "gflops {}", m.gflops(1));
        // Paper runtime: 24105 ± 587 s.
        assert!(
            (m.run_time(1) - 24105.0).abs() < 590.0,
            "t {}",
            m.run_time(1)
        );
        // 46.5 % of the 4 GFLOP/s peak.
        assert!((m.peak_utilisation(1) - 0.465).abs() < 0.005);
    }

    #[test]
    fn full_machine_matches_the_paper() {
        let m = model();
        let g8 = m.gflops(8);
        assert!((g8 - 12.65).abs() < 0.3, "8-node gflops {g8}");
        // 85 % of linear scaling, 39.5 % of machine peak, ~3548 s runtime.
        assert!((m.efficiency_vs_linear(8) - 0.85).abs() < 0.02);
        assert!((m.peak_utilisation(8) - 0.395).abs() < 0.01);
        assert!(
            (m.run_time(8) - 3548.0).abs() < 150.0,
            "t {}",
            m.run_time(8)
        );
    }

    #[test]
    fn scaling_curve_is_monotonic_with_decaying_efficiency() {
        let m = model();
        let mut last_gflops = 0.0;
        let mut last_eff = 1.1;
        for nodes in [1, 2, 4, 8] {
            let g = m.gflops(nodes);
            let e = m.efficiency_vs_linear(nodes);
            assert!(g > last_gflops, "throughput must grow with nodes");
            assert!(e <= last_eff + 1e-12, "efficiency must not grow");
            last_gflops = g;
            last_eff = e;
        }
    }

    #[test]
    fn infiniband_ablation_improves_scaling() {
        let gbe = model();
        let ib = model().with_link(LinkModel::infiniband_fdr(), 1.5);
        assert!(ib.gflops(8) > gbe.gflops(8) * 1.1);
        assert!(ib.efficiency_vs_linear(8) > 0.97);
        // Single-node performance is unchanged: the network is idle.
        assert!((ib.gflops(1) - gbe.gflops(1)).abs() < 1e-9);
    }

    #[test]
    fn cross_blade_span_penalises_only_beyond_the_minimal_packing() {
        let m = model();
        // 2 nodes on one blade is the minimal span: identical to the
        // calibrated curve, bit for bit.
        assert_eq!(m.run_time_spanning(2, 1), m.run_time(2));
        assert_eq!(m.gflops_spanning(2, 1), m.gflops(2));
        // The same 2 nodes split across two blades pay the penalty.
        let intra = m.gflops_spanning(2, 1);
        let cross = m.gflops_spanning(2, 2);
        assert!(cross < intra, "cross {cross} !< intra {intra}");
        // The gap is the comm penalty, so it is small but real.
        assert!(cross > intra * 0.95, "penalty too harsh: {cross}");
        // 8 nodes necessarily span all 4 blades: minimal, no penalty.
        assert_eq!(m.run_time_spanning(8, 4), m.run_time(8));
        assert_eq!(HplModel::minimal_blades(3), 2);
        // One RNG draw either way keeps the stream aligned.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let s1 = m.simulate_run(2, &mut a);
        let s2 = m.simulate_run_spanning(2, 1, &mut b);
        assert_eq!(s1, s2);
    }

    #[test]
    fn comm_fraction_grows_with_node_count() {
        let m = model();
        assert_eq!(m.comm_fraction(1), 0.0);
        assert!(m.comm_fraction(8) > m.comm_fraction(2));
        assert!((m.comm_fraction(8) - 0.15).abs() < 0.03);
    }

    #[test]
    fn simulated_runs_reproduce_the_paper_error_bars() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(2022);
        let single: Vec<f64> = (0..200)
            .map(|_| m.simulate_run(1, &mut rng).gflops)
            .collect();
        let mean = single.iter().sum::<f64>() / single.len() as f64;
        let sd =
            (single.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / single.len() as f64).sqrt();
        assert!((mean - 1.86).abs() < 0.02, "mean {mean}");
        assert!((sd - 0.04).abs() < 0.02, "sd {sd}");
    }

    #[test]
    fn lax_matches_the_paper() {
        let lax = LaxModel::paper();
        assert!(
            (lax.gflops() - 1.44).abs() < 0.01,
            "gflops {}",
            lax.gflops()
        );
        assert!((lax.fpu_utilisation() - 0.36).abs() < 0.005);
        assert!((lax.run_time() - 37.40).abs() < 0.5, "t {}", lax.run_time());
        let mut rng = StdRng::seed_from_u64(7);
        let (secs, gf) = lax.simulate_run(&mut rng);
        assert!((secs - 37.4).abs() < 1.0);
        assert!((gf - 1.44).abs() < 0.05);
    }

    #[test]
    fn panels_count_the_paper_problem() {
        assert_eq!(HplProblem::paper().panels(), 212);
    }

    #[test]
    #[should_panic(expected = "need 0 < nb <= n")]
    fn invalid_problem_panics() {
        let _ = HplProblem::new(100, 0);
    }
}
