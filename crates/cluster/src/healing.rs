//! The self-healing control plane: heartbeat-driven failure detection,
//! node fencing, and a closed-loop thermal watchdog.
//!
//! With recovery enabled the engine stops telling the scheduler about
//! crashes directly. Instead every node publishes a periodic heartbeat
//! through the ExaMon broker, a [`cimone_monitor::heartbeat::HeartbeatMonitor`]
//! accrues suspicion from the *absence* of arrivals, and the
//! [`ControlPlane`] turns suspicion into actions: fence the node (evicting
//! its jobs through the scheduler's requeue path, where checkpointed work
//! migrates to healthy nodes), and unfence it when the stream resumes.
//! Because detection rides the telemetry path, injected broker message
//! loss and network partitions can fence perfectly healthy nodes — the
//! false-positive cost the phi threshold trades against latency.
//!
//! The thermal watchdog closes the loop the paper had to close by hand
//! during its node-7 runaway: sustained over-temperature first throttles
//! DVFS, and past a hotter line fences the blade before the 107 °C
//! hardware trip fires.

use serde::{Deserialize, Serialize};

use cimone_monitor::broker::Broker;
use cimone_monitor::heartbeat::{HeartbeatMonitor, DEFAULT_PHI_THRESHOLD};
use cimone_soc::units::{Celsius, SimDuration, SimTime};

use crate::checkpoint::CheckpointCostModel;

/// Checkpoint/restart policy for the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Cadence between checkpoint commits of one job.
    pub interval: SimDuration,
    /// What each commit costs the job.
    pub cost: CheckpointCostModel,
    /// First retry delay when a drained write cannot commit because the
    /// export is offline; each further attempt doubles it.
    pub retry_base: SimDuration,
    /// Ceiling on the exponential backoff between retries.
    pub retry_cap: SimDuration,
    /// Deferred commit attempts allowed before the in-flight write is
    /// abandoned (its pending progress dropped) and the cadence resumes.
    pub max_retries: u32,
    /// Node-local write-behind: while the export is offline a drained
    /// write spills to the job's first allocated node instead of retrying,
    /// and flushes to the export when it recovers. The spilled progress is
    /// a usable restart point *unless* the buffering node itself dies
    /// before the flush.
    pub spill: bool,
}

impl CheckpointConfig {
    /// Checkpoints every `interval` at the default Gigabit-NFS cost, with
    /// the default outage posture: bounded retry (4 s base, 64 s cap,
    /// 5 attempts), no spill buffer.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero.
    pub fn every(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "checkpoint interval must be non-zero");
        CheckpointConfig {
            interval,
            cost: CheckpointCostModel::default(),
            retry_base: SimDuration::from_secs(4),
            retry_cap: SimDuration::from_secs(64),
            max_retries: 5,
            spill: false,
        }
    }

    /// The same policy with the node-local write-behind spill buffer on.
    pub fn with_spill(mut self) -> Self {
        self.spill = true;
        self
    }

    /// The exponential-backoff delay before retry number `retries + 1`:
    /// `retry_base · 2^retries`, capped at `retry_cap`.
    pub fn retry_delay(&self, retries: u32) -> SimDuration {
        let base = self.retry_base.as_secs_f64();
        let cap = self.retry_cap.as_secs_f64();
        SimDuration::from_secs_f64((base * 2f64.powi(retries.min(31) as i32)).min(cap))
    }
}

/// The closed-loop thermal watchdog policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalWatchdog {
    /// Above this, step the node's DVFS down one OPP per tick.
    pub throttle_above: Celsius,
    /// Below this, step back up (hysteresis against oscillation).
    pub release_below: Celsius,
    /// Above this for [`ThermalWatchdog::sustain`], fence the blade.
    pub fence_above: Celsius,
    /// How long over-temperature must persist before fencing.
    pub sustain: SimDuration,
}

impl ThermalWatchdog {
    /// Defaults tuned under the FU740's 107 °C trip: throttle at 95 °C,
    /// release below 85 °C, fence after 30 s sustained above 103 °C.
    pub fn fu740_default() -> Self {
        ThermalWatchdog {
            throttle_above: Celsius::new(95.0),
            release_below: Celsius::new(85.0),
            fence_above: Celsius::new(103.0),
            sustain: SimDuration::from_secs(30),
        }
    }
}

/// Recovery-subsystem configuration (engine-level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Heartbeat publication cadence per node.
    pub heartbeat_interval: SimDuration,
    /// Phi threshold above which a node is suspected (see
    /// [`cimone_monitor::heartbeat`] for the latency/false-positive
    /// tradeoff).
    pub phi_threshold: f64,
    /// Checkpoint/restart policy; `None` restarts evicted jobs from zero.
    pub checkpoint: Option<CheckpointConfig>,
    /// Whether suspicion fences the node (evicting its jobs). Disabling
    /// leaves detection observable but inert.
    pub fence_on_suspicion: bool,
    /// Whether a fenced node returns to service automatically once its
    /// heartbeat stream resumes (covers both real repair and false
    /// suspicion).
    pub auto_unfence: bool,
    /// Optional closed-loop thermal watchdog.
    pub thermal_watchdog: Option<ThermalWatchdog>,
    /// Whether the failure detector is told about DVFS slowdowns. A capped
    /// (or throttled) node runs its health daemon slower and heartbeats
    /// late; with this on, the engine feeds the expected slowdown into the
    /// [`HeartbeatMonitor`] so phi is computed against the scaled cadence
    /// and graceful degradation never trips suspicion fencing. Disabling
    /// it reproduces the false-positive failure mode (for regression
    /// tests).
    pub cap_aware_suspicion: bool,
    /// Whether the control plane distinguishes "everyone went silent at
    /// once" (a rack-level switch outage) from "everyone died": when a
    /// node would be suspected while *no* node in the cluster has
    /// heartbeat recently, the plane enters a `Partitioned` state and
    /// defers all suspicion until connectivity returns, instead of
    /// mass-fencing the machine. Disabling reproduces the legacy
    /// mass-false-suspect behaviour (for regression tests).
    pub partition_aware: bool,
    /// How long the `Partitioned` state may defer suspicion before the
    /// plane concludes the cluster really did die en masse and lets
    /// fencing proceed.
    pub partition_timeout: SimDuration,
}

impl RecoveryConfig {
    /// Detection and self-healing on, checkpointing off: 5 s heartbeats,
    /// phi threshold 8, fence + auto-unfence, no watchdog.
    pub fn detection_only() -> Self {
        RecoveryConfig {
            heartbeat_interval: SimDuration::from_secs(5),
            phi_threshold: DEFAULT_PHI_THRESHOLD,
            checkpoint: None,
            fence_on_suspicion: true,
            auto_unfence: true,
            thermal_watchdog: None,
            cap_aware_suspicion: true,
            partition_aware: true,
            partition_timeout: SimDuration::from_secs(120),
        }
    }

    /// [`RecoveryConfig::detection_only`] plus checkpoints every
    /// `interval`.
    pub fn with_checkpoints(interval: SimDuration) -> Self {
        RecoveryConfig {
            checkpoint: Some(CheckpointConfig::every(interval)),
            ..RecoveryConfig::detection_only()
        }
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig::detection_only()
    }
}

/// An action the control plane asks the engine to apply. The control
/// plane never touches the scheduler itself — the engine stays the single
/// writer, so every action is observable and testable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlAction {
    /// The failure detector crossed its threshold for this node.
    FenceSuspect {
        /// Node index.
        node: usize,
        /// The phi value at detection.
        phi: f64,
    },
    /// A fenced node's heartbeat stream resumed: return it to service.
    Unfence {
        /// Node index.
        node: usize,
    },
    /// Watchdog: the node is over its throttle line; step DVFS down.
    ThrottleHot {
        /// Node index.
        node: usize,
        /// The temperature observed.
        temperature: Celsius,
    },
    /// Watchdog: the node cooled below the release line; step DVFS up.
    RelaxCool {
        /// Node index.
        node: usize,
    },
    /// Watchdog: sustained over-temperature; fence before the trip.
    FenceHot {
        /// Node index.
        node: usize,
        /// The temperature observed.
        temperature: Celsius,
    },
    /// Every node went silent at once: the plane suspects the shared
    /// switch, not the nodes, and defers all suspicion.
    PartitionSuspected {
        /// Unfenced nodes over the phi threshold at entry.
        silent: usize,
    },
    /// A heartbeat got through again: connectivity is back, deferred
    /// suspicion re-accrues per node from here.
    PartitionHealed,
    /// The partition outlived [`RecoveryConfig::partition_timeout`]: the
    /// plane concludes the cluster really died and lets fencing proceed.
    PartitionTimedOut,
}

/// Heartbeat-fed decision loop over the cluster's nodes.
pub struct ControlPlane {
    monitor: HeartbeatMonitor,
    config: RecoveryConfig,
    hostnames: Vec<String>,
    /// Which nodes this control plane has fenced.
    fenced: Vec<bool>,
    /// When each node crossed the watchdog's fence line, if it is over it.
    hot_since: Vec<Option<SimTime>>,
    /// Outstanding watchdog DVFS step-downs per node, so cooling only
    /// relaxes what the watchdog itself throttled.
    throttle_depth: Vec<usize>,
    /// Since when the plane has judged the cluster partitioned (correlated
    /// silence), deferring all suspicion.
    partitioned_since: Option<SimTime>,
}

impl ControlPlane {
    /// Attaches the control plane to `broker`, watching heartbeats of the
    /// given nodes (in index order).
    pub fn new(broker: &Broker, config: RecoveryConfig, hostnames: Vec<String>) -> Self {
        let monitor = HeartbeatMonitor::attach(
            broker,
            "org/unibo/cluster/cimone/node/+/plugin/health_pub/chnl/data/heartbeat"
                .parse()
                .expect("valid filter"),
            config.phi_threshold,
        );
        let n = hostnames.len();
        ControlPlane {
            monitor,
            config,
            hostnames,
            fenced: vec![false; n],
            hot_since: vec![None; n],
            throttle_depth: vec![0; n],
            partitioned_since: None,
        }
    }

    /// The failure detector (suspicion levels are readable at any time).
    pub fn monitor(&self) -> &HeartbeatMonitor {
        &self.monitor
    }

    /// Ingests queued heartbeat arrivals *without* running the decision
    /// pass; returns how many were ingested. The monitored fast-forward
    /// (DESIGN.md §16) records arrivals at their exact ticks and proves
    /// separately — via [`ControlPlane::is_quiescent`] at span entry and
    /// [`ControlPlane::next_suspicion_due`] over the span — that the
    /// decision pass would act on none of them, so skipping it is exact.
    pub fn pump_arrivals(&mut self) -> usize {
        self.monitor.pump()
    }

    /// Whether this control plane has node `i` fenced.
    pub fn is_fenced(&self, node: usize) -> bool {
        self.fenced[node]
    }

    /// Marks `node` fenced (the engine calls this after applying a fence
    /// action so operator-driven fences stay in sync too).
    pub fn set_fenced(&mut self, node: usize, fenced: bool) {
        self.fenced[node] = fenced;
    }

    /// Tells the failure detector that `node` is expected to heartbeat
    /// `scale`× slower than nominal (a DVFS-capped node's health daemon
    /// runs at the capped clock). A no-op unless
    /// [`RecoveryConfig::cap_aware_suspicion`] is set.
    pub fn set_expected_interval_scale(&mut self, node: usize, scale: f64) {
        if self.config.cap_aware_suspicion {
            self.monitor
                .set_expected_scale(&self.hostnames[node], scale);
        }
    }

    /// Whether any node is currently fenced. A fenced node's unfence
    /// condition decays with wall time (`resumed` compares `now` against
    /// the last arrival), so a due-time clock must evaluate every tick
    /// while a fence is outstanding.
    pub fn any_fenced(&self) -> bool {
        self.fenced.iter().any(|&f| f)
    }

    /// Whether the plane is deferring suspicion because the whole cluster
    /// went silent at once (a suspected shared-switch outage).
    pub fn is_partitioned(&self) -> bool {
        self.partitioned_since.is_some()
    }

    /// Since when the plane has been in the `Partitioned` state, if it is.
    pub fn partitioned_since(&self) -> Option<SimTime> {
        self.partitioned_since
    }

    /// Whether any node's heartbeat *actually* arrived within twice its
    /// (cadence-scaled) heartbeat interval of `now` — the differential
    /// evidence that separates "one node died" (peers still beating) from
    /// "the shared switch died" (nobody beating).
    fn recently_heard_any(&self, now: SimTime) -> bool {
        self.hostnames.iter().any(|host| {
            self.monitor.detector(host).is_some_and(|d| {
                d.last_heard().is_some_and(|t| {
                    now.saturating_since(t).as_secs_f64()
                        < self.config.heartbeat_interval.as_secs_f64() * 2.0 * d.expected_scale()
                })
            })
        })
    }

    /// Whether [`ControlPlane::tick`] is provably a pure observation for
    /// ticks where no heartbeat arrives and no phi threshold is crossed:
    /// no node fenced, no armed watchdog sustain clock, no outstanding
    /// watchdog throttle to relax, and (when a watchdog is configured)
    /// every temperature strictly below its throttle and fence lines.
    /// Under these conditions the only state `tick` could mutate is
    /// driven by arrivals or crossings, both of which a due-time clock
    /// schedules explicitly — so skipping the call is exact.
    pub fn is_quiescent(&self, temperatures: &[Celsius]) -> bool {
        if self.any_fenced() {
            return false;
        }
        // The partitioned state heals on arrivals and expires on a wall
        // clock: both are tick-observed, so the plane stays busy.
        if self.partitioned_since.is_some() {
            return false;
        }
        match self.config.thermal_watchdog {
            None => true,
            Some(w) => {
                self.hot_since.iter().all(Option::is_none)
                    && self.throttle_depth.iter().all(|&d| d == 0)
                    && temperatures
                        .iter()
                        .all(|&t| t < w.throttle_above && t < w.fence_above)
            }
        }
    }

    /// The first grid tick in `[from, to]` (stepping by `step`) at which
    /// node `i` would cross the suspicion threshold with no further
    /// heartbeats — `None` when suspicion cannot fence (disabled, already
    /// fenced, or the crossing lies beyond `to`).
    pub fn next_suspicion_due(
        &self,
        node: usize,
        from: SimTime,
        to: SimTime,
        step: SimDuration,
    ) -> Option<SimTime> {
        if !self.config.fence_on_suspicion || self.fenced[node] {
            return None;
        }
        self.monitor
            .next_suspicion_due(&self.hostnames[node], from, to, step)
    }

    /// One decision tick: ingest heartbeats, evaluate suspicion for every
    /// node, and run the thermal watchdog over `temperatures`. Returns the
    /// actions for the engine to apply, in node order.
    // The index walks four parallel per-node vectors; iterating any one
    // of them would just obscure that.
    #[allow(clippy::needless_range_loop)]
    pub fn tick(&mut self, now: SimTime, temperatures: &[Celsius]) -> Vec<ControlAction> {
        self.monitor.pump();
        let mut actions = Vec::new();
        if self.config.partition_aware && self.config.fence_on_suspicion {
            let fresh = self.recently_heard_any(now);
            match self.partitioned_since {
                Some(since) => {
                    if fresh {
                        // Connectivity is back. Nodes that resumed carry a
                        // fresh arrival; nodes rebaselined at entry have
                        // been re-accruing silently and — if they really
                        // died — are fenced by the loop below, this tick.
                        self.partitioned_since = None;
                        actions.push(ControlAction::PartitionHealed);
                    } else if now.saturating_since(since) >= self.config.partition_timeout {
                        // Nobody came back: the cluster really died en
                        // masse. Stop deferring and let fencing proceed.
                        self.partitioned_since = None;
                        actions.push(ControlAction::PartitionTimedOut);
                    }
                }
                None => {
                    let silent = (0..self.hostnames.len())
                        .filter(|&n| {
                            !self.fenced[n]
                                && self.monitor.phi(&self.hostnames[n], now)
                                    >= self.config.phi_threshold
                        })
                        .count();
                    // Correlated silence is only inferable against peers:
                    // with fewer than two nodes ever heard from there is
                    // no differential evidence, and a lone silent node is
                    // just a dead node.
                    let heard = self
                        .hostnames
                        .iter()
                        .filter(|h| self.monitor.last_heard(h).is_some())
                        .count();
                    if silent > 0 && !fresh && heard >= 2 {
                        // A node crossed the line while *nobody* in the
                        // cluster is beating: that is the shared switch,
                        // not the node. Defer everyone's suspicion.
                        self.partitioned_since = Some(now);
                        actions.push(ControlAction::PartitionSuspected { silent });
                        for node in 0..self.hostnames.len() {
                            if !self.fenced[node] {
                                let host = self.hostnames[node].clone();
                                self.monitor.rebaseline(&host, now);
                            }
                        }
                    }
                }
            }
        }
        for node in 0..self.hostnames.len() {
            let host = &self.hostnames[node];
            let phi = self.monitor.phi(host, now);
            if !self.fenced[node] {
                if self.config.fence_on_suspicion
                    && self.partitioned_since.is_none()
                    && phi >= self.config.phi_threshold
                {
                    actions.push(ControlAction::FenceSuspect { node, phi });
                    // Applied optimistically: the engine fences in the same
                    // tick it receives the action.
                    self.fenced[node] = true;
                    continue;
                }
            } else if self.config.auto_unfence {
                // Unfence once the stream has demonstrably resumed: a
                // fresh arrival and suspicion back under half the line.
                // A thermally fenced node keeps heartbeating, so it must
                // additionally have cooled below the release line.
                let resumed = self
                    .monitor
                    .detector(host)
                    .and_then(|d| d.last_heard())
                    .is_some_and(|t| now.saturating_since(t) < self.config.heartbeat_interval * 2);
                let cooled = self
                    .config
                    .thermal_watchdog
                    .is_none_or(|w| temperatures[node] < w.release_below);
                if resumed && cooled && phi < self.config.phi_threshold * 0.5 {
                    actions.push(ControlAction::Unfence { node });
                    self.fenced[node] = false;
                }
            }
            if let Some(watchdog) = self.config.thermal_watchdog {
                if self.fenced[node] {
                    self.hot_since[node] = None;
                    continue;
                }
                let temp = temperatures[node];
                if temp >= watchdog.fence_above {
                    let since = *self.hot_since[node].get_or_insert(now);
                    if now.saturating_since(since) >= watchdog.sustain {
                        actions.push(ControlAction::FenceHot {
                            node,
                            temperature: temp,
                        });
                        self.fenced[node] = true;
                        self.hot_since[node] = None;
                        continue;
                    }
                } else {
                    self.hot_since[node] = None;
                }
                if temp >= watchdog.throttle_above {
                    actions.push(ControlAction::ThrottleHot {
                        node,
                        temperature: temp,
                    });
                    self.throttle_depth[node] += 1;
                } else if temp < watchdog.release_below && self.throttle_depth[node] > 0 {
                    actions.push(ControlAction::RelaxCool { node });
                    self.throttle_depth[node] -= 1;
                }
            }
        }
        actions
    }
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("config", &self.config)
            .field("fenced", &self.fenced)
            .finish_non_exhaustive()
    }
}

/// Power-cap governor policy (engine-level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerCapConfig {
    /// Rated power budget of one blade's rail, watts; a brownout's
    /// `budget_frac` scales this.
    pub rail_rated_watts: f64,
    /// Hysteresis between single-OPP ramp-back steps — both once a rail
    /// recovers and while capped under an active budget — so a flapping
    /// rail or a wiggling temperature cannot make the blade's frequency
    /// oscillate.
    pub ramp_interval: SimDuration,
    /// Up-step margin: while a budget is active, the ceiling only rises
    /// to an OPP whose predicted power fits under `budget × (1 − margin)`.
    /// Down-steps ignore the margin (safety is immediate).
    pub up_margin_frac: f64,
}

impl PowerCapConfig {
    /// Defaults for the RV007 blade: the rated rail budget from
    /// [`crate::blade::RAIL_RATED_WATTS`], ramping one OPP per 10 s, with
    /// a 3% up-step margin.
    pub fn rv007_default() -> Self {
        PowerCapConfig {
            rail_rated_watts: crate::blade::RAIL_RATED_WATTS,
            ramp_interval: SimDuration::from_secs(10),
            up_margin_frac: 0.03,
        }
    }
}

impl Default for PowerCapConfig {
    fn default() -> Self {
        PowerCapConfig::rv007_default()
    }
}

/// An action the power-cap governor asks the engine to apply. Like
/// [`ControlAction`], the governor never touches nodes or the scheduler
/// itself — the engine stays the single writer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapAction {
    /// Clamp the blade's nodes to OPP indices `<= ceiling`.
    SetCeiling {
        /// Blade index.
        blade: usize,
        /// Highest admissible OPP index.
        ceiling: usize,
    },
    /// Even the floor OPP exceeds the rail budget: power emergency. The
    /// engine must drain the blade (checkpoint-assisted requeue) and power
    /// its boards off rather than overdraw the rail.
    Emergency {
        /// Blade index.
        blade: usize,
        /// The budget that could not be met, watts.
        budget_watts: f64,
    },
    /// The rail recovered after an emergency: the engine may power the
    /// boards back on and return them to service (the ramp-back then
    /// raises the ceiling step by step).
    RailRecovered {
        /// Blade index.
        blade: usize,
    },
    /// Ramp-back complete: the blade is uncapped again.
    Release {
        /// Blade index.
        blade: usize,
    },
    /// Machine-wide power emergency: even with every blade clamped to its
    /// floor OPP the rack cannot fit under the feed budget. The engine
    /// must checkpoint-drain the whole machine; per-blade
    /// [`CapAction::Emergency`] actions follow with the arbitrated
    /// (infeasible) shares.
    RackEmergency {
        /// The machine-wide budget that could not be met, watts.
        budget_watts: f64,
    },
}

/// Per-blade cap state.
#[derive(Debug, Clone, PartialEq)]
struct BladeCap {
    /// Active brownout budget, watts (None = rail healthy).
    budget_watts: Option<f64>,
    /// When the active brownout ends.
    until: SimTime,
    /// Highest admissible OPP index (opp_count − 1 = uncapped).
    ceiling: usize,
    /// Next ramp-back step, when recovering.
    next_ramp: Option<SimTime>,
    /// Since when the next OPP up has fit under the margined budget
    /// continuously; an up-step needs a full ramp interval of dwell, so a
    /// one-tick power dip (an HPL communication phase) cannot flap the cap.
    up_fit_since: Option<SimTime>,
    /// Whether the budget proved infeasible even at the floor OPP.
    emergency: bool,
}

/// A machine-wide feed budget from a [`FaultKind::MultiRailBrownout`]: the
/// rack arbiter splits it across blades each tick.
#[derive(Debug, Clone, PartialEq)]
struct RackBudget {
    /// The machine-wide budget, watts.
    budget_watts: f64,
    /// When the brownout ends.
    until: SimTime,
    /// Whether the rack-level emergency has already been announced, so the
    /// action stream carries it exactly once per episode.
    emergency_announced: bool,
}

/// The brownout graceful-degradation governor: on a rail brownout it caps
/// the blade's DVFS operating points so the blade's *mean* power never
/// exceeds the reduced budget, instead of letting the boards crash; when
/// the rail recovers it ramps the cap back one OPP per
/// [`PowerCapConfig::ramp_interval`] (hysteresis against rail flap).
///
/// Everything is an exact function of grid-tick inputs, and the governor
/// exposes [`PowerCapGovernor::next_due`] and
/// [`PowerCapGovernor::is_quiescent`] so the event-driven clock can
/// aggregate its obligations — the whole path stays bit-identical across
/// clock modes and thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCapGovernor {
    config: PowerCapConfig,
    opp_count: usize,
    blades: Vec<BladeCap>,
    rack: Option<RackBudget>,
}

impl PowerCapGovernor {
    /// A governor over `blade_count` blades whose nodes expose `opp_count`
    /// operating points.
    ///
    /// # Panics
    ///
    /// Panics if `opp_count` is zero.
    pub fn new(config: PowerCapConfig, blade_count: usize, opp_count: usize) -> Self {
        assert!(opp_count > 0, "need at least one operating point");
        PowerCapGovernor {
            config,
            opp_count,
            blades: vec![
                BladeCap {
                    budget_watts: None,
                    until: SimTime::ZERO,
                    ceiling: opp_count - 1,
                    next_ramp: None,
                    up_fit_since: None,
                    emergency: false,
                };
                blade_count
            ],
            rack: None,
        }
    }

    /// The governor's policy.
    pub fn config(&self) -> &PowerCapConfig {
        &self.config
    }

    /// Registers a brownout on `blade`'s rail: `budget_frac` of the rated
    /// budget remains available until `now + span`. The next
    /// [`PowerCapGovernor::evaluate`] picks the cap.
    pub fn begin_brownout(
        &mut self,
        blade: usize,
        budget_frac: f64,
        now: SimTime,
        span: SimDuration,
    ) {
        let cap = &mut self.blades[blade];
        cap.budget_watts = Some(budget_frac * self.config.rail_rated_watts);
        cap.until = now + span;
        cap.next_ramp = None;
        cap.up_fit_since = None;
    }

    /// Registers a machine-wide brownout: `budget_frac` of the rack's total
    /// rated feed (`rail_rated_watts × blade_count`) remains available
    /// until `now + span`. Each [`PowerCapGovernor::evaluate`] while the
    /// budget is live arbitrates per-blade shares by deterministic
    /// water-filling over the blades' measured load curves.
    pub fn begin_rack_brownout(&mut self, budget_frac: f64, now: SimTime, span: SimDuration) {
        let rated = self.config.rail_rated_watts * self.blades.len() as f64;
        self.rack = Some(RackBudget {
            budget_watts: budget_frac * rated,
            until: now + span,
            emergency_announced: false,
        });
    }

    /// The active machine-wide budget, watts, if a multi-rail brownout is
    /// in force.
    pub fn active_rack_budget_watts(&self) -> Option<f64> {
        self.rack.as_ref().map(|rack| rack.budget_watts)
    }

    /// Whether the machine is in a rack-level power emergency: even floor
    /// OPPs on every blade did not fit the machine-wide budget.
    pub fn in_rack_emergency(&self) -> bool {
        self.rack
            .as_ref()
            .is_some_and(|rack| rack.emergency_announced)
    }

    /// Splits the machine-wide budget into per-blade budgets by
    /// deterministic water-filling: every blade starts at its floor OPP,
    /// then whichever blade's next OPP step costs the fewest watts (ties
    /// broken by blade index) is raised, until no step fits. Lightly loaded
    /// blades climb higher — their steps are cheaper — which is exactly
    /// water-filling by load. Leftover headroom is shared equally, so the
    /// per-blade budgets always sum to the machine budget and the rack can
    /// never exceed it. Returns `None` when even the floor OPPs don't fit.
    fn arbitrate_rack(
        &self,
        budget_watts: f64,
        blade_power_at: &impl Fn(usize, usize) -> f64,
    ) -> Option<Vec<f64>> {
        let n = self.blades.len();
        let mut ceilings = vec![0usize; n];
        let mut powers: Vec<f64> = (0..n).map(|b| blade_power_at(b, 0)).collect();
        let mut total: f64 = powers.iter().sum();
        if total > budget_watts {
            return None;
        }
        loop {
            // Raise the blade whose post-step power (its "water level")
            // stays lowest — lightly loaded blades climb first and the
            // levels equalise, which is water-filling by load. Ties break
            // by blade index; both rules are exact f64 compares, so the
            // fill is deterministic.
            let mut best: Option<(usize, f64)> = None;
            for b in 0..n {
                if ceilings[b] + 1 >= self.opp_count {
                    continue;
                }
                let level = blade_power_at(b, ceilings[b] + 1);
                if total + (level - powers[b]) <= budget_watts
                    && best.is_none_or(|(_, best_level)| level < best_level)
                {
                    best = Some((b, level));
                }
            }
            let Some((b, level)) = best else { break };
            ceilings[b] += 1;
            total += level - powers[b];
            powers[b] = level;
        }
        let slack = (budget_watts - total) / n as f64;
        Some(powers.iter().map(|p| p + slack).collect())
    }

    /// One decision tick. `blade_power_at(blade, opp)` must return the
    /// blade's predicted mean power (watts) if every hosted node were
    /// clamped to OPP `opp` under its *current* workload and temperature —
    /// the engine computes this from the calibrated power model, so the
    /// chosen ceiling is exact, not heuristic. Returns actions in blade
    /// order.
    pub fn evaluate(
        &mut self,
        now: SimTime,
        blade_power_at: impl Fn(usize, usize) -> f64,
    ) -> Vec<CapAction> {
        let mut actions = Vec::new();
        // Rack arbitration first: while a machine-wide budget is live every
        // blade's budget is the arbiter's output, re-fitted to the moving
        // load each tick; the per-blade pass below then applies its usual
        // dwell-hysteresis ceiling logic to the arbitrated share.
        if let Some(rack) = self.rack.clone() {
            if now >= rack.until {
                // Blade budgets assigned by the arbiter expire at the rack
                // deadline too, so the per-blade pass below emits the
                // recovery/ramp actions this same tick.
                self.rack = None;
            } else {
                match self.arbitrate_rack(rack.budget_watts, &blade_power_at) {
                    Some(shares) => {
                        for (blade, share) in shares.into_iter().enumerate() {
                            let cap = &mut self.blades[blade];
                            cap.budget_watts = Some(share);
                            cap.until = rack.until;
                            cap.next_ramp = None;
                        }
                    }
                    None => {
                        if !rack.emergency_announced {
                            actions.push(CapAction::RackEmergency {
                                budget_watts: rack.budget_watts,
                            });
                            self.rack = Some(RackBudget {
                                emergency_announced: true,
                                ..rack
                            });
                        }
                        // Infeasible equal shares force every blade's own
                        // pass into emergency below.
                        let n = self.blades.len() as f64;
                        for cap in &mut self.blades {
                            cap.budget_watts = Some(rack.budget_watts / n);
                            cap.until = rack.until;
                            cap.next_ramp = None;
                        }
                    }
                }
            }
        }
        for blade in 0..self.blades.len() {
            let (recovered, was_emergency) = {
                let cap = &mut self.blades[blade];
                if cap.budget_watts.is_some() && now >= cap.until {
                    let was = cap.emergency;
                    cap.budget_watts = None;
                    cap.emergency = false;
                    (true, was)
                } else {
                    (false, false)
                }
            };
            if recovered {
                if was_emergency {
                    actions.push(CapAction::RailRecovered { blade });
                }
                let cap = &mut self.blades[blade];
                cap.up_fit_since = None;
                if cap.ceiling == self.opp_count - 1 {
                    // The in-window up-ramp may have climbed all the way
                    // back to nominal and left its next_ramp armed; clear
                    // it, or the post-recovery ramp below would push the
                    // ceiling past the top of the ladder.
                    cap.next_ramp = None;
                    actions.push(CapAction::Release { blade });
                } else {
                    cap.next_ramp = Some(now + self.config.ramp_interval);
                }
                continue;
            }
            let budget = self.blades[blade].budget_watts;
            if let Some(budget) = budget {
                if self.blades[blade].emergency {
                    // Emergency holds until the rail recovers; the boards
                    // are powered off, so there is nothing to re-evaluate.
                    continue;
                }
                // Largest admissible ceiling: predicted blade power at the
                // uniform clamp must fit under the budget.
                let admissible = (0..self.opp_count)
                    .rev()
                    .find(|&opp| blade_power_at(blade, opp) <= budget);
                let up_budget = budget * (1.0 - self.config.up_margin_frac);
                let cap = &mut self.blades[blade];
                match admissible {
                    // Over budget at the current ceiling: clamp down to the
                    // admissible point immediately, then hold upward moves
                    // for a ramp interval.
                    Some(ceiling) if ceiling < cap.ceiling => {
                        cap.ceiling = ceiling;
                        cap.next_ramp = Some(now + self.config.ramp_interval);
                        cap.up_fit_since = None;
                        actions.push(CapAction::SetCeiling { blade, ceiling });
                    }
                    // Headroom opened up (the blade cooled or its load
                    // dropped): ramp back one OPP per interval, and only
                    // once the next point has fit under the margined
                    // budget for a full interval of dwell — a one-tick
                    // power dip (an HPL communication phase) or a
                    // wiggling temperature at the boundary must not flap
                    // the cap.
                    Some(ceiling) if ceiling > cap.ceiling => {
                        let next = cap.ceiling + 1;
                        if blade_power_at(blade, next) <= up_budget {
                            let since = *cap.up_fit_since.get_or_insert(now);
                            if now >= since + self.config.ramp_interval
                                && cap.next_ramp.is_none_or(|t| now >= t)
                            {
                                cap.ceiling = next;
                                cap.next_ramp = Some(now + self.config.ramp_interval);
                                // Each level earns its own dwell.
                                cap.up_fit_since = None;
                                actions.push(CapAction::SetCeiling {
                                    blade,
                                    ceiling: next,
                                });
                            }
                        } else {
                            cap.up_fit_since = None;
                        }
                    }
                    Some(_) => {
                        cap.up_fit_since = None;
                    }
                    None => {
                        cap.emergency = true;
                        cap.ceiling = 0;
                        cap.up_fit_since = None;
                        actions.push(CapAction::Emergency {
                            blade,
                            budget_watts: budget,
                        });
                    }
                }
                continue;
            }
            let cap = &mut self.blades[blade];
            if let Some(ramp_at) = cap.next_ramp {
                if now >= ramp_at {
                    cap.ceiling += 1;
                    actions.push(CapAction::SetCeiling {
                        blade,
                        ceiling: cap.ceiling,
                    });
                    if cap.ceiling == self.opp_count - 1 {
                        cap.next_ramp = None;
                        actions.push(CapAction::Release { blade });
                    } else {
                        cap.next_ramp = Some(now + self.config.ramp_interval);
                    }
                }
            }
        }
        actions
    }

    /// The blade's current OPP ceiling.
    pub fn ceiling(&self, blade: usize) -> usize {
        self.blades[blade].ceiling
    }

    /// The blade's active budget, watts, if its rail is browned out.
    pub fn active_budget_watts(&self, blade: usize) -> Option<f64> {
        self.blades[blade].budget_watts
    }

    /// Whether the blade is in a power emergency (boards powered off).
    pub fn in_emergency(&self, blade: usize) -> bool {
        self.blades[blade].emergency
    }

    /// Whether the blade is degraded: browned out, mid-ramp, or in
    /// emergency. The scheduler steers new work away from such blades.
    pub fn is_degraded(&self, blade: usize) -> bool {
        let cap = &self.blades[blade];
        cap.budget_watts.is_some() || cap.next_ramp.is_some() || cap.emergency
    }

    /// Number of blades governed.
    pub fn blade_count(&self) -> usize {
        self.blades.len()
    }

    /// The earliest future instant the governor must observe: a rail
    /// recovery or a pending ramp-back step. While a budget is *active*
    /// the governor re-evaluates every tick (workloads move the admissible
    /// ceiling), which [`PowerCapGovernor::is_quiescent`] reports as
    /// non-quiescence — so this is the due-time for the recovering tail,
    /// aggregated by the event-driven clock.
    pub fn next_due(&self) -> Option<SimTime> {
        self.blades
            .iter()
            .flat_map(|cap| {
                let recovery = cap.budget_watts.is_some().then_some(cap.until);
                [recovery, cap.next_ramp]
            })
            .flatten()
            .chain(self.rack.as_ref().map(|rack| rack.until))
            .min()
    }

    /// Whether the governor is provably inert: no active budget, no
    /// pending ramp, no emergency, every ceiling at nominal. Exactly then
    /// may a due-time clock skip its evaluation.
    pub fn is_quiescent(&self) -> bool {
        self.rack.is_none()
            && self.blades.iter().all(|cap| {
                cap.budget_watts.is_none()
                    && cap.next_ramp.is_none()
                    && !cap.emergency
                    && cap.ceiling == self.opp_count - 1
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimone_monitor::payload::Payload;
    use cimone_monitor::topic::Topic;

    fn heartbeat_topic(host: &str) -> Topic {
        Topic::new(
            [
                "org",
                "unibo",
                "cluster",
                "cimone",
                "node",
                host,
                "plugin",
                "health_pub",
                "chnl",
                "data",
                "heartbeat",
            ]
            .map(str::to_owned),
        )
    }

    fn hosts() -> Vec<String> {
        (1..=2).map(|i| format!("mc-node-{i:02}")).collect()
    }

    fn cool() -> Vec<Celsius> {
        vec![Celsius::new(50.0); 2]
    }

    #[test]
    fn silence_fences_and_resumption_unfences() {
        let broker = Broker::new();
        let mut cp = ControlPlane::new(&broker, RecoveryConfig::detection_only(), hosts());
        let topic = heartbeat_topic("mc-node-01");
        for s in (0..60).step_by(5) {
            broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(s)));
        }
        assert!(cp.tick(SimTime::from_secs(60), &cool()).is_empty());
        // 30 s of silence: node 0 crosses phi 8 and is fenced.
        let actions = cp.tick(SimTime::from_secs(90), &cool());
        assert!(matches!(
            actions.as_slice(),
            [ControlAction::FenceSuspect { node: 0, phi }] if *phi >= 8.0
        ));
        assert!(cp.is_fenced(0));
        // The stream resumes: the node is unfenced.
        broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(95)));
        let actions = cp.tick(SimTime::from_secs(96), &cool());
        assert_eq!(actions, vec![ControlAction::Unfence { node: 0 }]);
        assert!(!cp.is_fenced(0));
    }

    #[test]
    fn fencing_can_be_disabled() {
        let broker = Broker::new();
        let config = RecoveryConfig {
            fence_on_suspicion: false,
            ..RecoveryConfig::detection_only()
        };
        let mut cp = ControlPlane::new(&broker, config, hosts());
        let topic = heartbeat_topic("mc-node-02");
        for s in (0..60).step_by(5) {
            broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(s)));
        }
        assert!(cp.tick(SimTime::from_secs(200), &cool()).is_empty());
        // Suspicion is still observable even though nothing was fenced.
        assert!(cp
            .monitor()
            .is_suspect("mc-node-02", SimTime::from_secs(200)));
    }

    /// Steady 5 s heartbeats for every host until `until_secs`.
    fn beat_all(broker: &Broker, until_secs: u64) {
        for host in hosts() {
            let topic = heartbeat_topic(&host);
            for s in (0..until_secs).step_by(5) {
                broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(s)));
            }
        }
    }

    /// Runs the plane tick-by-tick over `[from, to]` seconds, collecting
    /// every action tagged with its tick.
    fn drive(
        cp: &mut ControlPlane,
        from: u64,
        to: u64,
        temps: &[Celsius],
    ) -> Vec<(u64, ControlAction)> {
        let mut seen = Vec::new();
        for s in from..=to {
            for a in cp.tick(SimTime::from_secs(s), temps) {
                seen.push((s, a));
            }
        }
        seen
    }

    #[test]
    fn cluster_wide_silence_partitions_instead_of_mass_fencing() {
        let broker = Broker::new();
        let mut cp = ControlPlane::new(&broker, RecoveryConfig::detection_only(), hosts());
        beat_all(&broker, 60);
        // The switch goes dark after t=55: total silence, both nodes.
        let seen = drive(&mut cp, 56, 140, &cool());
        assert!(
            seen.iter()
                .all(|(_, a)| matches!(a, ControlAction::PartitionSuspected { .. })),
            "only a partition entry is allowed, got {seen:?}"
        );
        assert_eq!(seen.len(), 1, "{seen:?}");
        assert!(matches!(
            seen[0].1,
            ControlAction::PartitionSuspected { silent } if silent >= 1
        ));
        assert!(cp.is_partitioned());
        assert!(!cp.is_fenced(0) && !cp.is_fenced(1), "nobody fenced");
        assert!(!cp.is_quiescent(&cool()), "partitioned plane stays busy");
        // The switch comes back: both streams resume, the partition heals,
        // and — the acceptance bar — not one false suspicion ever fires.
        for host in hosts() {
            let topic = heartbeat_topic(&host);
            for s in (141..=200).step_by(5) {
                broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(s)));
            }
        }
        let seen = drive(&mut cp, 141, 200, &cool());
        assert_eq!(
            seen.iter()
                .filter(|(_, a)| matches!(a, ControlAction::PartitionHealed))
                .count(),
            1,
            "{seen:?}"
        );
        assert!(
            !seen
                .iter()
                .any(|(_, a)| matches!(a, ControlAction::FenceSuspect { .. })),
            "zero false suspicions across a pure switch outage: {seen:?}"
        );
        assert!(!cp.is_partitioned());
    }

    #[test]
    fn legacy_detector_mass_fences_the_whole_cluster() {
        // The regression baseline: partition awareness off reproduces the
        // historical behaviour — cluster-wide silence fences everyone.
        let broker = Broker::new();
        let config = RecoveryConfig {
            partition_aware: false,
            ..RecoveryConfig::detection_only()
        };
        let mut cp = ControlPlane::new(&broker, config, hosts());
        beat_all(&broker, 60);
        let seen = drive(&mut cp, 56, 140, &cool());
        let fences: Vec<_> = seen
            .iter()
            .filter(|(_, a)| matches!(a, ControlAction::FenceSuspect { .. }))
            .collect();
        assert_eq!(fences.len(), 2, "every node falsely fenced: {seen:?}");
        assert!(cp.is_fenced(0) && cp.is_fenced(1));
    }

    #[test]
    fn a_node_that_died_during_the_outage_is_fenced_on_healing() {
        let broker = Broker::new();
        let mut cp = ControlPlane::new(&broker, RecoveryConfig::detection_only(), hosts());
        beat_all(&broker, 60);
        drive(&mut cp, 56, 140, &cool());
        assert!(cp.is_partitioned());
        // Only node 0 resumes: the partition heals, and node 1 — silent
        // since well before the rebaseline — is fenced at once.
        broker.publish(
            &heartbeat_topic("mc-node-01"),
            Payload::new(1.0, SimTime::from_secs(141)),
        );
        let seen = drive(&mut cp, 141, 160, &cool());
        assert!(
            seen.iter()
                .any(|(_, a)| matches!(a, ControlAction::PartitionHealed)),
            "{seen:?}"
        );
        assert!(
            seen.iter()
                .any(|(_, a)| matches!(a, ControlAction::FenceSuspect { node: 1, .. })),
            "the genuinely dead node must be fenced: {seen:?}"
        );
        assert!(!cp.is_fenced(0), "the survivor is not touched");
    }

    #[test]
    fn partition_timeout_concedes_mass_death() {
        let broker = Broker::new();
        let config = RecoveryConfig {
            partition_timeout: SimDuration::from_secs(60),
            ..RecoveryConfig::detection_only()
        };
        let mut cp = ControlPlane::new(&broker, config, hosts());
        beat_all(&broker, 60);
        // Nobody ever comes back: after the timeout the plane concedes and
        // fences the (really dead) cluster.
        let seen = drive(&mut cp, 56, 300, &cool());
        let timeout_at = seen
            .iter()
            .find(|(_, a)| matches!(a, ControlAction::PartitionTimedOut))
            .map(|(s, _)| *s)
            .expect("the partition must time out");
        let entry_at = seen
            .iter()
            .find(|(_, a)| matches!(a, ControlAction::PartitionSuspected { .. }))
            .map(|(s, _)| *s)
            .expect("partition entry");
        assert_eq!(timeout_at, entry_at + 60);
        let fences: Vec<_> = seen
            .iter()
            .filter(|(s, a)| matches!(a, ControlAction::FenceSuspect { .. }) && *s >= timeout_at)
            .collect();
        assert_eq!(fences.len(), 2, "{seen:?}");
        assert!(!cp.is_partitioned());
    }

    #[test]
    fn watchdog_fences_only_after_sustained_heat() {
        let broker = Broker::new();
        let config = RecoveryConfig {
            thermal_watchdog: Some(ThermalWatchdog {
                throttle_above: Celsius::new(95.0),
                release_below: Celsius::new(85.0),
                fence_above: Celsius::new(103.0),
                sustain: SimDuration::from_secs(30),
            }),
            ..RecoveryConfig::detection_only()
        };
        let mut cp = ControlPlane::new(&broker, config, hosts());
        let hot = vec![Celsius::new(104.0), Celsius::new(50.0)];
        // First sighting: throttle, arm the sustain clock — no fence yet.
        let actions = cp.tick(SimTime::from_secs(10), &hot);
        assert_eq!(
            actions,
            vec![ControlAction::ThrottleHot {
                node: 0,
                temperature: Celsius::new(104.0)
            }]
        );
        // Still hot within the sustain window: throttle again.
        let actions = cp.tick(SimTime::from_secs(30), &hot);
        assert!(matches!(
            actions.as_slice(),
            [ControlAction::ThrottleHot { node: 0, .. }]
        ));
        // Past the sustain window: fence.
        let actions = cp.tick(SimTime::from_secs(40), &hot);
        assert!(matches!(
            actions.as_slice(),
            [ControlAction::FenceHot { node: 0, .. }]
        ));
        assert!(cp.is_fenced(0));
    }

    #[test]
    fn suspicion_due_time_matches_the_tick_by_tick_fence() {
        let broker = Broker::new();
        let mut cp = ControlPlane::new(&broker, RecoveryConfig::detection_only(), hosts());
        let topic = heartbeat_topic("mc-node-01");
        for s in (0..60).step_by(5) {
            broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(s)));
        }
        assert!(cp.tick(SimTime::from_secs(60), &cool()).is_empty());
        assert!(cp.is_quiescent(&cool()));
        // Predict the fence tick, then replay tick-by-tick and compare.
        let step = SimDuration::from_secs(1);
        let from = SimTime::from_secs(61);
        let due = cp
            .next_suspicion_due(0, from, SimTime::from_secs(400), step)
            .expect("silence must cross the threshold");
        let mut t = from;
        let fenced_at = loop {
            let actions = cp.tick(t, &cool());
            if actions
                .iter()
                .any(|a| matches!(a, ControlAction::FenceSuspect { node: 0, .. }))
            {
                break t;
            }
            t += step;
            assert!(t <= SimTime::from_secs(400), "never fenced");
        };
        assert_eq!(due, fenced_at);
        // A fence is a standing obligation: no longer quiescent, and the
        // fenced node no longer has a suspicion due-time.
        assert!(!cp.is_quiescent(&cool()));
        assert_eq!(
            cp.next_suspicion_due(0, t, SimTime::from_secs(800), step),
            None
        );
    }

    #[test]
    fn watchdog_state_blocks_quiescence() {
        let broker = Broker::new();
        let config = RecoveryConfig {
            thermal_watchdog: Some(ThermalWatchdog::fu740_default()),
            ..RecoveryConfig::detection_only()
        };
        let mut cp = ControlPlane::new(&broker, config, hosts());
        assert!(cp.is_quiescent(&cool()));
        // Hot air alone breaks quiescence before any action is taken.
        let hot = vec![Celsius::new(96.0), Celsius::new(50.0)];
        assert!(!cp.is_quiescent(&hot));
        // An outstanding throttle keeps the plane busy even once cool.
        cp.tick(SimTime::from_secs(10), &hot);
        assert!(!cp.is_quiescent(&cool()));
        cp.tick(SimTime::from_secs(20), &cool()); // RelaxCool drains it
        assert!(cp.is_quiescent(&cool()));
    }

    #[test]
    fn watchdog_cooling_resets_the_sustain_clock() {
        let broker = Broker::new();
        let config = RecoveryConfig {
            thermal_watchdog: Some(ThermalWatchdog::fu740_default()),
            ..RecoveryConfig::detection_only()
        };
        let mut cp = ControlPlane::new(&broker, config, hosts());
        let hot = vec![Celsius::new(104.0), Celsius::new(50.0)];
        let warm = vec![Celsius::new(90.0), Celsius::new(50.0)];
        cp.tick(SimTime::from_secs(0), &hot);
        // Dipping below the fence line resets the sustain clock...
        cp.tick(SimTime::from_secs(20), &warm);
        // ...so heat at t=40 has accrued 0 s, not 40 s.
        let actions = cp.tick(SimTime::from_secs(40), &hot);
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, ControlAction::FenceHot { .. })),
            "{actions:?}"
        );
        // Cool air below the release line steps DVFS back up — but only
        // on the node the watchdog actually throttled.
        let cold = vec![Celsius::new(60.0), Celsius::new(50.0)];
        let actions = cp.tick(SimTime::from_secs(60), &cold);
        assert_eq!(actions, vec![ControlAction::RelaxCool { node: 0 }]);
    }

    /// A synthetic power curve: blade power at OPP `opp` is
    /// `6 + 1.5·opp` watts for every blade (floor 6 W, nominal 12 W over a
    /// 5-point ladder).
    fn synth_power(_blade: usize, opp: usize) -> f64 {
        6.0 + 1.5 * opp as f64
    }

    #[test]
    fn governor_caps_to_the_largest_admissible_opp_and_ramps_back() {
        let mut gov = PowerCapGovernor::new(PowerCapConfig::rv007_default(), 4, 5);
        assert!(gov.is_quiescent());
        assert_eq!(gov.next_due(), None);
        // 75 % of 12 W = 9 W: OPP 2 draws exactly 9 W, OPP 3 draws 10.5 W.
        gov.begin_brownout(1, 0.75, SimTime::from_secs(10), SimDuration::from_secs(60));
        assert!(!gov.is_quiescent());
        assert_eq!(gov.next_due(), Some(SimTime::from_secs(70)));
        let actions = gov.evaluate(SimTime::from_secs(10), synth_power);
        assert_eq!(
            actions,
            vec![CapAction::SetCeiling {
                blade: 1,
                ceiling: 2
            }]
        );
        assert_eq!(gov.ceiling(1), 2);
        assert!(gov.is_degraded(1) && !gov.is_degraded(0));
        // Steady state: no repeated actions while nothing changes.
        assert!(gov.evaluate(SimTime::from_secs(20), synth_power).is_empty());
        // Rail recovers at t=70: ramp one OPP per 10 s with hysteresis.
        assert!(gov.evaluate(SimTime::from_secs(70), synth_power).is_empty());
        assert_eq!(gov.next_due(), Some(SimTime::from_secs(80)));
        let actions = gov.evaluate(SimTime::from_secs(80), synth_power);
        assert_eq!(
            actions,
            vec![CapAction::SetCeiling {
                blade: 1,
                ceiling: 3
            }]
        );
        let actions = gov.evaluate(SimTime::from_secs(90), synth_power);
        assert_eq!(
            actions,
            vec![
                CapAction::SetCeiling {
                    blade: 1,
                    ceiling: 4
                },
                CapAction::Release { blade: 1 }
            ]
        );
        assert!(gov.is_quiescent());
        assert_eq!(gov.next_due(), None);
    }

    #[test]
    fn governor_declares_emergency_when_even_the_floor_opp_overdraws() {
        let mut gov = PowerCapGovernor::new(PowerCapConfig::rv007_default(), 4, 5);
        // 25 % of 12 W = 3 W < the 6 W floor.
        gov.begin_brownout(2, 0.25, SimTime::ZERO, SimDuration::from_secs(40));
        let actions = gov.evaluate(SimTime::ZERO, synth_power);
        assert!(matches!(
            actions.as_slice(),
            [CapAction::Emergency { blade: 2, budget_watts }] if (*budget_watts - 3.0).abs() < 1e-12
        ));
        assert!(gov.in_emergency(2));
        // The emergency holds (boards are off) until the rail recovers.
        assert!(gov.evaluate(SimTime::from_secs(20), synth_power).is_empty());
        let actions = gov.evaluate(SimTime::from_secs(40), synth_power);
        assert_eq!(actions, vec![CapAction::RailRecovered { blade: 2 }]);
        assert!(!gov.in_emergency(2));
        // Ramp from the floor: 0 → 1 → 2 → 3 → 4 + release.
        let mut t = SimTime::from_secs(50);
        for expect in 1..=4usize {
            let actions = gov.evaluate(t, synth_power);
            assert!(
                actions.contains(&CapAction::SetCeiling {
                    blade: 2,
                    ceiling: expect
                }),
                "t={t}: {actions:?}"
            );
            t += SimDuration::from_secs(10);
        }
        assert!(gov.is_quiescent());
    }

    #[test]
    fn governor_tracks_load_shifts_under_an_active_budget() {
        let mut gov = PowerCapGovernor::new(PowerCapConfig::rv007_default(), 1, 5);
        gov.begin_brownout(0, 0.75, SimTime::ZERO, SimDuration::from_secs(100));
        // Busy blade: 9 W budget admits OPP 2 on the synthetic curve.
        gov.evaluate(SimTime::ZERO, synth_power);
        assert_eq!(gov.ceiling(0), 2);
        // The blade goes idle (power halves): the whole ladder now fits,
        // but an up-step needs a full ramp interval of sustained fit
        // (dwell) before each single-OPP rise, still within the same
        // brownout.
        let idle = |b: usize, opp: usize| synth_power(b, opp) * 0.5;
        for (t, expect) in [(10u64, None), (20, Some(3usize)), (25, None), (35, Some(4))] {
            let actions = gov.evaluate(SimTime::from_secs(t), idle);
            let expected: Vec<CapAction> = expect
                .map(|ceiling| CapAction::SetCeiling { blade: 0, ceiling })
                .into_iter()
                .collect();
            assert_eq!(actions, expected, "t={t}");
        }
        // Work returns: the clamp-down is immediate, no ramp interval.
        let actions = gov.evaluate(SimTime::from_secs(40), synth_power);
        assert_eq!(
            actions,
            vec![CapAction::SetCeiling {
                blade: 0,
                ceiling: 2
            }]
        );
        // An up-step inside the margin band is refused even with dwell:
        // no flapping at the budget boundary. OPP 3 here sits exactly at
        // the 9 W budget — admissible, but without the up-step margin to
        // spare.
        let boundary = |b: usize, opp: usize| synth_power(b, opp).min(9.0);
        assert!(gov.evaluate(SimTime::from_secs(60), boundary).is_empty());
        assert!(gov.evaluate(SimTime::from_secs(80), boundary).is_empty());
        assert_eq!(gov.ceiling(0), 2);
        // Still degraded throughout — placement keeps steering away.
        assert!(gov.is_degraded(0));
    }

    /// Heterogeneous load: blades 0–1 run hot (full synthetic curve),
    /// blades 2–3 sit half idle.
    fn skewed_power(blade: usize, opp: usize) -> f64 {
        let factor = if blade < 2 { 1.0 } else { 0.5 };
        synth_power(blade, opp) * factor
    }

    #[test]
    fn rack_arbiter_water_fills_the_machine_budget_by_blade_load() {
        let mut gov = PowerCapGovernor::new(PowerCapConfig::rv007_default(), 4, 5);
        // 60 % of the 48 W machine feed = 28.8 W across four blades.
        gov.begin_rack_brownout(0.6, SimTime::ZERO, SimDuration::from_secs(100));
        assert!(!gov.is_quiescent());
        assert_eq!(gov.next_due(), Some(SimTime::from_secs(100)));
        let budget = gov.active_rack_budget_watts().expect("rack budget live");
        assert!((budget - 28.8).abs() < 1e-9, "budget {budget}");
        let actions = gov.evaluate(SimTime::ZERO, skewed_power);
        // Water-filling raises the cheap (idle) blades to nominal and
        // splits what is left between the loaded ones: blade 0 lands on
        // OPP 2, blade 1 on OPP 1, blades 2–3 stay uncapped at OPP 4.
        assert_eq!(
            actions,
            vec![
                CapAction::SetCeiling {
                    blade: 0,
                    ceiling: 2
                },
                CapAction::SetCeiling {
                    blade: 1,
                    ceiling: 1
                },
            ]
        );
        assert_eq!(
            (0..4).map(|b| gov.ceiling(b)).collect::<Vec<_>>(),
            vec![2, 1, 4, 4]
        );
        // The arbitrated shares sum to the machine budget, so actual draw
        // at the chosen ceilings can never exceed it.
        let shares: f64 = (0..4).map(|b| gov.active_budget_watts(b).unwrap()).sum();
        assert!((shares - budget).abs() < 1e-9, "shares sum to {shares}");
        let drawn: f64 = (0..4).map(|b| skewed_power(b, gov.ceiling(b))).sum();
        assert!(drawn <= budget + 1e-9, "rack draws {drawn} W over budget");
        // Every blade is degraded while the machine feed is reduced.
        assert!((0..4).all(|b| gov.is_degraded(b)));
        // Steady state: re-arbitration under unchanged load is silent.
        assert!(gov
            .evaluate(SimTime::from_secs(10), skewed_power)
            .is_empty());
        // Feed recovers at t=100: capped blades ramp back with the usual
        // hysteresis; the uncapped ones release immediately.
        let actions = gov.evaluate(SimTime::from_secs(100), skewed_power);
        assert_eq!(
            actions,
            vec![
                CapAction::Release { blade: 2 },
                CapAction::Release { blade: 3 }
            ]
        );
        let mut t = SimTime::from_secs(110);
        while !gov.is_quiescent() {
            gov.evaluate(t, skewed_power);
            t += SimDuration::from_secs(10);
            assert!(t < SimTime::from_secs(300), "ramp-back never converged");
        }
        assert_eq!(gov.next_due(), None);
    }

    #[test]
    fn rack_emergency_fires_once_when_even_floor_opps_overdraw() {
        let mut gov = PowerCapGovernor::new(PowerCapConfig::rv007_default(), 4, 5);
        // 25 % of 48 W = 12 W < the 24 W sum of floor OPPs.
        gov.begin_rack_brownout(0.25, SimTime::ZERO, SimDuration::from_secs(50));
        let actions = gov.evaluate(SimTime::ZERO, synth_power);
        assert!(matches!(
            actions.first(),
            Some(CapAction::RackEmergency { budget_watts }) if (*budget_watts - 12.0).abs() < 1e-12
        ));
        // Each blade then declares its own emergency on the infeasible
        // equal share, which is what drives the engine's checkpoint-drain.
        let blade_emergencies: Vec<usize> = actions[1..]
            .iter()
            .map(|a| match a {
                CapAction::Emergency {
                    blade,
                    budget_watts,
                } => {
                    assert!((*budget_watts - 3.0).abs() < 1e-12);
                    *blade
                }
                other => panic!("expected Emergency, got {other:?}"),
            })
            .collect();
        assert_eq!(blade_emergencies, vec![0, 1, 2, 3]);
        assert!(gov.in_rack_emergency());
        // The announcement is once-per-episode; the hold is silent.
        assert!(gov.evaluate(SimTime::from_secs(20), synth_power).is_empty());
        // Feed recovery clears the rack and every blade rail.
        let actions = gov.evaluate(SimTime::from_secs(50), synth_power);
        assert_eq!(
            actions,
            (0..4)
                .map(|blade| CapAction::RailRecovered { blade })
                .collect::<Vec<_>>()
        );
        assert!(!gov.in_rack_emergency());
        assert!((0..4).all(|b| !gov.in_emergency(b)));
    }
}
