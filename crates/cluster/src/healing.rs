//! The self-healing control plane: heartbeat-driven failure detection,
//! node fencing, and a closed-loop thermal watchdog.
//!
//! With recovery enabled the engine stops telling the scheduler about
//! crashes directly. Instead every node publishes a periodic heartbeat
//! through the ExaMon broker, a [`cimone_monitor::heartbeat::HeartbeatMonitor`]
//! accrues suspicion from the *absence* of arrivals, and the
//! [`ControlPlane`] turns suspicion into actions: fence the node (evicting
//! its jobs through the scheduler's requeue path, where checkpointed work
//! migrates to healthy nodes), and unfence it when the stream resumes.
//! Because detection rides the telemetry path, injected broker message
//! loss and network partitions can fence perfectly healthy nodes — the
//! false-positive cost the phi threshold trades against latency.
//!
//! The thermal watchdog closes the loop the paper had to close by hand
//! during its node-7 runaway: sustained over-temperature first throttles
//! DVFS, and past a hotter line fences the blade before the 107 °C
//! hardware trip fires.

use serde::{Deserialize, Serialize};

use cimone_monitor::broker::Broker;
use cimone_monitor::heartbeat::{HeartbeatMonitor, DEFAULT_PHI_THRESHOLD};
use cimone_soc::units::{Celsius, SimDuration, SimTime};

use crate::checkpoint::CheckpointCostModel;

/// Checkpoint/restart policy for the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Cadence between checkpoint commits of one job.
    pub interval: SimDuration,
    /// What each commit costs the job.
    pub cost: CheckpointCostModel,
}

impl CheckpointConfig {
    /// Checkpoints every `interval` at the default Gigabit-NFS cost.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero.
    pub fn every(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "checkpoint interval must be non-zero");
        CheckpointConfig {
            interval,
            cost: CheckpointCostModel::default(),
        }
    }
}

/// The closed-loop thermal watchdog policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalWatchdog {
    /// Above this, step the node's DVFS down one OPP per tick.
    pub throttle_above: Celsius,
    /// Below this, step back up (hysteresis against oscillation).
    pub release_below: Celsius,
    /// Above this for [`ThermalWatchdog::sustain`], fence the blade.
    pub fence_above: Celsius,
    /// How long over-temperature must persist before fencing.
    pub sustain: SimDuration,
}

impl ThermalWatchdog {
    /// Defaults tuned under the FU740's 107 °C trip: throttle at 95 °C,
    /// release below 85 °C, fence after 30 s sustained above 103 °C.
    pub fn fu740_default() -> Self {
        ThermalWatchdog {
            throttle_above: Celsius::new(95.0),
            release_below: Celsius::new(85.0),
            fence_above: Celsius::new(103.0),
            sustain: SimDuration::from_secs(30),
        }
    }
}

/// Recovery-subsystem configuration (engine-level).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Heartbeat publication cadence per node.
    pub heartbeat_interval: SimDuration,
    /// Phi threshold above which a node is suspected (see
    /// [`cimone_monitor::heartbeat`] for the latency/false-positive
    /// tradeoff).
    pub phi_threshold: f64,
    /// Checkpoint/restart policy; `None` restarts evicted jobs from zero.
    pub checkpoint: Option<CheckpointConfig>,
    /// Whether suspicion fences the node (evicting its jobs). Disabling
    /// leaves detection observable but inert.
    pub fence_on_suspicion: bool,
    /// Whether a fenced node returns to service automatically once its
    /// heartbeat stream resumes (covers both real repair and false
    /// suspicion).
    pub auto_unfence: bool,
    /// Optional closed-loop thermal watchdog.
    pub thermal_watchdog: Option<ThermalWatchdog>,
}

impl RecoveryConfig {
    /// Detection and self-healing on, checkpointing off: 5 s heartbeats,
    /// phi threshold 8, fence + auto-unfence, no watchdog.
    pub fn detection_only() -> Self {
        RecoveryConfig {
            heartbeat_interval: SimDuration::from_secs(5),
            phi_threshold: DEFAULT_PHI_THRESHOLD,
            checkpoint: None,
            fence_on_suspicion: true,
            auto_unfence: true,
            thermal_watchdog: None,
        }
    }

    /// [`RecoveryConfig::detection_only`] plus checkpoints every
    /// `interval`.
    pub fn with_checkpoints(interval: SimDuration) -> Self {
        RecoveryConfig {
            checkpoint: Some(CheckpointConfig::every(interval)),
            ..RecoveryConfig::detection_only()
        }
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig::detection_only()
    }
}

/// An action the control plane asks the engine to apply. The control
/// plane never touches the scheduler itself — the engine stays the single
/// writer, so every action is observable and testable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlAction {
    /// The failure detector crossed its threshold for this node.
    FenceSuspect {
        /// Node index.
        node: usize,
        /// The phi value at detection.
        phi: f64,
    },
    /// A fenced node's heartbeat stream resumed: return it to service.
    Unfence {
        /// Node index.
        node: usize,
    },
    /// Watchdog: the node is over its throttle line; step DVFS down.
    ThrottleHot {
        /// Node index.
        node: usize,
        /// The temperature observed.
        temperature: Celsius,
    },
    /// Watchdog: the node cooled below the release line; step DVFS up.
    RelaxCool {
        /// Node index.
        node: usize,
    },
    /// Watchdog: sustained over-temperature; fence before the trip.
    FenceHot {
        /// Node index.
        node: usize,
        /// The temperature observed.
        temperature: Celsius,
    },
}

/// Heartbeat-fed decision loop over the cluster's nodes.
pub struct ControlPlane {
    monitor: HeartbeatMonitor,
    config: RecoveryConfig,
    hostnames: Vec<String>,
    /// Which nodes this control plane has fenced.
    fenced: Vec<bool>,
    /// When each node crossed the watchdog's fence line, if it is over it.
    hot_since: Vec<Option<SimTime>>,
    /// Outstanding watchdog DVFS step-downs per node, so cooling only
    /// relaxes what the watchdog itself throttled.
    throttle_depth: Vec<usize>,
}

impl ControlPlane {
    /// Attaches the control plane to `broker`, watching heartbeats of the
    /// given nodes (in index order).
    pub fn new(broker: &Broker, config: RecoveryConfig, hostnames: Vec<String>) -> Self {
        let monitor = HeartbeatMonitor::attach(
            broker,
            "org/unibo/cluster/cimone/node/+/plugin/health_pub/chnl/data/heartbeat"
                .parse()
                .expect("valid filter"),
            config.phi_threshold,
        );
        let n = hostnames.len();
        ControlPlane {
            monitor,
            config,
            hostnames,
            fenced: vec![false; n],
            hot_since: vec![None; n],
            throttle_depth: vec![0; n],
        }
    }

    /// The failure detector (suspicion levels are readable at any time).
    pub fn monitor(&self) -> &HeartbeatMonitor {
        &self.monitor
    }

    /// Whether this control plane has node `i` fenced.
    pub fn is_fenced(&self, node: usize) -> bool {
        self.fenced[node]
    }

    /// Marks `node` fenced (the engine calls this after applying a fence
    /// action so operator-driven fences stay in sync too).
    pub fn set_fenced(&mut self, node: usize, fenced: bool) {
        self.fenced[node] = fenced;
    }

    /// Whether any node is currently fenced. A fenced node's unfence
    /// condition decays with wall time (`resumed` compares `now` against
    /// the last arrival), so a due-time clock must evaluate every tick
    /// while a fence is outstanding.
    pub fn any_fenced(&self) -> bool {
        self.fenced.iter().any(|&f| f)
    }

    /// Whether [`ControlPlane::tick`] is provably a pure observation for
    /// ticks where no heartbeat arrives and no phi threshold is crossed:
    /// no node fenced, no armed watchdog sustain clock, no outstanding
    /// watchdog throttle to relax, and (when a watchdog is configured)
    /// every temperature strictly below its throttle and fence lines.
    /// Under these conditions the only state `tick` could mutate is
    /// driven by arrivals or crossings, both of which a due-time clock
    /// schedules explicitly — so skipping the call is exact.
    pub fn is_quiescent(&self, temperatures: &[Celsius]) -> bool {
        if self.any_fenced() {
            return false;
        }
        match self.config.thermal_watchdog {
            None => true,
            Some(w) => {
                self.hot_since.iter().all(Option::is_none)
                    && self.throttle_depth.iter().all(|&d| d == 0)
                    && temperatures
                        .iter()
                        .all(|&t| t < w.throttle_above && t < w.fence_above)
            }
        }
    }

    /// The first grid tick in `[from, to]` (stepping by `step`) at which
    /// node `i` would cross the suspicion threshold with no further
    /// heartbeats — `None` when suspicion cannot fence (disabled, already
    /// fenced, or the crossing lies beyond `to`).
    pub fn next_suspicion_due(
        &self,
        node: usize,
        from: SimTime,
        to: SimTime,
        step: SimDuration,
    ) -> Option<SimTime> {
        if !self.config.fence_on_suspicion || self.fenced[node] {
            return None;
        }
        self.monitor
            .next_suspicion_due(&self.hostnames[node], from, to, step)
    }

    /// One decision tick: ingest heartbeats, evaluate suspicion for every
    /// node, and run the thermal watchdog over `temperatures`. Returns the
    /// actions for the engine to apply, in node order.
    // The index walks four parallel per-node vectors; iterating any one
    // of them would just obscure that.
    #[allow(clippy::needless_range_loop)]
    pub fn tick(&mut self, now: SimTime, temperatures: &[Celsius]) -> Vec<ControlAction> {
        self.monitor.pump();
        let mut actions = Vec::new();
        for node in 0..self.hostnames.len() {
            let host = &self.hostnames[node];
            let phi = self.monitor.phi(host, now);
            if !self.fenced[node] {
                if self.config.fence_on_suspicion && phi >= self.config.phi_threshold {
                    actions.push(ControlAction::FenceSuspect { node, phi });
                    // Applied optimistically: the engine fences in the same
                    // tick it receives the action.
                    self.fenced[node] = true;
                    continue;
                }
            } else if self.config.auto_unfence {
                // Unfence once the stream has demonstrably resumed: a
                // fresh arrival and suspicion back under half the line.
                // A thermally fenced node keeps heartbeating, so it must
                // additionally have cooled below the release line.
                let resumed = self
                    .monitor
                    .detector(host)
                    .and_then(|d| d.last_arrival())
                    .is_some_and(|t| now.saturating_since(t) < self.config.heartbeat_interval * 2);
                let cooled = self
                    .config
                    .thermal_watchdog
                    .is_none_or(|w| temperatures[node] < w.release_below);
                if resumed && cooled && phi < self.config.phi_threshold * 0.5 {
                    actions.push(ControlAction::Unfence { node });
                    self.fenced[node] = false;
                }
            }
            if let Some(watchdog) = self.config.thermal_watchdog {
                if self.fenced[node] {
                    self.hot_since[node] = None;
                    continue;
                }
                let temp = temperatures[node];
                if temp >= watchdog.fence_above {
                    let since = *self.hot_since[node].get_or_insert(now);
                    if now.saturating_since(since) >= watchdog.sustain {
                        actions.push(ControlAction::FenceHot {
                            node,
                            temperature: temp,
                        });
                        self.fenced[node] = true;
                        self.hot_since[node] = None;
                        continue;
                    }
                } else {
                    self.hot_since[node] = None;
                }
                if temp >= watchdog.throttle_above {
                    actions.push(ControlAction::ThrottleHot {
                        node,
                        temperature: temp,
                    });
                    self.throttle_depth[node] += 1;
                } else if temp < watchdog.release_below && self.throttle_depth[node] > 0 {
                    actions.push(ControlAction::RelaxCool { node });
                    self.throttle_depth[node] -= 1;
                }
            }
        }
        actions
    }
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("config", &self.config)
            .field("fenced", &self.fenced)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimone_monitor::payload::Payload;
    use cimone_monitor::topic::Topic;

    fn heartbeat_topic(host: &str) -> Topic {
        Topic::new(
            [
                "org",
                "unibo",
                "cluster",
                "cimone",
                "node",
                host,
                "plugin",
                "health_pub",
                "chnl",
                "data",
                "heartbeat",
            ]
            .map(str::to_owned),
        )
    }

    fn hosts() -> Vec<String> {
        (1..=2).map(|i| format!("mc-node-{i:02}")).collect()
    }

    fn cool() -> Vec<Celsius> {
        vec![Celsius::new(50.0); 2]
    }

    #[test]
    fn silence_fences_and_resumption_unfences() {
        let broker = Broker::new();
        let mut cp = ControlPlane::new(&broker, RecoveryConfig::detection_only(), hosts());
        let topic = heartbeat_topic("mc-node-01");
        for s in (0..60).step_by(5) {
            broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(s)));
        }
        assert!(cp.tick(SimTime::from_secs(60), &cool()).is_empty());
        // 30 s of silence: node 0 crosses phi 8 and is fenced.
        let actions = cp.tick(SimTime::from_secs(90), &cool());
        assert!(matches!(
            actions.as_slice(),
            [ControlAction::FenceSuspect { node: 0, phi }] if *phi >= 8.0
        ));
        assert!(cp.is_fenced(0));
        // The stream resumes: the node is unfenced.
        broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(95)));
        let actions = cp.tick(SimTime::from_secs(96), &cool());
        assert_eq!(actions, vec![ControlAction::Unfence { node: 0 }]);
        assert!(!cp.is_fenced(0));
    }

    #[test]
    fn fencing_can_be_disabled() {
        let broker = Broker::new();
        let config = RecoveryConfig {
            fence_on_suspicion: false,
            ..RecoveryConfig::detection_only()
        };
        let mut cp = ControlPlane::new(&broker, config, hosts());
        let topic = heartbeat_topic("mc-node-02");
        for s in (0..60).step_by(5) {
            broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(s)));
        }
        assert!(cp.tick(SimTime::from_secs(200), &cool()).is_empty());
        // Suspicion is still observable even though nothing was fenced.
        assert!(cp
            .monitor()
            .is_suspect("mc-node-02", SimTime::from_secs(200)));
    }

    #[test]
    fn watchdog_fences_only_after_sustained_heat() {
        let broker = Broker::new();
        let config = RecoveryConfig {
            thermal_watchdog: Some(ThermalWatchdog {
                throttle_above: Celsius::new(95.0),
                release_below: Celsius::new(85.0),
                fence_above: Celsius::new(103.0),
                sustain: SimDuration::from_secs(30),
            }),
            ..RecoveryConfig::detection_only()
        };
        let mut cp = ControlPlane::new(&broker, config, hosts());
        let hot = vec![Celsius::new(104.0), Celsius::new(50.0)];
        // First sighting: throttle, arm the sustain clock — no fence yet.
        let actions = cp.tick(SimTime::from_secs(10), &hot);
        assert_eq!(
            actions,
            vec![ControlAction::ThrottleHot {
                node: 0,
                temperature: Celsius::new(104.0)
            }]
        );
        // Still hot within the sustain window: throttle again.
        let actions = cp.tick(SimTime::from_secs(30), &hot);
        assert!(matches!(
            actions.as_slice(),
            [ControlAction::ThrottleHot { node: 0, .. }]
        ));
        // Past the sustain window: fence.
        let actions = cp.tick(SimTime::from_secs(40), &hot);
        assert!(matches!(
            actions.as_slice(),
            [ControlAction::FenceHot { node: 0, .. }]
        ));
        assert!(cp.is_fenced(0));
    }

    #[test]
    fn suspicion_due_time_matches_the_tick_by_tick_fence() {
        let broker = Broker::new();
        let mut cp = ControlPlane::new(&broker, RecoveryConfig::detection_only(), hosts());
        let topic = heartbeat_topic("mc-node-01");
        for s in (0..60).step_by(5) {
            broker.publish(&topic, Payload::new(1.0, SimTime::from_secs(s)));
        }
        assert!(cp.tick(SimTime::from_secs(60), &cool()).is_empty());
        assert!(cp.is_quiescent(&cool()));
        // Predict the fence tick, then replay tick-by-tick and compare.
        let step = SimDuration::from_secs(1);
        let from = SimTime::from_secs(61);
        let due = cp
            .next_suspicion_due(0, from, SimTime::from_secs(400), step)
            .expect("silence must cross the threshold");
        let mut t = from;
        let fenced_at = loop {
            let actions = cp.tick(t, &cool());
            if actions
                .iter()
                .any(|a| matches!(a, ControlAction::FenceSuspect { node: 0, .. }))
            {
                break t;
            }
            t += step;
            assert!(t <= SimTime::from_secs(400), "never fenced");
        };
        assert_eq!(due, fenced_at);
        // A fence is a standing obligation: no longer quiescent, and the
        // fenced node no longer has a suspicion due-time.
        assert!(!cp.is_quiescent(&cool()));
        assert_eq!(
            cp.next_suspicion_due(0, t, SimTime::from_secs(800), step),
            None
        );
    }

    #[test]
    fn watchdog_state_blocks_quiescence() {
        let broker = Broker::new();
        let config = RecoveryConfig {
            thermal_watchdog: Some(ThermalWatchdog::fu740_default()),
            ..RecoveryConfig::detection_only()
        };
        let mut cp = ControlPlane::new(&broker, config, hosts());
        assert!(cp.is_quiescent(&cool()));
        // Hot air alone breaks quiescence before any action is taken.
        let hot = vec![Celsius::new(96.0), Celsius::new(50.0)];
        assert!(!cp.is_quiescent(&hot));
        // An outstanding throttle keeps the plane busy even once cool.
        cp.tick(SimTime::from_secs(10), &hot);
        assert!(!cp.is_quiescent(&cool()));
        cp.tick(SimTime::from_secs(20), &cool()); // RelaxCool drains it
        assert!(cp.is_quiescent(&cool()));
    }

    #[test]
    fn watchdog_cooling_resets_the_sustain_clock() {
        let broker = Broker::new();
        let config = RecoveryConfig {
            thermal_watchdog: Some(ThermalWatchdog::fu740_default()),
            ..RecoveryConfig::detection_only()
        };
        let mut cp = ControlPlane::new(&broker, config, hosts());
        let hot = vec![Celsius::new(104.0), Celsius::new(50.0)];
        let warm = vec![Celsius::new(90.0), Celsius::new(50.0)];
        cp.tick(SimTime::from_secs(0), &hot);
        // Dipping below the fence line resets the sustain clock...
        cp.tick(SimTime::from_secs(20), &warm);
        // ...so heat at t=40 has accrued 0 s, not 40 s.
        let actions = cp.tick(SimTime::from_secs(40), &hot);
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, ControlAction::FenceHot { .. })),
            "{actions:?}"
        );
        // Cool air below the release line steps DVFS back up — but only
        // on the node the watchdog actually throttled.
        let cold = vec![Celsius::new(60.0), Celsius::new(50.0)];
        let actions = cp.tick(SimTime::from_secs(60), &cold);
        assert_eq!(actions, vec![ControlAction::RelaxCool { node: 0 }]);
    }
}
