//! Extension: checkpoint/restart and heartbeat-detected failure recovery
//! under a node-crash sweep.
//!
//! Where [`super::availability`] gives the scheduler oracle knowledge of
//! crashes, this experiment runs the full recovery subsystem: nodes
//! heartbeat through the broker, a phi-accrual detector suspects the
//! silent ones, the control plane fences them, and evicted jobs restart
//! from their last NFS checkpoint on the surviving nodes. The sweep
//! crosses crash rate with checkpoint interval (including checkpointing
//! off) and reports wasted work, time-to-detect, time-to-recover and
//! effective throughput — the overhead-vs-rework tradeoff every HPC
//! checkpoint policy balances.
//!
//! The zero-fault, checkpointing-off corner reproduces the fault-free
//! Fig. 2 full-machine throughput bit-for-bit: heartbeats and detection
//! consume no engine randomness.

use serde::{Deserialize, Serialize};

use cimone_sched::accounting::JobEventKind;
use cimone_sched::job::JobState;
use cimone_soc::units::SimDuration;

use crate::engine::{ClockMode, ClusterWorkload, EngineConfig, EngineEvent, JobRequest, SimEngine};
use crate::faults::{FaultKind, FaultPlan};
use crate::healing::RecoveryConfig;
use crate::perf::{HplModel, HplProblem};
use crate::report::{render_table, Stats};

/// Outcome at one (crash rate, checkpoint interval) grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPoint {
    /// Crash rate, per node-hour.
    pub rate_per_node_hour: f64,
    /// Checkpoint interval, seconds (`None` = checkpointing off).
    pub checkpoint_interval_secs: Option<u64>,
    /// Jobs submitted.
    pub jobs_submitted: usize,
    /// Jobs that ran to completion.
    pub jobs_completed: usize,
    /// Jobs abandoned after exhausting their retry budget.
    pub jobs_lost: usize,
    /// Requeue events across the campaign.
    pub requeues: usize,
    /// Node outages (physical crashes) observed.
    pub failures: usize,
    /// Fences applied by the control plane.
    pub fences: usize,
    /// Checkpoints committed.
    pub checkpoints: usize,
    /// Times a job resumed from a checkpoint instead of zero.
    pub resumes: usize,
    /// Campaign makespan, seconds.
    pub makespan_secs: f64,
    /// Node-hours of completed work thrown away by evictions.
    pub wasted_node_hours: f64,
    /// Mean crash → fence latency, seconds (`None` without detections).
    pub mean_ttd_secs: Option<f64>,
    /// Mean eviction → restart latency, seconds (`None` without requeues
    /// that restarted).
    pub mean_ttr_secs: Option<f64>,
    /// Fraction of node-time the machine was in service.
    pub availability: f64,
    /// Sustained GFLOP/s of the completed runs (`None` if none finished).
    pub gflops: Option<Stats>,
}

/// The full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryResult {
    /// The HPL configuration each job runs.
    pub problem: HplProblem,
    /// Jobs per campaign.
    pub jobs: usize,
    /// Nodes each job asks for (fewer than the machine so checkpointed
    /// work can migrate to the survivors).
    pub job_nodes: usize,
    /// Repair time after each crash, seconds.
    pub repair_secs: u64,
    /// Base seed (plan and engine RNGs derive from it).
    pub seed: u64,
    /// One point per (rate, interval) pair, rates outer, intervals inner.
    pub points: Vec<RecoveryPoint>,
}

const NODES: usize = 8;

/// Runs the sweep: for every crash rate (per node-hour) and checkpoint
/// interval (`None` = off), one campaign of `jobs` back-to-back HPL jobs
/// on `job_nodes` nodes under the recovery subsystem. Fully deterministic
/// for fixed arguments.
///
/// # Panics
///
/// Panics if `jobs`, `rates` or `intervals` is empty, or `job_nodes` does
/// not fit the machine.
///
/// # Examples
///
/// ```
/// use cimone_cluster::experiments::recovery;
/// use cimone_cluster::perf::HplProblem;
/// use cimone_soc::units::SimDuration;
///
/// let result = recovery::run(
///     HplProblem::paper(),
///     1,
///     8,
///     &[0.0],
///     &[None],
///     SimDuration::from_secs(300),
///     2022,
/// );
/// assert_eq!(result.points[0].availability, 1.0);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn run(
    problem: HplProblem,
    jobs: usize,
    job_nodes: usize,
    rates: &[f64],
    intervals: &[Option<u64>],
    repair: SimDuration,
    seed: u64,
) -> RecoveryResult {
    assert!(jobs > 0, "need at least one job");
    assert!(!rates.is_empty(), "need at least one fault rate");
    assert!(!intervals.is_empty(), "need at least one interval entry");
    assert!(
        (1..=NODES).contains(&job_nodes),
        "jobs must fit the machine"
    );

    let fault_free_secs = HplModel::monte_cimone(problem).run_time(job_nodes) * jobs as f64;
    let horizon = SimDuration::from_secs_f64(fault_free_secs * 3.0 + 3600.0);

    let mut points = Vec::new();
    for (k, &rate) in rates.iter().enumerate() {
        for &interval in intervals {
            // The same plan seed for every interval at one rate, so the
            // fault process is held fixed while the policy varies.
            let plan = FaultPlan::random_crashes(
                seed.wrapping_add(k as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15),
                NODES,
                horizon,
                rate,
                repair,
            );
            let recovery = match interval {
                Some(secs) => RecoveryConfig::with_checkpoints(SimDuration::from_secs(secs)),
                None => RecoveryConfig::detection_only(),
            };
            let mut engine = SimEngine::new(EngineConfig {
                dt: SimDuration::from_secs(2),
                seed,
                monitoring: false,
                recovery: Some(recovery),
                // Idle spans between crash campaigns fast-forward; the
                // event clock is bit-identical to fixed-dt.
                clock: ClockMode::EventDriven,
                ..EngineConfig::default()
            })
            .with_fault_plan(plan);
            for _ in 0..jobs {
                engine
                    .submit(JobRequest {
                        name: "hpl-recover".into(),
                        user: "bench".into(),
                        nodes: job_nodes,
                        workload: ClusterWorkload::Hpl(problem),
                    })
                    .expect("job fits the machine");
            }
            engine.run_until_idle(horizon * 2);
            points.push(measure(&engine, rate, interval, jobs, problem));
        }
    }

    RecoveryResult {
        problem,
        jobs,
        job_nodes,
        repair_secs: (repair.as_secs_f64()) as u64,
        seed,
        points,
    }
}

fn measure(
    engine: &SimEngine,
    rate: f64,
    interval: Option<u64>,
    jobs: usize,
    problem: HplProblem,
) -> RecoveryPoint {
    let records = engine.accounting().records();
    let completed: Vec<_> = records
        .iter()
        .filter(|r| r.state == JobState::Completed)
        .collect();
    let lost = engine
        .events()
        .iter()
        .filter(|e| matches!(e, EngineEvent::JobLost { .. }))
        .count();
    let requeues = engine
        .accounting()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, JobEventKind::Requeued { .. }))
        .count();
    let resumes = engine
        .events()
        .iter()
        .filter(|e| matches!(e, EngineEvent::JobResumed { .. }))
        .count();

    // Time-to-detect: each physical crash to the first fence of that node
    // at or after it.
    let mut ttd = Vec::new();
    for event in engine.events() {
        if let EngineEvent::FaultInjected {
            at,
            kind: FaultKind::NodeCrash { node },
        } = event
        {
            let fenced = engine.events().iter().find_map(|e| match e {
                EngineEvent::NodeFenced { node: n, at: t } if n == node && t >= at => Some(*t),
                _ => None,
            });
            if let Some(t) = fenced {
                ttd.push(t.saturating_since(*at).as_secs_f64());
            }
        }
    }
    // Time-to-recover: each requeue to the job's next start.
    let mut ttr = Vec::new();
    for (i, event) in engine.events().iter().enumerate() {
        if let EngineEvent::JobRequeued { id, at } = event {
            let restarted = engine.events()[i..].iter().find_map(|e| match e {
                EngineEvent::JobStarted { id: j, at: t, .. } if j == id => Some(*t),
                _ => None,
            });
            if let Some(t) = restarted {
                ttr.push(t.saturating_since(*at).as_secs_f64());
            }
        }
    }

    let makespan = engine.now().as_secs_f64();
    let downtime = engine.total_downtime().as_secs_f64();
    let node_time = makespan * NODES as f64;
    // A resumed job's final run only performs the *remaining* fraction of
    // the problem, so credit it that fraction — otherwise checkpointing
    // would appear to inflate throughput.
    let gflops_samples: Vec<f64> = completed
        .iter()
        .map(|r| {
            let resumed_from = engine
                .events()
                .iter()
                .rev()
                .find_map(|e| match e {
                    EngineEvent::JobResumed { id, progress, .. } if id.0 == r.job_id => {
                        Some(*progress)
                    }
                    _ => None,
                })
                .unwrap_or(0.0);
            problem.flops() * (1.0 - resumed_from) / 1e9 / r.elapsed.as_secs_f64()
        })
        .collect();
    let mean = |v: &[f64]| (!v.is_empty()).then(|| v.iter().sum::<f64>() / v.len() as f64);

    RecoveryPoint {
        rate_per_node_hour: rate,
        checkpoint_interval_secs: interval,
        jobs_submitted: jobs,
        jobs_completed: completed.len(),
        jobs_lost: lost,
        requeues,
        failures: engine.failure_count(),
        fences: engine.fence_count(),
        checkpoints: engine.checkpoints_written(),
        resumes,
        makespan_secs: makespan,
        wasted_node_hours: engine.wasted_node_seconds() / 3600.0,
        mean_ttd_secs: mean(&ttd),
        mean_ttr_secs: mean(&ttr),
        availability: if node_time > 0.0 {
            (node_time - downtime) / node_time
        } else {
            1.0
        },
        gflops: (!gflops_samples.is_empty()).then(|| Stats::from_samples(&gflops_samples)),
    }
}

impl RecoveryResult {
    /// Renders the sweep table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Recovery sweep: checkpoint interval x crash rate (HPL N={}, {} jobs x {} nodes, repair {} s)\n",
            self.problem.n, self.jobs, self.job_nodes, self.repair_secs
        );
        let fmt_opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.0}"),
            None => "-".to_owned(),
        };
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.rate_per_node_hour),
                    p.checkpoint_interval_secs
                        .map_or("off".to_owned(), |s| format!("{s}")),
                    format!("{}/{}", p.jobs_completed, p.jobs_submitted),
                    p.jobs_lost.to_string(),
                    p.requeues.to_string(),
                    p.fences.to_string(),
                    p.checkpoints.to_string(),
                    p.resumes.to_string(),
                    format!("{:.2}", p.wasted_node_hours),
                    fmt_opt(p.mean_ttd_secs),
                    fmt_opt(p.mean_ttr_secs),
                    format!("{:.0}", p.makespan_secs),
                    format!("{:.2}%", p.availability * 100.0),
                    p.gflops.as_ref().map_or("-".to_owned(), |s| s.format(2)),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[
                "Crash/node-h",
                "Ckpt [s]",
                "Done",
                "Lost",
                "Requeues",
                "Fences",
                "Ckpts",
                "Resumes",
                "Wasted [node-h]",
                "TTD [s]",
                "TTR [s]",
                "Makespan [s]",
                "Avail.",
                "GFLOP/s",
            ],
            &rows,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::availability;

    #[test]
    fn zero_fault_checkpoint_off_corner_matches_the_oracle_baseline_exactly() {
        // The recovery subsystem at zero faults must not perturb the
        // simulation: heartbeats and detection consume no engine
        // randomness, so the throughput equals availability's fault-free
        // corner bit-for-bit.
        let recovered = run(
            HplProblem::paper(),
            1,
            8,
            &[0.0],
            &[None],
            SimDuration::from_secs(300),
            2022,
        );
        let oracle = availability::run(
            HplProblem::paper(),
            1,
            &[0.0],
            SimDuration::from_secs(300),
            2022,
        );
        let r = &recovered.points[0];
        let o = &oracle.points[0];
        assert_eq!(r.jobs_completed, 1);
        assert_eq!(r.fences, 0);
        assert_eq!(r.checkpoints, 0);
        assert_eq!(r.wasted_node_hours, 0.0);
        assert_eq!(r.availability, 1.0);
        let r_gflops = r.gflops.as_ref().expect("completed").mean;
        let o_gflops = o.gflops.as_ref().expect("completed").mean;
        assert_eq!(
            r_gflops.to_bits(),
            o_gflops.to_bits(),
            "recovery-on {r_gflops} vs oracle {o_gflops}"
        );
    }

    fn quick_sweep(seed: u64) -> RecoveryResult {
        run(
            HplProblem::paper(),
            2,
            4,
            &[4.0],
            &[None, Some(120)],
            SimDuration::from_secs(300),
            seed,
        )
    }

    #[test]
    fn checkpointing_cuts_wasted_work_under_crashes() {
        let result = quick_sweep(2022);
        let off = &result.points[0];
        let on = &result.points[1];
        assert!(off.failures > 0, "crashes must fire");
        assert!(off.fences > 0, "the detector must fence silent nodes");
        assert!(
            off.mean_ttd_secs.is_some_and(|t| t > 0.0),
            "detection takes real time, there is no oracle"
        );
        assert!(on.checkpoints > 0, "checkpoints must be written");
        if on.resumes > 0 {
            assert!(
                on.wasted_node_hours < off.wasted_node_hours,
                "restarting from checkpoints ({} node-h) must beat \
                 restarting from zero ({} node-h)",
                on.wasted_node_hours,
                off.wasted_node_hours
            );
        }
    }

    #[test]
    fn sweep_is_deterministic_for_fixed_seed() {
        let a = quick_sweep(7);
        let b = quick_sweep(7);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn render_lists_the_grid() {
        let text = quick_sweep(3).render();
        assert!(text.contains("Recovery sweep"));
        assert!(text.contains("off"));
        assert!(text.contains("120"));
        assert!(text.contains("TTD"));
        assert!(text.contains("Wasted"));
    }
}
