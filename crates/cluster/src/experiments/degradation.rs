//! Extension: blade-level fault domains — power-emergency graceful
//! degradation, blade-aware placement, and coupled-airflow fan loss.
//!
//! The paper's §III machine stacks two nodes per RV007 blade behind one
//! PSU, one power rail and one fan, so the blade is the machine's fault
//! domain. This experiment measures the three consequences the engine
//! models:
//!
//! * **Brownout** — a single rail drops to a fraction of its rated
//!   budget. With the [`crate::healing::PowerCapGovernor`] the blade
//!   degrades gracefully via DVFS opp capping and keeps serving jobs;
//!   without it (crash-only, the pre-governor machine) both boards drop
//!   and their jobs requeue. The sweep reports jobs served, jobs lost,
//!   energy and the peak blade power against the reduced budget.
//! * **Placement** — the Fig. 2 intermediate point the blade topology
//!   creates: a 2-node HPL run packed on one blade versus split across
//!   two, from the calibrated cross-blade communication penalty.
//! * **Fan loss** — the Fig. 6 runaway revisited with coupled airflow: a
//!   dead fan starves its own blade *and* warms the blade in its exhaust
//!   shadow, so the mid-fault temperatures order healthy < shadow <
//!   direct.

use serde::{Deserialize, Serialize};

use cimone_soc::units::{SimDuration, SimTime};

use crate::blade::RAIL_RATED_WATTS;
use crate::engine::{ClockMode, ClusterWorkload, EngineConfig, EngineEvent, JobRequest, SimEngine};
use crate::faults::{FaultKind, FaultPlan};
use crate::healing::RecoveryConfig;
use crate::perf::{HplModel, HplProblem};
use crate::report::render_table;

use cimone_sched::job::JobState;

/// The blade the brownout and fan faults target.
const FAULT_BLADE: usize = 1;
/// The blade whose fan dies in the airflow scenario (its shadow falls on
/// the next blade up the stack).
const FAN_BLADE: usize = 1;

/// Outcome of one brownout campaign (capping on or off).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrownoutPoint {
    /// Whether the power-cap governor was configured.
    pub capping: bool,
    /// Fraction of the rated rail budget left during the brownout.
    pub budget_frac: f64,
    /// The absolute budget, watts.
    pub budget_watts: f64,
    /// Jobs submitted.
    pub jobs_submitted: usize,
    /// Jobs that ran to completion inside the horizon.
    pub jobs_completed: usize,
    /// Jobs abandoned after exhausting their retry budget.
    pub jobs_lost: usize,
    /// Requeue events (evictions) across the campaign.
    pub requeues: usize,
    /// Blade-capped (graceful DVFS degradation) events.
    pub cap_events: usize,
    /// Power emergencies (budget infeasible even at the lowest opp).
    pub emergencies: usize,
    /// Peak blade power at any tick while the budget was active, watts.
    pub peak_blade_watts: f64,
    /// Total energy of the completed jobs, joules.
    pub energy_joules: f64,
    /// Node-hours of completed work thrown away by evictions.
    pub wasted_node_hours: f64,
    /// Campaign makespan, seconds.
    pub makespan_secs: f64,
}

/// The Fig. 2 intermediate point: 2-node HPL packed versus split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPoint {
    /// 2-node HPL on one blade (intra-blade), GFLOP/s.
    pub intra_blade_gflops: f64,
    /// 2-node HPL split across two blades, GFLOP/s.
    pub cross_blade_gflops: f64,
    /// Throughput lost to the cross-blade split, percent.
    pub penalty_pct: f64,
}

/// The coupled-airflow fan-loss scenario, sampled mid-fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FanLossPoint {
    /// Hottest node on the blade whose fan died, °C.
    pub direct_peak_c: f64,
    /// Hottest node on the blade in the exhaust shadow, °C.
    pub shadow_peak_c: f64,
    /// Hottest node on the unaffected blades, °C.
    pub healthy_peak_c: f64,
    /// Thermal trips latched over the whole run.
    pub trips: usize,
}

/// The full degraded-mode measurement set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationResult {
    /// The HPL configuration each job runs.
    pub problem: HplProblem,
    /// Jobs per brownout campaign.
    pub jobs: usize,
    /// Base seed.
    pub seed: u64,
    /// Brownout campaigns: capping on first, crash-only second.
    pub brownout: Vec<BrownoutPoint>,
    /// The intra- vs cross-blade placement point.
    pub placement: PlacementPoint,
    /// The fan-loss airflow-coupling point.
    pub fan_loss: FanLossPoint,
}

/// Runs the degraded-mode set: a brownout campaign with the power-cap
/// governor on and off, the intra-/cross-blade HPL placement point, and
/// the coupled-airflow fan-loss scenario. Fully deterministic for fixed
/// arguments, and byte-identical across [`ClockMode`]s.
///
/// # Panics
///
/// Panics if `jobs == 0` or `budget_frac` is outside `(0, 1]`.
pub fn run(
    problem: HplProblem,
    jobs: usize,
    budget_frac: f64,
    seed: u64,
    clock: ClockMode,
) -> DegradationResult {
    assert!(jobs > 0, "need at least one job");
    assert!(
        budget_frac > 0.0 && budget_frac <= 1.0,
        "budget_frac must be in (0, 1]"
    );
    let brownout = vec![
        brownout_campaign(problem, jobs, budget_frac, seed, clock, true),
        brownout_campaign(problem, jobs, budget_frac, seed, clock, false),
    ];
    DegradationResult {
        problem,
        jobs,
        seed,
        brownout,
        placement: placement_point(problem),
        fan_loss: fan_loss_point(seed, clock),
    }
}

/// One campaign of 2-node HPL jobs through a single-rail brownout.
fn brownout_campaign(
    problem: HplProblem,
    jobs: usize,
    budget_frac: f64,
    seed: u64,
    clock: ClockMode,
    capping: bool,
) -> BrownoutPoint {
    let model = HplModel::monte_cimone(problem);
    let fault_free = model.run_time(2) * jobs as f64;
    let span = SimDuration::from_secs_f64((fault_free * 0.5).max(600.0));
    let horizon = SimDuration::from_secs_f64(fault_free * 4.0 + 3600.0);
    // The full recovery stack runs underneath: capped nodes heartbeat
    // slower but must not be fenced (the detector is cap-aware), while
    // crash-only brownouts go through real detection and requeue.
    let mut config = EngineConfig {
        dt: SimDuration::from_secs(2),
        seed,
        monitoring: false,
        recovery: Some(RecoveryConfig::with_checkpoints(SimDuration::from_secs(
            600,
        ))),
        clock,
        ..EngineConfig::default()
    };
    if !capping {
        config.power_cap = None;
    }
    let mut engine = SimEngine::new(config).with_fault_plan(FaultPlan::new().with(
        SimTime::from_secs(120),
        FaultKind::RailBrownout {
            blade: FAULT_BLADE,
            budget_frac,
            span,
        },
    ));
    for _ in 0..jobs {
        engine
            .submit(JobRequest {
                name: "hpl-degraded".into(),
                user: "bench".into(),
                nodes: 2,
                workload: ClusterWorkload::Hpl(problem),
            })
            .expect("2-node jobs fit the machine");
    }
    engine.run_until_idle(horizon);

    let records = engine.accounting().records();
    let completed = records
        .iter()
        .filter(|r| r.state == JobState::Completed)
        .count();
    let energy_joules: f64 = records
        .iter()
        .filter(|r| r.state == JobState::Completed)
        .filter_map(|r| r.energy)
        .map(|e| e.as_joules())
        .sum();
    let count = |pred: fn(&EngineEvent) -> bool| engine.events().iter().filter(|e| pred(e)).count();
    BrownoutPoint {
        capping,
        budget_frac,
        budget_watts: budget_frac * RAIL_RATED_WATTS,
        jobs_submitted: jobs,
        jobs_completed: completed,
        jobs_lost: count(|e| matches!(e, EngineEvent::JobLost { .. })),
        requeues: count(|e| matches!(e, EngineEvent::JobRequeued { .. })),
        cap_events: count(|e| matches!(e, EngineEvent::BladeCapped { .. })),
        emergencies: count(|e| matches!(e, EngineEvent::PowerEmergency { .. })),
        peak_blade_watts: engine.brownout_peak_power(FAULT_BLADE),
        energy_joules,
        wasted_node_hours: engine.wasted_node_seconds() / 3600.0,
        makespan_secs: engine.now().as_secs_f64(),
    }
}

/// The Fig. 2 intermediate point from the calibrated model directly.
fn placement_point(problem: HplProblem) -> PlacementPoint {
    let model = HplModel::monte_cimone(problem);
    let intra = model.gflops_spanning(2, 1);
    let cross = model.gflops_spanning(2, 2);
    PlacementPoint {
        intra_blade_gflops: intra,
        cross_blade_gflops: cross,
        penalty_pct: (1.0 - cross / intra) * 100.0,
    }
}

/// Runs the whole machine under HPL-class load, kills one fan mid-run,
/// and samples the enclosure at the hottest point of the fault window.
fn fan_loss_point(seed: u64, clock: ClockMode) -> FanLossPoint {
    let span = SimDuration::from_secs(1800);
    let mut engine = SimEngine::new(EngineConfig {
        dt: SimDuration::from_secs(2),
        seed,
        monitoring: false,
        clock,
        ..EngineConfig::default()
    })
    .with_fault_plan(FaultPlan::new().with(
        SimTime::from_secs(60),
        FaultKind::FanFailure {
            blade: FAN_BLADE,
            span,
        },
    ));
    engine
        .submit(JobRequest {
            name: "hpl-fanloss".into(),
            user: "bench".into(),
            nodes: 8,
            workload: ClusterWorkload::Synthetic {
                workload: cimone_soc::workload::Workload::Hpl,
                secs: 2400,
            },
        })
        .expect("full-machine job fits");
    // Sample just before the fan recovers: the coupled enclosure has had
    // the whole span to heat up.
    engine.run_for(SimDuration::from_secs(60) + span - SimDuration::from_secs(2));
    let layout = engine.layout().clone();
    let peak_of = |blade: usize| -> f64 {
        layout.blades()[blade]
            .node_indices
            .iter()
            .map(|&i| engine.thermal().temperature(i).as_f64())
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let shadow = layout
        .airflow_shadow_of(FAN_BLADE)
        .expect("the faulted blade has a neighbour above");
    let healthy_peak_c = (0..layout.blades().len())
        .filter(|&b| b != FAN_BLADE && b != shadow)
        .map(peak_of)
        .fold(f64::NEG_INFINITY, f64::max);
    let point = FanLossPoint {
        direct_peak_c: peak_of(FAN_BLADE),
        shadow_peak_c: peak_of(shadow),
        healthy_peak_c,
        trips: 0,
    };
    engine.run_for(SimDuration::from_secs(1800));
    FanLossPoint {
        trips: engine
            .events()
            .iter()
            .filter(|e| matches!(e, EngineEvent::NodeTripped { .. }))
            .count(),
        ..point
    }
}

impl DegradationResult {
    /// Renders the brownout table plus the placement and fan-loss lines.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Degraded-mode sweep: single-rail brownout at {:.0}% budget (HPL N={}, {} x 2-node jobs)\n",
            self.brownout[0].budget_frac * 100.0,
            self.problem.n,
            self.jobs
        );
        let rows: Vec<Vec<String>> = self
            .brownout
            .iter()
            .map(|p| {
                vec![
                    if p.capping { "cap" } else { "crash" }.to_owned(),
                    format!("{}/{}", p.jobs_completed, p.jobs_submitted),
                    p.jobs_lost.to_string(),
                    p.requeues.to_string(),
                    p.cap_events.to_string(),
                    p.emergencies.to_string(),
                    format!("{:.2}", p.peak_blade_watts),
                    format!("{:.2}", p.budget_watts),
                    format!("{:.1}", p.energy_joules / 1e3),
                    format!("{:.2}", p.wasted_node_hours),
                    format!("{:.0}", p.makespan_secs),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[
                "Mode",
                "Done",
                "Lost",
                "Requeues",
                "Caps",
                "Emerg.",
                "Peak [W]",
                "Budget [W]",
                "Energy [kJ]",
                "Wasted [node-h]",
                "Makespan [s]",
            ],
            &rows,
        ));
        out.push_str(&format!(
            "\nPlacement (Fig. 2 intermediate): 2-node HPL intra-blade {:.2} GFLOP/s, \
             cross-blade {:.2} GFLOP/s ({:.1}% penalty)\n",
            self.placement.intra_blade_gflops,
            self.placement.cross_blade_gflops,
            self.placement.penalty_pct
        ));
        out.push_str(&format!(
            "Fan loss (Fig. 6 with coupled airflow): mid-fault peaks direct {:.1} C, \
             shadow {:.1} C, healthy {:.1} C; {} thermal trips\n",
            self.fan_loss.direct_peak_c,
            self.fan_loss.shadow_peak_c,
            self.fan_loss.healthy_peak_c,
            self.fan_loss.trips
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(clock: ClockMode) -> DegradationResult {
        // One cached sweep per mode: several tests inspect the same run.
        static EVENT: std::sync::OnceLock<DegradationResult> = std::sync::OnceLock::new();
        static FIXED: std::sync::OnceLock<DegradationResult> = std::sync::OnceLock::new();
        let cell = match clock {
            ClockMode::EventDriven => &EVENT,
            ClockMode::FixedDt => &FIXED,
        };
        cell.get_or_init(|| run(HplProblem::paper(), 2, 0.75, 2022, clock))
            .clone()
    }

    #[test]
    fn capping_serves_every_job_within_the_reduced_budget() {
        let result = quick(ClockMode::EventDriven);
        let cap = &result.brownout[0];
        assert!(cap.capping);
        assert_eq!(cap.jobs_completed, cap.jobs_submitted, "all jobs served");
        assert_eq!(cap.jobs_lost, 0, "graceful degradation loses nothing");
        assert_eq!(cap.requeues, 0, "running jobs are slowed, not evicted");
        assert!(cap.cap_events > 0, "the governor must actually cap");
        assert_eq!(cap.emergencies, 0, "75% of the rail is feasible");
        assert!(
            cap.peak_blade_watts > 0.0 && cap.peak_blade_watts <= cap.budget_watts,
            "peak {} W must stay within the {} W budget",
            cap.peak_blade_watts,
            cap.budget_watts
        );
    }

    #[test]
    fn crash_only_brownout_evicts_where_capping_does_not() {
        let result = quick(ClockMode::EventDriven);
        let cap = &result.brownout[0];
        let crash = &result.brownout[1];
        assert!(!crash.capping);
        assert!(
            crash.requeues > 0,
            "without the governor the brownout crashes the blade"
        );
        assert_eq!(cap.wasted_node_hours, 0.0, "capping evicts nothing");
        assert!(
            crash.wasted_node_hours > 0.0,
            "the crashed blade's in-flight work is thrown away"
        );
    }

    #[test]
    fn fan_loss_couples_through_the_airflow_shadow() {
        let f = quick(ClockMode::EventDriven).fan_loss;
        assert!(
            f.direct_peak_c > f.shadow_peak_c + 1.0,
            "direct {} C vs shadow {} C",
            f.direct_peak_c,
            f.shadow_peak_c
        );
        assert!(
            f.shadow_peak_c > f.healthy_peak_c + 1.0,
            "shadow {} C vs healthy {} C",
            f.shadow_peak_c,
            f.healthy_peak_c
        );
    }

    #[test]
    fn placement_penalty_is_small_but_real() {
        let p = quick(ClockMode::EventDriven).placement;
        assert!(p.intra_blade_gflops > p.cross_blade_gflops);
        assert!(p.penalty_pct > 0.0 && p.penalty_pct < 10.0);
    }

    #[test]
    fn sweep_is_deterministic_and_clock_mode_invariant() {
        let a = quick(ClockMode::EventDriven);
        let b = quick(ClockMode::EventDriven);
        assert_eq!(a, b);
        let fixed = quick(ClockMode::FixedDt);
        assert_eq!(a, fixed, "clock modes must agree byte-for-byte");
        assert!(a.render().contains("Degraded-mode sweep"));
    }
}
