//! Extension experiment — dynamic power and thermal management (the
//! paper's future-work item ii).
//!
//! The same hazardous configuration that produces the Fig. 6 runaway
//! (lid-on enclosure, full-machine HPL) is run again with a per-node
//! thermal DVFS governor enabled. Instead of node 7 dying at 107 °C and
//! the job being requeued, the governor steps the hot node down the OPP
//! ladder: the run finishes — slower, because HPL is bulk-synchronous and
//! the throttled node gates everyone — but without ever reaching the trip
//! point. This is exactly the trade a production machine wants, and it
//! quantifies what the paper's "dynamic power and thermal management"
//! future work is worth.

use cimone_soc::units::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::dpm::ThermalGovernor;
use crate::engine::{ClusterWorkload, EngineConfig, EngineEvent, JobRequest, SimEngine};
use crate::perf::HplProblem;
use crate::thermal::AirflowConfig;

/// The comparison result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsResult {
    /// Without the governor: when (and how hot) node 7 tripped.
    pub ungoverned_trip: (SimTime, f64),
    /// With the governor: the hottest temperature any node ever reached.
    pub governed_max_temp: f64,
    /// With the governor: the lowest OPP index node 7 was throttled to
    /// (0 = the 400 MHz deep-throttle point).
    pub governed_min_opp: usize,
    /// Whether the governed run completed without any trip or requeue.
    pub governed_completed_cleanly: bool,
    /// Elapsed time of the governed run.
    pub governed_elapsed: SimDuration,
    /// Reference: the same job's elapsed time in the healthy (lid-off,
    /// nominal-frequency) configuration.
    pub healthy_elapsed: SimDuration,
}

/// Runs the three configurations: lid-on ungoverned (trips), lid-on
/// governed (throttles and completes), lid-off nominal (reference).
///
/// # Examples
///
/// ```no_run
/// use cimone_cluster::experiments::dvfs;
///
/// let result = dvfs::run(42);
/// assert!(result.governed_completed_cleanly);
/// assert!(result.governed_max_temp < 107.0);
/// ```
pub fn run(seed: u64) -> DvfsResult {
    let job = || JobRequest {
        name: "hpl-full-machine".into(),
        user: "bench".into(),
        nodes: 8,
        workload: ClusterWorkload::Hpl(HplProblem::paper()),
    };

    // 1. Ungoverned lid-on baseline: run until node 7 trips.
    let mut baseline = SimEngine::new(EngineConfig {
        airflow: AirflowConfig::LidOnTightStack,
        dt: SimDuration::from_secs(2),
        seed,
        monitoring: false,
        governor: None,
        recovery: None,
        ..EngineConfig::default()
    });
    baseline.submit(job()).expect("fits");
    let deadline = baseline.now() + SimDuration::from_secs(2500);
    let mut trip = None;
    while baseline.now() < deadline && trip.is_none() {
        baseline.step();
        trip = baseline.events().iter().find_map(|e| match e {
            EngineEvent::NodeTripped {
                at, temperature, ..
            } => Some((*at, temperature.as_f64())),
            _ => None,
        });
    }
    let ungoverned_trip = trip.expect("the ungoverned lid-on run must trip");

    // 2. Governed lid-on run: same machine, same job, governor on.
    let mut governed = SimEngine::new(EngineConfig {
        airflow: AirflowConfig::LidOnTightStack,
        dt: SimDuration::from_secs(2),
        seed,
        monitoring: false,
        governor: Some(ThermalGovernor::fu740_default()),
        recovery: None,
        ..EngineConfig::default()
    });
    governed.submit(job()).expect("fits");
    let mut governed_max_temp = 0.0f64;
    let mut governed_min_opp = usize::MAX;
    let deadline = governed.now() + SimDuration::from_secs(16_000);
    while governed.now() < deadline {
        governed.step();
        for i in 0..8 {
            governed_max_temp = governed_max_temp.max(governed.thermal().temperature(i).as_f64());
        }
        governed_min_opp = governed_min_opp.min(governed.nodes()[6].cpufreq().current_index());
        if governed.accounting().len() == 1 {
            break;
        }
    }
    let governed_completed_cleanly = governed.accounting().len() == 1
        && !governed.events().iter().any(|e| {
            matches!(
                e,
                EngineEvent::NodeTripped { .. } | EngineEvent::JobRequeued { .. }
            )
        });
    let governed_elapsed = governed
        .accounting()
        .records()
        .first()
        .map(|r| r.elapsed)
        .unwrap_or(SimDuration::ZERO);

    // 3. Healthy reference: lid-off at nominal frequency.
    let mut healthy = SimEngine::new(EngineConfig {
        airflow: AirflowConfig::LidOffSpaced,
        dt: SimDuration::from_secs(2),
        seed,
        monitoring: false,
        governor: None,
        recovery: None,
        ..EngineConfig::default()
    });
    healthy.submit(job()).expect("fits");
    healthy.run_until_idle(SimDuration::from_secs(12_000));
    let healthy_elapsed = healthy
        .accounting()
        .records()
        .first()
        .map(|r| r.elapsed)
        .unwrap_or(SimDuration::ZERO);

    DvfsResult {
        ungoverned_trip,
        governed_max_temp,
        governed_min_opp,
        governed_completed_cleanly,
        governed_elapsed,
        healthy_elapsed,
    }
}

impl DvfsResult {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        format!(
            "Dynamic thermal management (paper future work ii) — lid-on HPL, full machine\n\
             \n\
             ungoverned: node 7 trips at {:.1} °C ({}), job requeued — the Fig. 6 incident\n\
             governed:   max temp {:.1} °C (trip point 107 °C), node 7 throttled to OPP {} (400 MHz = 0),\n\
             \u{20}           run completes cleanly in {} ({:+.0}% vs the healthy lid-off run's {})\n",
            self.ungoverned_trip.1,
            self.ungoverned_trip.0,
            self.governed_max_temp,
            self.governed_min_opp,
            self.governed_elapsed,
            (self.governed_elapsed.as_secs_f64() / self.healthy_elapsed.as_secs_f64() - 1.0)
                * 100.0,
            self.healthy_elapsed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_converts_the_trip_into_throttling() {
        let result = run(2022);
        // Without the governor the machine dies (Fig. 6)...
        assert!((result.ungoverned_trip.1 - 107.0).abs() < 2.0);
        // ...with it, the run completes below the trip point.
        assert!(result.governed_completed_cleanly, "{result:?}");
        assert!(
            result.governed_max_temp < 106.0,
            "max temp {}",
            result.governed_max_temp
        );
        // Node 7 really was throttled.
        assert!(
            result.governed_min_opp < 4,
            "opp {}",
            result.governed_min_opp
        );
        // Throttling costs time: slower than healthy, but the job finishes.
        assert!(result.governed_elapsed > result.healthy_elapsed);
        assert!(
            result.governed_elapsed.as_secs_f64() < result.healthy_elapsed.as_secs_f64() * 4.0,
            "governed run unreasonably slow: {}",
            result.governed_elapsed
        );
    }

    #[test]
    fn render_summarises_the_trade() {
        let text = run(7).render();
        assert!(text.contains("ungoverned: node 7 trips"));
        assert!(text.contains("run completes cleanly"));
    }
}
