//! Extension: cluster availability under a node-crash fault sweep.
//!
//! The paper reports Monte Cimone's fault-free HPL numbers; a production
//! machine also has to survive hardware faults. This experiment runs the
//! same 8-node HPL campaign under a seeded crash/repair process
//! ([`crate::faults::FaultPlan::random_crashes`]) at increasing fault
//! rates and reports jobs completed / requeued / lost, MTTF, MTTR and
//! machine availability. A rate of zero is the fault-free baseline and
//! reproduces the Fig. 2 full-machine throughput.

use serde::{Deserialize, Serialize};

use cimone_sched::accounting::JobEventKind;
use cimone_sched::job::JobState;
use cimone_soc::units::SimDuration;

use crate::engine::{ClockMode, ClusterWorkload, EngineConfig, EngineEvent, JobRequest, SimEngine};
use crate::faults::FaultPlan;
use crate::perf::{HplModel, HplProblem};
use crate::report::{render_table, Stats};

/// Outcome of the campaign at one fault rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Crash rate, per node-hour.
    pub rate_per_node_hour: f64,
    /// Jobs submitted.
    pub jobs_submitted: usize,
    /// Jobs that ran to completion.
    pub jobs_completed: usize,
    /// Jobs abandoned after exhausting their retry budget.
    pub jobs_lost: usize,
    /// Requeue events across the campaign.
    pub requeues: usize,
    /// Node outages (crashes) observed.
    pub failures: usize,
    /// Campaign makespan, seconds.
    pub makespan_secs: f64,
    /// Accumulated node outage, node-seconds.
    pub downtime_node_secs: f64,
    /// Fraction of node-time the machine was in service.
    pub availability: f64,
    /// Mean time to failure, seconds (`None` without failures).
    pub mttf_secs: Option<f64>,
    /// Mean time to repair, seconds (`None` without failures).
    pub mttr_secs: Option<f64>,
    /// Sustained GFLOP/s of the completed runs (`None` if none finished).
    pub gflops: Option<Stats>,
}

/// The full sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityResult {
    /// The HPL configuration each job runs.
    pub problem: HplProblem,
    /// Jobs per campaign.
    pub jobs: usize,
    /// Repair time after each crash, seconds.
    pub repair_secs: u64,
    /// Base seed (plan and engine RNGs derive from it).
    pub seed: u64,
    /// One point per fault rate, in the order given.
    pub points: Vec<RatePoint>,
}

const NODES: usize = 8;

/// Runs the sweep: one 8-node HPL campaign of `jobs` back-to-back jobs
/// per entry of `rates` (crashes per node-hour), with `repair` downtime
/// after each crash. Fully deterministic for fixed arguments.
///
/// # Panics
///
/// Panics if `jobs` or `rates` is empty, or a rate is negative.
///
/// # Examples
///
/// ```
/// use cimone_cluster::experiments::availability;
/// use cimone_cluster::perf::HplProblem;
/// use cimone_soc::units::SimDuration;
///
/// let result = availability::run(
///     HplProblem::paper(),
///     1,
///     &[0.0],
///     SimDuration::from_secs(300),
///     2022,
/// );
/// assert_eq!(result.points[0].availability, 1.0);
/// ```
pub fn run(
    problem: HplProblem,
    jobs: usize,
    rates: &[f64],
    repair: SimDuration,
    seed: u64,
) -> AvailabilityResult {
    assert!(jobs > 0, "need at least one job");
    assert!(!rates.is_empty(), "need at least one fault rate");

    // Plan horizon: generous against the fault-free makespan so crashes
    // keep arriving even when repairs stretch the campaign.
    let fault_free_secs = HplModel::monte_cimone(problem).run_time(NODES) * jobs as f64;
    let horizon = SimDuration::from_secs_f64(fault_free_secs * 3.0 + 3600.0);

    let mut points = Vec::new();
    for (k, &rate) in rates.iter().enumerate() {
        let plan = FaultPlan::random_crashes(
            seed.wrapping_add(k as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15),
            NODES,
            horizon,
            rate,
            repair,
        );
        let mut engine = SimEngine::new(EngineConfig {
            dt: SimDuration::from_secs(2),
            seed,
            monitoring: false,
            // Telemetry is off and repairs leave hours of idle tail: the
            // event clock fast-forwards those spans bit-identically.
            clock: ClockMode::EventDriven,
            ..EngineConfig::default()
        })
        .with_fault_plan(plan);
        for _ in 0..jobs {
            engine
                .submit(JobRequest {
                    name: "hpl-avail".into(),
                    user: "bench".into(),
                    nodes: NODES,
                    workload: ClusterWorkload::Hpl(problem),
                })
                .expect("8-node job fits the machine");
        }
        engine.run_until_idle(horizon * 2);
        points.push(measure(&engine, rate, jobs, problem));
    }

    AvailabilityResult {
        problem,
        jobs,
        repair_secs: (repair.as_secs_f64()) as u64,
        seed,
        points,
    }
}

fn measure(engine: &SimEngine, rate: f64, jobs: usize, problem: HplProblem) -> RatePoint {
    let records = engine.accounting().records();
    let completed: Vec<_> = records
        .iter()
        .filter(|r| r.state == JobState::Completed)
        .collect();
    let lost = engine
        .events()
        .iter()
        .filter(|e| matches!(e, EngineEvent::JobLost { .. }))
        .count();
    let requeues = engine
        .accounting()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, JobEventKind::Requeued { .. }))
        .count();
    let failures = engine.failure_count();

    let makespan = engine.now().as_secs_f64();
    let downtime = engine.total_downtime().as_secs_f64();
    let node_time = makespan * NODES as f64;
    let uptime = node_time - downtime;
    let gflops_samples: Vec<f64> = completed
        .iter()
        .map(|r| problem.flops() / 1e9 / r.elapsed.as_secs_f64())
        .collect();

    RatePoint {
        rate_per_node_hour: rate,
        jobs_submitted: jobs,
        jobs_completed: completed.len(),
        jobs_lost: lost,
        requeues,
        failures,
        makespan_secs: makespan,
        downtime_node_secs: downtime,
        availability: if node_time > 0.0 {
            uptime / node_time
        } else {
            1.0
        },
        mttf_secs: (failures > 0).then(|| uptime / failures as f64),
        mttr_secs: (failures > 0).then(|| downtime / failures as f64),
        gflops: (!gflops_samples.is_empty()).then(|| Stats::from_samples(&gflops_samples)),
    }
}

impl AvailabilityResult {
    /// Renders the sweep table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Availability under node-crash injection (HPL N={}, {} jobs x {} nodes, repair {} s)\n",
            self.problem.n, self.jobs, NODES, self.repair_secs
        );
        let fmt_opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.0}"),
            None => "-".to_owned(),
        };
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}", p.rate_per_node_hour),
                    format!("{}/{}", p.jobs_completed, p.jobs_submitted),
                    p.jobs_lost.to_string(),
                    p.requeues.to_string(),
                    p.failures.to_string(),
                    format!("{:.0}", p.makespan_secs),
                    format!("{:.2}%", p.availability * 100.0),
                    fmt_opt(p.mttf_secs),
                    fmt_opt(p.mttr_secs),
                    p.gflops.as_ref().map_or("-".to_owned(), |s| s.format(2)),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &[
                "Crash/node-h",
                "Done",
                "Lost",
                "Requeues",
                "Outages",
                "Makespan [s]",
                "Avail.",
                "MTTF [s]",
                "MTTR [s]",
                "GFLOP/s",
            ],
            &rows,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sweep(seed: u64) -> AvailabilityResult {
        run(
            HplProblem::paper(),
            2,
            &[0.0, 4.0],
            SimDuration::from_secs(300),
            seed,
        )
    }

    #[test]
    fn zero_rate_reproduces_the_fault_free_fig2_machine() {
        let result = run(
            HplProblem::paper(),
            1,
            &[0.0],
            SimDuration::from_secs(300),
            2022,
        );
        let p = &result.points[0];
        assert_eq!(p.jobs_completed, 1);
        assert_eq!(p.jobs_lost, 0);
        assert_eq!(p.requeues, 0);
        assert_eq!(p.failures, 0);
        assert_eq!(p.availability, 1.0);
        assert!(p.mttf_secs.is_none() && p.mttr_secs.is_none());
        let gflops = p.gflops.as_ref().expect("one completed run").mean;
        assert!(
            (gflops - 12.65).abs() < 0.6,
            "8-node HPL at {gflops} GFLOP/s"
        );
    }

    #[test]
    fn faults_cost_availability_and_stretch_the_campaign() {
        let result = quick_sweep(2022);
        let clean = &result.points[0];
        let faulty = &result.points[1];
        assert!(faulty.failures > 0, "4 crashes/node-hour must fire");
        assert!(faulty.availability < 1.0);
        assert!(faulty.downtime_node_secs > 0.0);
        assert!(faulty.makespan_secs >= clean.makespan_secs);
        assert!(faulty.mttr_secs.is_some());
        // Nothing is silently dropped: every job completed or was lost.
        assert_eq!(
            faulty.jobs_completed + faulty.jobs_lost,
            faulty.jobs_submitted
        );
    }

    #[test]
    fn sweep_is_deterministic_for_fixed_seed() {
        assert_eq!(quick_sweep(7), quick_sweep(7));
    }

    #[test]
    fn render_lists_every_rate() {
        let text = quick_sweep(3).render();
        assert!(text.contains("Availability under node-crash injection"));
        assert!(text.contains("0.00"));
        assert!(text.contains("4.00"));
        assert!(text.contains("MTTR"));
    }
}
