//! Fig. 4: the 80-second boot power trace with its R1/R2/R3 regions, plus
//! the §V-B leakage / clock-tree / OS decomposition derived from it.

use cimone_soc::boot::{BootRegion, BootSequence, PowerDecomposition};
use cimone_soc::power::{PowerModel, PowerTrace};
use cimone_soc::rails::Rail;
use cimone_soc::units::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::Stats;

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct BootTraceResult {
    /// The boot timing used.
    pub sequence: BootSequence,
    /// The recorded trace (100 ms windows over 80 s).
    pub trace: PowerTrace,
    /// Decomposition of the core rail (paper: 32 % / 51 % / 17 %).
    pub core: PowerDecomposition,
    /// Decomposition of the DDR devices rail (paper: 68 % leakage).
    pub ddr_mem: PowerDecomposition,
}

/// Records the Fig. 4 trace and derives the decomposition.
///
/// # Examples
///
/// ```
/// use cimone_cluster::experiments::boot_trace;
///
/// let result = boot_trace::run(42);
/// assert!((result.core.leakage_percent() - 32.0).abs() < 1.0);
/// ```
pub fn run(seed: u64) -> BootTraceResult {
    let model = PowerModel::u740();
    let sequence = BootSequence::u740_default();
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = sequence.trace(
        &model,
        SimDuration::from_secs(80),
        SimDuration::from_millis(100),
        &mut rng,
    );
    BootTraceResult {
        core: sequence.decompose(&model, Rail::Core),
        ddr_mem: sequence.decompose(&model, Rail::DdrMem),
        sequence,
        trace,
    }
}

impl BootTraceResult {
    /// Mean core power measured inside one region of the trace.
    pub fn measured_region_mean(&self, region: BootRegion) -> Option<Stats> {
        let samples: Vec<f64> = self
            .trace
            .rail_series(Rail::Core)
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let t = SimTime::ZERO + self.trace.window() * *i as u64;
                // Exclude the R2→R3 OS-boot ramp from the R2 statistics.
                self.sequence.region_at(t) == region
                    && (region != BootRegion::R2 || t < SimTime::from_secs(30))
            })
            .map(|(_, p)| p.as_watts())
            .collect();
        if samples.is_empty() {
            None
        } else {
            Some(Stats::from_samples(&samples))
        }
    }

    /// Renders the figure (core-rail sparkline with region markers) and
    /// the decomposition block.
    pub fn render(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let series = self.trace.rail_series(Rail::Core);
        let bucket = (series.len() / 80).max(1);
        let points: Vec<f64> = series
            .chunks(bucket)
            .map(|c| c.iter().map(|p| p.as_watts()).sum::<f64>() / c.len() as f64)
            .collect();
        let hi = points.iter().fold(f64::MIN_POSITIVE, |a, &b| a.max(b));
        let strip: String = points
            .iter()
            .map(|v| {
                let idx = ((v / hi) * (BARS.len() - 1) as f64).round() as usize;
                BARS[idx.min(BARS.len() - 1)]
            })
            .collect();

        let mut out = String::from("Fig. 4 — Core power during boot (80 s, 100 ms windows)\n");
        out.push_str(&format!("core: {strip}\n"));
        out.push_str("       off |  R1  |<-PLL        R2 (bootloader)        ->| R3 (OS idle)\n\n");
        for (label, d) in [("core", &self.core), ("ddr_mem", &self.ddr_mem)] {
            out.push_str(&format!(
                "{label}: leakage {:.3} W ({:.0}%), dynamic+clock-tree {:.3} W ({:.0}%), OS {:.3} W ({:.0}%) of {:.3} W idle\n",
                d.leakage().as_watts(),
                d.leakage_percent(),
                d.dynamic_and_clock_tree().as_watts(),
                d.dynamic_percent(),
                d.os().as_watts(),
                d.os_percent(),
                d.idle_total().as_watts(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_regions_match_the_paper_levels() {
        let result = run(2022);
        let r1 = result.measured_region_mean(BootRegion::R1).unwrap();
        assert!((r1.mean - 0.984).abs() < 0.02, "R1 {:?}", r1);
        let r2 = result.measured_region_mean(BootRegion::R2).unwrap();
        assert!((r2.mean - 2.561).abs() < 0.02, "R2 {:?}", r2);
        let r3 = result.measured_region_mean(BootRegion::R3).unwrap();
        assert!((r3.mean - 3.075).abs() < 0.02, "R3 {:?}", r3);
        let off = result.measured_region_mean(BootRegion::Off).unwrap();
        assert_eq!(off.mean, 0.0);
    }

    #[test]
    fn decomposition_percentages_match_the_paper() {
        let result = run(1);
        assert!((result.core.leakage_percent() - 32.0).abs() < 0.5);
        assert!((result.core.dynamic_percent() - 51.0).abs() < 0.5);
        assert!((result.core.os_percent() - 17.0).abs() < 0.5);
        assert!((result.ddr_mem.leakage_percent() - 68.0).abs() < 0.5);
    }

    #[test]
    fn render_shows_regions_and_decomposition() {
        let text = run(5).render();
        assert!(text.contains("Fig. 4"));
        assert!(text.contains("R3 (OS idle)"));
        assert!(text.contains("leakage 0.984 W (32%)"));
    }
}
